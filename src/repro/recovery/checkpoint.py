"""Durable phase checkpoints and recovery accounting.

A :class:`PhaseCheckpoint` records, after each supervised phase, which
chunks live where and how far they have progressed — optionally with
host-staged copies of the chunk payloads themselves.  Checkpoints are
host-side state: they survive any number of GPU failures, which is what
makes mid-sort re-planning possible (the supervisor rebuilds the device
layout from the last checkpoint with payloads instead of restarting
from the source buffer).

``kind`` encodes how much a checkpoint can restore:

* ``"layout"`` — metadata only (GPU ids, chunk geometry).  Replanning
  past it re-fetches from the source.
* ``"sorted"`` — payloads are the per-GPU *sorted runs* after the local
  sort.  Replanning re-uploads and re-merges them on the survivors.
* ``"merged"`` — payloads are the globally merged chunks; their
  concatenation in slot order *is* the sorted output, so any later
  failure resolves without touching a GPU again.
* ``"runs"`` — HET sort: payloads are the host-resident sorted chunk
  runs flushed so far; unflushed chunks redistribute over survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class PhaseCheckpoint:
    """State of a supervised sort after one completed phase."""

    phase: str
    #: Simulated time the checkpoint was written.
    at: float
    #: GPUs carrying chunks when the checkpoint was taken.
    gpu_ids: Tuple[int, ...]
    #: Elements per device chunk at that point.
    chunk: int
    #: Restorability class (see module docstring).
    kind: str = "layout"
    #: Host-staged chunk copies, slot-ordered; ``None`` for metadata-only.
    payloads: Optional[Tuple[np.ndarray, ...]] = None

    @property
    def restorable(self) -> bool:
        """Whether this checkpoint carries payloads to rebuild from."""
        return self.payloads is not None

    def describe(self) -> str:
        """One-line summary for logs and traces."""
        staged = len(self.payloads) if self.payloads is not None else 0
        return (f"{self.phase}@{self.at:.6f}s kind={self.kind} "
                f"gpus={self.gpu_ids} chunk={self.chunk} staged={staged}")


@dataclass
class RecoveryStats:
    """Counters the supervisor accumulates across one sort run."""

    replans: int = 0
    checkpoints: int = 0
    checkpoints_restored: int = 0
    speculations: int = 0
    speculative_wins: int = 0
    #: Phases that fully completed (and checkpointed), execution order.
    completed_phases: Tuple[str, ...] = field(default=())

    def completed(self, phase: str) -> None:
        self.completed_phases = self.completed_phases + (phase,)
