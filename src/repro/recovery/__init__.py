"""End-to-end recovery for supervised sorts.

The :class:`~repro.recovery.supervisor.SortSupervisor` runs the P2P and
HET sorts as sequences of checkpointed phases so a GPU (or link) dying
*mid-phase* re-plans the run over the survivors instead of aborting it:

* every completed phase writes a durable
  :class:`~repro.recovery.checkpoint.PhaseCheckpoint` (which chunks
  live where, which are sorted/merged, optionally host-staged copies of
  the chunk payloads);
* a :class:`~repro.errors.DeviceFaultError` or unrecoverable
  :class:`~repro.errors.TransferError` triggers a **replan**: the dead
  GPU's chunks are redistributed across the surviving power-of-two
  prefix, host-staged copies are reused where available and the input
  is re-fetched from source otherwise, and the run resumes from the
  last restorable checkpoint;
* straggling phase tasks get **speculative backups** on the least-
  loaded survivor (first finisher wins, the loser is cancelled);
* a per-sort **deadline budget** cancels outstanding flows and kernels
  cleanly when exceeded and returns a typed partial result.

See ``docs/RESILIENCE.md`` for the recovery state machine.
"""

from repro.recovery.checkpoint import PhaseCheckpoint, RecoveryStats
from repro.recovery.cluster import Contribution, ExchangeLedger
from repro.recovery.supervisor import SortSupervisor, SupervisorConfig
from repro.recovery.tasks import TaskGroup

__all__ = [
    "Contribution",
    "ExchangeLedger",
    "PhaseCheckpoint",
    "RecoveryStats",
    "SortSupervisor",
    "SupervisorConfig",
    "TaskGroup",
]
