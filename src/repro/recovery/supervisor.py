"""The self-healing sort supervisor.

:class:`SortSupervisor` runs a multi-GPU sort as a sequence of
checkpointed phases (see :mod:`repro.recovery`).  Each phase executes
under a :class:`~repro.recovery.tasks.TaskGroup` in its own
``machine.run`` call, so between phases the supervisor is back on the
host side of the simulation and can react to what happened:

* **success** — write the phase's :class:`PhaseCheckpoint` (optionally
  staging chunk payloads to host memory first) and move on;
* **device/transfer failure** — *replan*: drop the dead GPUs, rebuild
  the remaining phase queue over the survivors from the last restorable
  checkpoint, and resume;
* **deadline** — cancel outstanding flows and kernels cleanly and
  return a typed partial :class:`~repro.sort.result.SortResult` with
  ``deadline_exceeded=True``.

The per-algorithm phase logic lives in
:mod:`repro.recovery.p2p_run` and :mod:`repro.recovery.het_run`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    DeviceFaultError,
    RecoveryError,
    SortError,
    TransferError,
)
from repro.recovery.checkpoint import PhaseCheckpoint, RecoveryStats
from repro.recovery.tasks import TaskGroup
from repro.runtime.buffer import HostBuffer, WorkspacePool, default_pool
from repro.runtime.context import Machine
from repro.sort.gpu_set import surviving_gpu_ids
from repro.sort.result import SortResult


@dataclass
class SupervisorConfig:
    """Tunables of the self-healing supervisor."""

    #: Single-GPU sort primitive for every on-device sort.
    primitive: str = "thrust"
    #: Stage each GPU's sorted run to host memory after the local sort
    #: (a restorable checkpoint; costs one extra DtoH per chunk).
    checkpoint_sorted_chunks: bool = True
    #: Stage the merged chunks after the exchange phase; any later
    #: failure then resolves entirely from host memory.
    checkpoint_merged_chunks: bool = True
    #: Replans allowed before the run fails with
    #: :class:`~repro.errors.RecoveryError`.
    max_replans: int = 8
    #: Wall-clock budget in simulated seconds; ``None`` disables it.
    deadline_s: Optional[float] = None
    #: Launch speculative backups for straggling local sorts.
    speculation: bool = True
    #: A task is a straggler once the phase has run past this multiple
    #: of the median completed-task duration.
    speculation_multiple: float = 2.0
    #: Fraction of a phase's tasks that must finish before the median
    #: is trusted (quorum for arming speculation).
    speculation_quorum: float = 0.5
    #: When the survivors cannot hold the redistributed chunks, fall
    #: back to a host-side multiway merge of the staged runs instead of
    #: failing the run.
    cpu_merge_fallback: bool = True
    #: Workspace pool for the run's host-side scratch (padded staging
    #: array, staged runs); ``None`` uses the process-wide
    #: :data:`~repro.runtime.buffer.default_pool`.  The sort service
    #: passes each tenant's quota-limited pool here so one tenant's
    #: scratch cannot starve another's.
    pool: Optional[WorkspacePool] = None
    #: Job label for multi-job traces: the run's root span is recorded
    #: with actor ``job:<label>`` (instead of ``supervisor``) and the
    #: global trace parent stack is left untouched — the stack assumes
    #: one sort at a time, which concurrent service jobs violate.
    job_label: Optional[str] = None
    #: Directory for post-mortem bundles: when set, a terminal
    #: :class:`~repro.errors.SortError` / RecoveryError dumps a
    #: provenance-stamped JSON snapshot (recent events, fault timeline,
    #: critical path up to the failure) there before propagating.
    postmortem_dir: Optional[str] = None


class SortSupervisor:
    """Runs checkpointed, re-plannable sorts on one machine."""

    def __init__(self, machine: Machine,
                 config: Optional[SupervisorConfig] = None):
        self.machine = machine
        self.config = config or SupervisorConfig()
        self.rec = RecoveryStats()
        self.checkpoints: List[PhaseCheckpoint] = []
        self.excluded: tuple = ()
        #: Paths of post-mortem bundles dumped by this supervisor.
        self.postmortems: List[str] = []
        #: Phase executing (and its start time) when a terminal
        #: :class:`~repro.errors.SortError` escaped, else ``None``.
        self.failed_phase: Optional[str] = None
        self.failed_phase_started: Optional[float] = None

    @property
    def pool(self) -> WorkspacePool:
        """The workspace pool this run's host scratch comes from."""
        return self.config.pool if self.config.pool is not None \
            else default_pool

    # -- bookkeeping hooks the drivers call --------------------------------
    def note_checkpoint(self, ck: PhaseCheckpoint) -> None:
        self.checkpoints.append(ck)
        self.rec.checkpoints += 1
        if self.machine.obs is not None:
            staged = len(ck.payloads) if ck.payloads is not None else 0
            self.machine.obs.checkpointed(ck.phase, staged, ck.at)

    def note_restored(self, phase: str, staged: int) -> None:
        self.rec.checkpoints_restored += 1
        if self.machine.obs is not None:
            self.machine.obs.checkpointed(phase, staged,
                                          self.machine.env.now,
                                          restored=True)

    def last_restorable(self) -> Optional[PhaseCheckpoint]:
        for ck in reversed(self.checkpoints):
            if ck.restorable:
                return ck
        return None

    # -- the supervised run ------------------------------------------------
    def sort(self, data: Union[np.ndarray, HostBuffer],
             algorithm: str = "p2p",
             gpu_ids: Optional[Sequence[int]] = None,
             **driver_kwargs) -> SortResult:
        """Run a supervised sort; returns a :class:`SortResult`.

        ``algorithm`` is ``"p2p"`` or ``"het"``.  Keys only — the
        supervised paths do not carry value payloads (use the plain
        sorts for key-value records).  Extra keyword arguments go to
        the algorithm driver (``p2p_config=`` / ``het_config=``).

        The supervisor drives the run from the host side, one
        ``env.run`` per phase, exactly as before :meth:`sort_async`
        existed — the trampoline below replays the generator's yielded
        events through ``env.run`` without wrapping it in a process, so
        single-sort runs stay bit-identical to the pre-service code.
        """
        generator = self.sort_async(data, algorithm=algorithm,
                                    gpu_ids=gpu_ids, **driver_kwargs)
        env = self.machine.env
        try:
            event = next(generator)
        except StopIteration as stop:
            return stop.value
        while True:
            try:
                value = env.run(until=event)
            except BaseException as exc:  # noqa: BLE001 - replayed below
                # Raw event-loop escapes included: thrown back into the
                # generator at its yield, where the phase loop's except
                # clauses (replan, deadline) and cleanup handle them.
                try:
                    event = generator.throw(exc)
                except StopIteration as stop:
                    return stop.value
                continue
            try:
                event = generator.send(value)
            except StopIteration as stop:
                return stop.value

    def sort_async(self, data: Union[np.ndarray, HostBuffer],
                   algorithm: str = "p2p",
                   gpu_ids: Optional[Sequence[int]] = None,
                   **driver_kwargs):
        """Process form of :meth:`sort`: a generator yielding events.

        Run it under ``env.process`` to execute a supervised sort
        *concurrently* with other work in the same simulated
        environment — the sort service schedules many of these on
        disjoint GPU sets.  The generator's return value is the
        :class:`SortResult`; exceptions propagate through the process
        event like any other task failure.
        """
        machine = self.machine
        if algorithm == "p2p":
            from repro.recovery.p2p_run import P2PRun as driver_cls
        elif algorithm == "het":
            from repro.recovery.het_run import HetRun as driver_cls
        else:
            raise SortError(f"unknown supervised algorithm {algorithm!r} "
                            "(expected 'p2p' or 'het')")

        if isinstance(data, HostBuffer):
            host_in = data
        else:
            host_in = machine.host_buffer(np.asarray(data))
        if len(host_in.data) == 0:
            raise SortError("cannot sort an empty array")

        ids = self._initial_ids(algorithm, gpu_ids)
        driver = driver_cls(self, host_in, ids, **driver_kwargs)

        env = machine.env
        start = env.now
        stats_before = machine.resilience_stats.snapshot()
        deadline = (env.timeout(self.config.deadline_s)
                    if self.config.deadline_s is not None else None)
        root_id = None
        if machine.obs is not None:
            root_id = machine.trace.allocate_id()
            if self.config.job_label is None:
                # The global parent stack assumes one sort at a time;
                # labelled (service) jobs leave it alone and are found
                # by actor instead.
                machine.trace.push_parent(root_id)

        deadline_hit = False
        failing_phase: Optional[str] = None
        phase_started: Optional[float] = None
        try:
            while driver.queue:
                name = driver.queue[0]
                failing_phase = name
                phase_started = env.now
                try:
                    yield from self._run_phase(name, driver.body(name),
                                               deadline)
                    ck_body = driver.checkpoint_body(name)
                    if ck_body is not None:
                        yield from self._run_phase(f"{name}:checkpoint",
                                                   ck_body, deadline)
                    driver.after_phase(name)
                    self.rec.completed(name)
                    driver.queue.pop(0)
                except DeadlineExceededError:
                    deadline_hit = True
                    break
                except (DeviceFaultError, TransferError) as exc:
                    self._replan(driver, name, exc)
        except SortError as exc:
            # Terminal failures (RecoveryError after exhausting replans,
            # no-survivors SortError): freeze a post-mortem bundle while
            # the state around the death is still reachable.
            self.failed_phase = failing_phase
            self.failed_phase_started = phase_started
            self._dump_postmortem(exc, failing_phase, phase_started)
            raise
        finally:
            driver.cleanup()
            if root_id is not None:
                if self.config.job_label is None:
                    machine.trace.pop_parent()
                machine.trace.record(
                    "SupervisedSort", self._actor(), start,
                    bytes=host_in.data.nbytes * machine.scale, id=root_id)

        duration = env.now - start
        output = None if deadline_hit else driver.finalize()
        recovery = machine.resilience_stats.delta(stats_before)
        fault_downtime = (machine.faults.downtime_between(start, env.now)
                          if machine.faults is not None else 0.0)
        degraded = bool(self.excluded or self.rec.replans
                        or self.rec.speculative_wins or recovery.retries
                        or recovery.reroutes or recovery.timeouts
                        or fault_downtime > 0.0)
        phase_names = ("Redistribute", "HtoD", "Sort", "Merge", "DtoH",
                       "Checkpoint", "Restore", "Speculate")
        phases = {phase: value for phase, value in
                  machine.trace.phase_durations().items()
                  if phase in phase_names}
        return SortResult(
            algorithm=f"supervised-{algorithm}",
            system=machine.spec.name,
            gpu_ids=driver.ids,
            physical_keys=len(host_in.data),
            logical_keys=len(host_in.data) * machine.scale,
            dtype=str(host_in.dtype),
            duration=duration,
            phase_durations=phases,
            output=output,
            degraded=degraded,
            retries=recovery.retries,
            reroutes=recovery.reroutes,
            timeouts=recovery.timeouts,
            fault_downtime=fault_downtime,
            excluded_gpus=self.excluded,
            replans=self.rec.replans,
            checkpoints=self.rec.checkpoints,
            checkpoints_restored=self.rec.checkpoints_restored,
            speculations=self.rec.speculations,
            speculative_wins=self.rec.speculative_wins,
            deadline_exceeded=deadline_hit,
            completed_phases=self.rec.completed_phases,
            **driver.result_fields(),
        )

    # -- internals ---------------------------------------------------------
    def _dump_postmortem(self, exc: BaseException,
                         phase: Optional[str],
                         phase_started: Optional[float] = None) -> None:
        """Write a failure bundle if the config asks for one.

        Never raises: the original exception is mid-flight and a
        reporting failure must not mask it.
        """
        directory = self.config.postmortem_dir
        if directory is None:
            return
        from repro.obs.postmortem import build_bundle, write_bundle
        try:
            bundle = build_bundle(self.machine, exc, phase=phase,
                                  phase_started=phase_started,
                                  label=self.config.job_label)
            self.postmortems.append(write_bundle(bundle, directory))
        except Exception:  # noqa: BLE001 - reporting must not mask exc
            pass

    def _actor(self) -> str:
        """Span actor for this run's supervisor-level trace records."""
        if self.config.job_label is not None:
            return f"job:{self.config.job_label}"
        return "supervisor"

    def _initial_ids(self, algorithm: str,
                     gpu_ids: Optional[Sequence[int]]) -> tuple:
        machine = self.machine
        ids = tuple(gpu_ids) if gpu_ids is not None else None
        if ids is None:
            if algorithm == "p2p":
                count = min(machine.num_gpus,
                            1 << int(math.log2(machine.num_gpus)))
                ids = machine.spec.preferred_gpu_set(count)
            else:
                ids = machine.spec.preferred_gpu_set(machine.num_gpus)
        if len(set(ids)) != len(ids):
            raise SortError(f"duplicate GPU ids in {ids}")
        if machine.faults is not None:
            survivors, excluded = surviving_gpu_ids(machine, ids)
            if not survivors:
                raise SortError(
                    f"no healthy GPUs left in {ids}: all failed or "
                    "straggling past the exclusion factor")
            self.excluded = excluded
            ids = survivors
        if algorithm == "p2p":
            keep = 1 << int(math.log2(len(ids)))
            ids = tuple(ids[:keep])
        return tuple(ids)

    def _run_phase(self, name: str, body, deadline):
        """One phase = one wait on a task-group runner.

        The runner raises at most one exception (the phase's recorded
        failure or the deadline); the quiesce in the except path is a
        backstop that tears down any task the runner could not reap
        before the supervisor reacts to the error.  A generator: the
        yielded events reach either :meth:`sort`'s host trampoline
        (``env.run`` per event) or the surrounding process when the run
        executes as :meth:`sort_async` — same waits either way.
        """
        env = self.machine.env
        group = TaskGroup(env, name=name)
        runner = env.process(group.run(body(group), deadline=deadline))
        try:
            yield runner
        except BaseException:
            yield from self._quiesce(group, runner)
            raise

    def _quiesce(self, group: TaskGroup, runner):
        """Force-drain a failed phase so no task outlives it."""
        env = self.machine.env
        for _attempt in range(100):
            group.cancelled = True
            leftovers = group.alive()
            if runner.is_alive:
                leftovers.append(runner)
            if not leftovers:
                return
            for proc in leftovers:
                group.interrupt_task(proc)
            try:
                yield env.all_of(leftovers)
            except BaseException:  # noqa: BLE001 - keep draining
                continue

    def _replan(self, driver, phase: str, exc: BaseException) -> None:
        machine = self.machine
        self.rec.replans += 1
        if self.rec.replans > self.config.max_replans:
            raise RecoveryError(
                f"giving up after {self.config.max_replans} replans "
                f"(last failure in {phase}: {exc})") from exc
        survivors, excluded_now = surviving_gpu_ids(machine, driver.ids)
        if not survivors:
            raise SortError(
                f"no healthy GPUs left in {driver.ids}: all failed or "
                "straggling past the exclusion factor") from exc
        dead = tuple(gpu for gpu in driver.ids if gpu not in survivors)
        for gpu in excluded_now:
            if gpu not in self.excluded:
                self.excluded = self.excluded + (gpu,)
        now = machine.env.now
        machine.trace.record("Replan", self._actor(), now)
        if machine.obs is not None:
            machine.obs.replanned(phase, type(exc).__name__, dead,
                                  survivors, now)
        driver.replan(phase, survivors, exc)
