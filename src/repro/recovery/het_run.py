"""Supervised HET sort: the phase driver behind ``algorithm="het"``.

Two phases:

``Pipeline``
    stream the chunk plan through the GPUs in *group-synchronous
    batches* — one chunk per GPU at a time, each chunk a
    HtoD → sort → DtoH chain into its own host staging run.  After
    every completed batch the flushed runs form a ``kind="runs"``
    :class:`PhaseCheckpoint`: host memory is the durable store, so a
    later GPU failure costs only the in-flight batch.
``Merge``
    the final CPU multiway merge of all staged runs — host-side work
    that no GPU failure can touch.

Deliberate simplifications versus :func:`repro.sort.het.het_sort`
(which stays the paper-faithful measurement path):

* **one** chunk buffer per GPU instead of the 2n/3n double buffering —
  the supervisor needs a quiescent point per batch to checkpoint at,
  which forfeits the copy/compute overlap;
* chunks are still planned with :func:`chunk_capacity_for` under the
  *configured* buffer count, so the supervised run sorts the same
  chunk layout the plain run would;
* keys only, no eager merging, no GPU-merged groups, and no straggler
  speculation (a straggling chunk chain delays only its lane's batch).

Replanning is cheap here: flushed runs live on the host, so the driver
just re-batches the unflushed chunks over the survivors — any subset
size works, no power-of-two constraint, and nothing is re-fetched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ReproError, SortError
from repro.recovery.checkpoint import PhaseCheckpoint
from repro.runtime.buffer import HostBuffer
from repro.runtime.cpu_ops import cpu_multiway_merge
from repro.runtime.kernels import sort_on_device
from repro.runtime.memcpy import copy_async, span
from repro.sort.het import (
    HetConfig,
    _plan_chunks,
    chunk_capacity_for,
)


@dataclass
class _SupTask:
    """One chunk: its host source range and staged output run."""

    index: int
    src_start: int
    src_stop: int
    run: np.ndarray
    flushed: bool = False

    @property
    def size(self) -> int:
        return self.src_stop - self.src_start


class HetRun:
    """State and phase bodies of one supervised HET sort."""

    def __init__(self, sup, host_in: HostBuffer, ids: Tuple[int, ...],
                 het_config: Optional[HetConfig] = None):
        self.sup = sup
        self.machine = sup.machine
        self.config = het_config or HetConfig()
        if self.config.eager_merge or self.config.gpu_merge_groups:
            raise SortError(
                "the supervised HET sort supports neither eager_merge "
                "nor gpu_merge_groups (use repro.sort.het.het_sort)")
        self.host_in = host_in
        self.n = len(host_in.data)
        self.dtype = host_in.dtype
        self.ids = tuple(ids)

        machine = self.machine
        devices = [machine.device(i) for i in self.ids]
        chunk_capacity = chunk_capacity_for(machine, devices, self.config,
                                            self.dtype, None, self.n)
        group_sizes = _plan_chunks(self.n, len(self.ids), chunk_capacity)
        self.groups = len(group_sizes)
        self._borrowed: List[np.ndarray] = []
        self.tasks: List[_SupTask] = []
        offset = 0
        for sizes in group_sizes:
            for size in sizes:
                run = self.sup.pool.take(size, self.dtype)
                self._borrowed.append(run)
                self.tasks.append(_SupTask(
                    index=len(self.tasks), src_start=offset,
                    src_stop=offset + size, run=run))
                offset += size
        self.chunk_capacity = max(task.size for task in self.tasks)
        self.host_out = machine.host_buffer(
            np.empty(self.n, dtype=self.dtype), numa=host_in.numa)
        self.queue: List[str] = ["Pipeline", "Merge"]
        self._allocated: List = []

    # -- driver protocol ---------------------------------------------------
    def body(self, name: str):
        return {"Pipeline": self._pipeline, "Merge": self._merge}[name]

    def checkpoint_body(self, name: str):
        # Checkpoints are recorded per batch inside the Pipeline body —
        # a phase-end checkpoint would duplicate the last one.
        return None

    def after_phase(self, name: str) -> None:
        pass

    def replan(self, phase: str, survivors, exc) -> None:
        # Flushed runs are host-resident: nothing to restore, just
        # re-batch the remaining chunks over the survivors.
        self._free_device_state()
        self.ids = tuple(survivors)
        if "Pipeline" not in self.queue:
            self.queue = ["Pipeline"] + list(self.queue)

    def finalize(self) -> np.ndarray:
        return self.host_out.data

    def result_fields(self) -> dict:
        return {"chunk_groups": self.groups}

    def cleanup(self) -> None:
        self._free_device_state()
        for array in self._borrowed:
            self.sup.pool.give(array)
        self._borrowed = []

    # -- phase bodies ------------------------------------------------------
    def _pipeline(self, group):
        machine = self.machine
        env = machine.env
        buffers = [self._alloc(machine.device(gpu), self.chunk_capacity,
                               f"sup-het{gpu}")
                   for gpu in self.ids]
        while True:
            batch = [task for task in self.tasks if not task.flushed]
            batch = batch[:len(buffers)]
            if not batch:
                break
            procs = [group.spawn(self._chunk_chain(task, buffers[lane]),
                                 name=f"chunk{task.index}")
                     for lane, task in enumerate(batch)]
            yield env.all_of(procs)
            if group.failure is not None:
                raise group.failure
            flushed = tuple(task.run for task in self.tasks
                            if task.flushed)
            self.sup.note_checkpoint(PhaseCheckpoint(
                phase="Pipeline", at=env.now, gpu_ids=self.ids,
                chunk=self.chunk_capacity, kind="runs",
                payloads=flushed))
        for buffer in buffers:
            self._free_quietly(buffer)

    def _chunk_chain(self, task: _SupTask, buffer):
        machine = self.machine
        size = task.size
        yield from copy_async(
            machine, span(buffer, 0, size),
            span(self.host_in, task.src_start, task.src_stop),
            phase="HtoD")
        yield from sort_on_device(machine, span(buffer, 0, size),
                                  primitive=self.config.primitive,
                                  phase="Sort")
        run_buffer = HostBuffer(task.run, numa=self.host_in.numa)
        yield from copy_async(machine, span(run_buffer, 0, size),
                              span(buffer, 0, size), phase="DtoH")
        # Only a fully flushed chunk counts: copy_async writes its
        # destination at completion, so a chain that died mid-flight
        # leaves the run untouched and unflushed.
        task.flushed = True

    def _merge(self, group):
        runs = [task.run for task in self.tasks]
        if len(runs) == 1:
            self.host_out.data[:] = runs[0]
            return
        yield from cpu_multiway_merge(self.machine, self.host_out.data,
                                      runs, numa=self.host_in.numa,
                                      phase="Merge")

    # -- allocation bookkeeping --------------------------------------------
    def _alloc(self, device, count: int, label: str):
        buffer = device.alloc(count, self.dtype, label=label)
        self._allocated.append(buffer)
        return buffer

    def _free_quietly(self, buffer) -> None:
        if getattr(buffer, "released", False):
            return
        try:
            buffer.free()
        except ReproError:
            pass
        if buffer in self._allocated:
            self._allocated.remove(buffer)

    def _free_device_state(self) -> None:
        for buffer in list(self._allocated):
            self._free_quietly(buffer)
        self._allocated = []
