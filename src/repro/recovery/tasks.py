"""Structured concurrency for supervised phases.

A :class:`TaskGroup` is a nursery for the processes one supervised
phase spawns.  Every task runs inside a *shield* — a wrapper generator
that absorbs :class:`~repro.sim.engine.Interrupt` (cooperative
cancellation) and records any other failure into the group instead of
letting the process event fail.  That keeps the simulation environment
clean: a bare failing :class:`~repro.sim.engine.Process` with no waiter
crashes the event loop, and two simultaneous failures under one
``AllOf`` crash it even *with* a waiter.  With shields, task process
events always succeed; failures travel through ``group.failure`` and
the ``failed`` event, which the phase runner turns into exactly one
exception raised at a well-defined point.

The runner (:meth:`TaskGroup.run`) waits for all tasks, reacts to the
first recorded failure or an optional deadline event by cancelling the
survivors, drains them, and then raises — so the supervisor observes
one typed error per phase, never a half-torn-down event loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import DeadlineExceededError
from repro.sim.engine import Environment, Event, Interrupt, Process


class TaskGroup:
    """Nursery tracking one supervised phase's processes.

    Spawn with :meth:`spawn`; run the phase via :meth:`run` (itself a
    process generator).  After a failure or cancellation the group is
    *closed*: tasks that have not started yet exit immediately instead
    of beginning fresh work.
    """

    def __init__(self, env: Environment, name: str = "phase"):
        self.env = env
        self.name = name
        self.procs: List[Process] = []
        #: Results of finished tasks by name (``None`` for failed ones).
        self.results: Dict[str, object] = {}
        #: First failure recorded by any shield (wins; later ones drop).
        self.failure: Optional[BaseException] = None
        self.failed: Event = env.event()
        self.cancelled = False
        self._interrupted: Set[int] = set()

    # -- spawning ----------------------------------------------------------
    def spawn(self, gen, name: str) -> Process:
        """Run ``gen`` as a shielded task; its failures go to the group."""
        proc = self.env.process(self._shield(gen, name))
        self.procs.append(proc)
        return proc

    def _shield(self, gen, name: str):
        if self.cancelled:
            # The group was torn down before this task ever started —
            # don't begin fresh work on a layout being dismantled.
            gen.close()
            return None
        try:
            value = yield from gen
        except Interrupt:
            return None
        except BaseException as exc:  # noqa: BLE001 - first failure wins
            self.note_failure(exc)
            return None
        self.results[name] = value
        return value

    def note_failure(self, exc: BaseException) -> None:
        """Record ``exc`` as the phase failure (first one wins)."""
        if self.failure is None:
            self.failure = exc
        if not self.failed.triggered:
            self.failed.succeed()

    # -- cancellation ------------------------------------------------------
    def cancel(self) -> None:
        """Interrupt every started live task; block unstarted ones.

        Tasks with no ``_target`` yet (their ``Initialize`` event is
        still queued) cannot be interrupted safely — the shield's entry
        check makes them exit as soon as they start instead.  Each task
        is interrupted at most once: the shield absorbs it and ends the
        task, and interrupting a process twice (or after it died) is an
        engine error.
        """
        self.cancelled = True
        self._interrupt_live()

    def _interrupt_live(self) -> None:
        for proc in self.procs:
            self.interrupt_task(proc)

    def interrupt_task(self, proc: Process,
                       cause: str = "phase cancelled") -> bool:
        """Interrupt one task at most once; returns whether it was sent.

        All targeted cancellation (speculation losers, group teardown)
        goes through here so a task never receives a second interrupt —
        interrupting a process twice, or after it died, is an engine
        error.
        """
        if (proc.is_alive and proc._target is not None
                and id(proc) not in self._interrupted):
            self._interrupted.add(id(proc))
            proc.interrupt(cause)
            return True
        return False

    def alive(self) -> List[Process]:
        """Tasks that have not finished yet."""
        return [proc for proc in self.procs if proc.is_alive]

    # -- the phase runner --------------------------------------------------
    def run(self, body, deadline: Optional[Event] = None):
        """Process: run ``body`` (a generator) plus its spawned tasks.

        Waits until every task (including ones spawned mid-phase) has
        finished.  On the first recorded failure — or when ``deadline``
        fires — cancels the remainder, drains them, and raises the
        failure (or :class:`~repro.errors.DeadlineExceededError`).
        Interrupting the runner itself (supervisor teardown after a raw
        event-loop escape) makes it return quietly.
        """
        try:
            self.spawn(body, name="body")
            while True:
                # ``processed``, not ``triggered``: a Timeout is born
                # triggered (its value is set at construction) and only
                # becomes processed when its delay elapses.
                if (deadline is not None and deadline.processed
                        and self.failure is None):
                    self.cancel()
                    yield from self._drain()
                    raise DeadlineExceededError(
                        f"deadline expired during the {self.name} phase "
                        f"at t={self.env.now:.6f}s")
                if self.failure is not None:
                    self.cancel()
                    yield from self._drain()
                    raise self.failure
                live = self.alive()
                if not live:
                    break
                waits = [self.env.all_of(live)]
                if not self.failed.triggered:
                    waits.append(self.failed)
                if deadline is not None and not deadline.processed:
                    waits.append(deadline)
                yield self.env.any_of(waits)
        except Interrupt:
            return None
        return None

    def _drain(self):
        """Wait for cancelled tasks to finish unwinding.

        Loops because tasks that had not started when :meth:`cancel`
        ran only become interruptible (or exit via the shield's entry
        check) once their ``Initialize`` fires.
        """
        while True:
            live = self.alive()
            if not live:
                return
            self._interrupt_live()
            yield self.env.all_of(live)
