"""Supervised P2P sort: the phase driver behind ``algorithm="p2p"``.

Splits :func:`repro.sort.p2p.p2p_sort` into four supervised phases —

``Partition``
    allocate chunk + auxiliary buffers on every GPU and copy each
    GPU's slice of the padded staging array down (``HtoD``);
``LocalSort``
    sort every chunk on its GPU; optionally launch speculative backup
    sorts for stragglers (see :meth:`_speculation_monitor`);
``Exchange``
    the recursive pivot-swap-merge of the merge phase, run through the
    task group's spawn/check seam so a mid-swap device failure unwinds
    cooperatively instead of crashing the event loop;
``Gather``
    copy the merged chunks back to the host (``DtoH``).

After ``LocalSort`` and ``Exchange`` the driver can stage every chunk
to host memory (a restorable :class:`PhaseCheckpoint`).  On a replan
the dead GPUs' work is recovered from the newest restorable
checkpoint: a *merged* checkpoint resolves entirely from host memory,
a *sorted* one re-distributes the staged runs across the surviving
power-of-two GPU prefix (phase ``Restore``: copy runs down, merge
pairwise on-device), and with no restorable checkpoint the sort
restarts from ``Partition`` on the survivors.

The padded length is fixed at the *initial* GPU count: any later
power-of-two survivor prefix divides it, so chunks re-partition without
re-padding.  Keys only — the supervised path does not carry payloads.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RecoveryError, ReproError, SortError
from repro.recovery.checkpoint import PhaseCheckpoint
from repro.runtime.buffer import HostBuffer
from repro.runtime.cpu_ops import cpu_multiway_merge
from repro.runtime.kernels import merge_two_on_device, sort_on_device
from repro.runtime.memcpy import copy_async, span
from repro.sort.p2p import P2PConfig, _Chunk, _pad_value, _Stats
from repro.sort.p2p import _merge_chunks


class P2PRun:
    """State and phase bodies of one supervised P2P sort."""

    def __init__(self, sup, host_in: HostBuffer, ids: Tuple[int, ...],
                 p2p_config: Optional[P2PConfig] = None):
        self.sup = sup
        self.machine = sup.machine
        self.config = p2p_config or P2PConfig()
        self.host_in = host_in
        self.n = len(host_in.data)
        self.dtype = host_in.dtype
        self.ids = tuple(ids)
        g = len(self.ids)
        if g & (g - 1):
            raise SortError(
                f"P2P sort needs a power-of-two GPU count, got {g}")
        self.chunk = -(-self.n // g)
        #: Fixed for the whole run: every later power-of-two survivor
        #: prefix divides it, so replans never re-pad.
        self.padded = self.chunk * g

        machine = self.machine
        padded_data = sup.pool.take(self.padded, self.dtype)
        self._borrowed: List[np.ndarray] = [padded_data]
        padded_data[:self.n] = host_in.data
        padded_data[self.n:] = _pad_value(self.dtype)
        self.staging = machine.host_buffer(padded_data, numa=host_in.numa,
                                           pinned=host_in.pinned)
        self.host_out = machine.host_buffer(
            np.empty(self.padded, dtype=self.dtype),
            numa=self.staging.numa, pinned=self.staging.pinned)

        self.chunks: List[_Chunk] = []
        self.sorted_flags: List[bool] = []
        self.stats = _Stats()
        self.queue: List[str] = ["Partition", "LocalSort", "Exchange",
                                 "Gather"]
        self._allocated: List = []
        self._sort_procs: Dict[int, object] = {}
        self._pending_stage: Dict[int, np.ndarray] = {}
        self._restore_ck: Optional[PhaseCheckpoint] = None
        self._merged_ck: Optional[PhaseCheckpoint] = None
        self.cpu_output: Optional[np.ndarray] = None
        self.use_staged_output = False

    # -- driver protocol ---------------------------------------------------
    def body(self, name: str):
        return {"Partition": self._partition,
                "LocalSort": self._local_sort,
                "Exchange": self._exchange,
                "Restore": self._restore,
                "Gather": self._gather}[name]

    def checkpoint_body(self, name: str):
        cfg = self.sup.config
        if name == "LocalSort" and cfg.checkpoint_sorted_chunks:
            return self._stage_chunks
        if name == "Exchange" and cfg.checkpoint_merged_chunks:
            return self._stage_chunks
        return None

    def after_phase(self, name: str) -> None:
        now = self.machine.env.now
        if name == "Partition":
            self.sup.note_checkpoint(PhaseCheckpoint(
                phase=name, at=now, gpu_ids=self.ids, chunk=self.chunk))
        elif name in ("LocalSort", "Exchange"):
            if len(self._pending_stage) == len(self.chunks):
                kind = "sorted" if name == "LocalSort" else "merged"
                payloads = tuple(self._pending_stage[slot]
                                 for slot in range(len(self.chunks)))
                self.sup.note_checkpoint(PhaseCheckpoint(
                    phase=name, at=now, gpu_ids=self.ids,
                    chunk=self.chunk, kind=kind, payloads=payloads))
            self._pending_stage = {}
        elif name == "Restore":
            ck = self._restore_ck
            self.sup.note_restored(
                name, len(ck.payloads) if ck is not None else 0)
            self._restore_ck = None
            if self.cpu_output is not None:
                # The host merge already produced the full output —
                # nothing left for the remaining phases to do.
                self.queue = [name]

    def replan(self, phase: str, survivors, exc) -> None:
        self._free_device_state()
        keep = 1 << int(math.log2(len(survivors)))
        self.ids = tuple(survivors[:keep])
        self.chunk = self.padded // len(self.ids)
        self.sorted_flags = []
        self._sort_procs = {}
        self._pending_stage = {}
        ck = self.sup.last_restorable()
        if ck is not None and ck.kind == "merged":
            # Globally merged chunks are staged on the host: the output
            # assembles from the checkpoint, no GPU work remains.
            self._merged_ck = ck
            self.use_staged_output = True
            self.queue = []
        elif ck is not None and ck.kind == "sorted":
            self._restore_ck = ck
            self.queue = ["Restore", "Exchange", "Gather"]
        else:
            self.queue = ["Partition", "LocalSort", "Exchange", "Gather"]

    def finalize(self) -> np.ndarray:
        if self.cpu_output is not None:
            return self.cpu_output[:self.n]
        if self.use_staged_output:
            assert self._merged_ck is not None
            return np.concatenate(self._merged_ck.payloads)[:self.n]
        return self.host_out.data[:self.n]

    def result_fields(self) -> dict:
        g = len(self.ids)
        return {
            "p2p_bytes": self.stats.p2p_bytes,
            "merge_stages": 2 * int(math.log2(g)) - 1 if g > 1 else 0,
            # Pivots accumulate across replans: aborted exchange
            # attempts keep their probes (they were paid for).
            "pivots": tuple(self.stats.pivots),
        }

    def cleanup(self) -> None:
        self._free_device_state()
        for array in self._borrowed:
            self.sup.pool.give(array)
        self._borrowed = []

    # -- phase bodies ------------------------------------------------------
    def _partition(self, group):
        machine = self.machine
        need = 2 * self.chunk * self.dtype.itemsize * machine.scale
        for gpu_id in self.ids:
            device = machine.device(gpu_id)
            if need > device.capacity_logical:
                raise SortError(
                    f"{device.name}: chunk of {self.chunk} keys needs "
                    f"{need / 1e9:.1f} GB (primary + auxiliary buffer), "
                    f"exceeding {device.capacity_logical / 1e9:.1f} GB; "
                    "use HET sort for out-of-core data")
        self.chunks = []
        for gpu_id in self.ids:
            device = machine.device(gpu_id)
            primary = self._alloc(device, self.chunk, f"sup-chunk{gpu_id}")
            aux = self._alloc(device, self.chunk, f"sup-aux{gpu_id}")
            self.chunks.append(_Chunk(device, primary, aux))
        self.sorted_flags = [False] * len(self.ids)
        for i, c in enumerate(self.chunks):
            lo = i * self.chunk
            group.spawn(copy_async(
                machine, span(c.primary),
                span(self.staging, lo, lo + self.chunk), phase="HtoD"),
                name=f"htod{i}")
        yield from ()

    def _local_sort(self, group):
        env = self.machine.env
        cfg = self.sup.config
        pending = [slot for slot, done in enumerate(self.sorted_flags)
                   if not done]
        if not pending:
            return
        done_evts = {slot: env.event() for slot in pending}
        durations: Dict[int, float] = {}
        phase_start = env.now
        self._sort_procs = {}
        for slot in pending:
            self._sort_procs[slot] = group.spawn(
                self._sort_task(slot, done_evts[slot], durations,
                                phase_start), name=f"sort{slot}")
        if cfg.speculation and len(pending) >= 2:
            group.spawn(self._speculation_monitor(
                group, done_evts, durations, phase_start), name="monitor")
        yield from ()

    def _sort_task(self, slot: int, done_evt, durations, start):
        try:
            c = self.chunks[slot]
            yield from sort_on_device(self.machine, span(c.primary),
                                      primitive=self.sup.config.primitive,
                                      phase="Sort")
            self.sorted_flags[slot] = True
            durations[slot] = self.machine.env.now - start
        finally:
            # Fires on success, failure *and* cancellation so the
            # speculation monitor never waits on a dead task.
            if not done_evt.triggered:
                done_evt.succeed()

    def _exchange(self, group):
        group_spawn = (lambda gen:
                       group.spawn(gen, name=f"x{len(group.procs)}"))

        def check():
            if group.failure is not None:
                raise group.failure

        yield from _merge_chunks(self.machine, self.chunks, self.config,
                                 self.stats, spawn=group_spawn, check=check)

    def _gather(self, group):
        machine = self.machine
        for i, c in enumerate(self.chunks):
            lo = i * self.chunk
            group.spawn(copy_async(
                machine, span(self.host_out, lo, lo + self.chunk),
                span(c.primary), phase="DtoH"), name=f"dtoh{i}")
        yield from ()

    # -- checkpoint staging ------------------------------------------------
    def _stage_chunks(self, group):
        self._pending_stage = {}
        for slot in range(len(self.chunks)):
            group.spawn(self._stage_task(slot), name=f"stage{slot}")
        yield from ()

    def _stage_task(self, slot: int):
        machine = self.machine
        array = np.empty(self.chunk, dtype=self.dtype)
        host = machine.host_buffer(array, numa=self.staging.numa,
                                   pinned=True)
        yield from copy_async(machine, span(host),
                              span(self.chunks[slot].primary),
                              phase="Checkpoint")
        # Recorded only once the DtoH completed: a chunk whose staging
        # copy died never enters the checkpoint.
        self._pending_stage[slot] = array

    # -- restore from a sorted checkpoint ----------------------------------
    def _restore(self, group):
        machine = self.machine
        sup = self.sup
        ck = self._restore_ck
        assert ck is not None and ck.payloads is not None
        runs = ck.payloads
        old_chunk = ck.chunk
        per = len(runs) // len(self.ids)
        new_chunk = old_chunk * per
        need = 2 * new_chunk * self.dtype.itemsize * machine.scale
        fits = all(need <= machine.device(gpu).capacity_logical
                   for gpu in self.ids)
        if not fits:
            if not sup.config.cpu_merge_fallback:
                raise RecoveryError(
                    f"survivors {self.ids} cannot hold chunks of "
                    f"{new_chunk} keys and cpu_merge_fallback is off")
            out = np.empty(self.padded, dtype=self.dtype)
            yield from cpu_multiway_merge(machine, out, list(runs),
                                          numa=self.staging.numa,
                                          phase="Merge")
            self.cpu_output = out
            return
        self.chunk = new_chunk
        self.chunks = []
        for gpu_id in self.ids:
            device = machine.device(gpu_id)
            primary = self._alloc(device, new_chunk, f"sup-chunk{gpu_id}")
            aux = self._alloc(device, new_chunk, f"sup-aux{gpu_id}")
            self.chunks.append(_Chunk(device, primary, aux))
        self.sorted_flags = [True] * len(self.ids)
        for slot in range(len(self.ids)):
            group.spawn(self._restore_slot(
                slot, runs[slot * per:(slot + 1) * per], old_chunk),
                name=f"restore{slot}")

    def _restore_slot(self, slot: int, runs, old_chunk: int):
        """Rebuild one survivor chunk from ``per`` staged sorted runs."""
        machine = self.machine
        c = self.chunks[slot]
        for r, run in enumerate(runs):
            host = machine.host_buffer(run, numa=self.staging.numa,
                                       pinned=True)
            yield from copy_async(
                machine, span(c.primary, r * old_chunk,
                              (r + 1) * old_chunk),
                span(host), phase="Restore")
            if r:
                # Keep the growing prefix sorted: merge the new run in.
                yield from merge_two_on_device(
                    machine, span(c.primary, 0, (r + 1) * old_chunk),
                    r * old_chunk, phase="Restore")

    # -- speculation -------------------------------------------------------
    def _speculation_monitor(self, group, done_evts, durations,
                             phase_start):
        """Watch the local sorts; back up stragglers on finished GPUs.

        Arms once a quorum of sorts finished (the median duration is
        then meaningful); a still-running sort becomes a straggler when
        the phase has run past ``speculation_multiple`` times that
        median.  Each straggler gets one backup: re-sort its staging
        slice on the least-loaded finished GPU; the first finisher wins
        and the loser is cancelled.
        """
        env = self.machine.env
        cfg = self.sup.config
        quorum = max(1, math.ceil(len(done_evts) * cfg.speculation_quorum))
        while sum(1 for e in done_evts.values() if e.triggered) < quorum:
            waiting = [e for e in done_evts.values() if not e.triggered]
            if not waiting:
                return
            yield env.any_of(waiting)
        if not durations:
            # Quorum reached through failures, not completions — the
            # group failure path owns what happens next.
            return
        median = float(np.median(list(durations.values())))
        target = phase_start + cfg.speculation_multiple * median
        while True:
            laggards = [slot for slot, e in done_evts.items()
                        if not e.triggered]
            if not laggards:
                return
            if env.now >= target:
                break
            yield env.any_of([env.timeout(target - env.now)]
                             + [done_evts[slot] for slot in laggards])
        busy = set()
        for slot in laggards:
            if done_evts[slot].triggered or self.sorted_flags[slot]:
                continue
            helper = self._pick_helper(durations, busy, slot)
            if helper is None:
                continue
            busy.add(helper)
            group.spawn(self._speculate(group, slot, helper,
                                        done_evts[slot]),
                        name=f"spec{slot}")

    def _pick_helper(self, durations, busy, straggler: int) -> Optional[int]:
        machine = self.machine
        for slot, _duration in sorted(durations.items(),
                                      key=lambda kv: (kv[1], kv[0])):
            if slot == straggler or slot in busy:
                continue
            if (machine.faults is not None
                    and machine.faults.is_failed(self.ids[slot])):
                continue
            return slot
        return None

    def _speculate(self, group, slot: int, helper_slot: int, orig_done):
        machine = self.machine
        env = machine.env
        sup = self.sup
        straggler = self.chunks[slot]
        helper = self.chunks[helper_slot]
        sup.rec.speculations += 1
        if machine.obs is not None:
            machine.obs.speculated("Sort", straggler.device.name,
                                   helper.device.name, "launched", env.now)
        outcome = "aborted"
        try:
            temp = self._alloc(helper.device, self.chunk,
                               f"spec{slot}on{helper_slot}")
        except ReproError:
            # No room (or the helper just died) — give up quietly; the
            # original sort is still running.
            if machine.obs is not None:
                machine.obs.speculated("Sort", straggler.device.name,
                                       helper.device.name, outcome,
                                       env.now)
            return
        backup_done = env.event()
        flag: Dict[str, bool] = {}
        backup = group.spawn(
            self._backup_chain(slot, temp, backup_done, flag),
            name=f"backup{slot}")
        outcome = "abandoned"
        try:
            yield env.any_of([orig_done, backup_done])
            if self.sorted_flags[slot]:
                # The original finished first: cancel the backup and
                # wait for it to unwind before freeing its buffer.
                outcome = "lost"
                group.interrupt_task(backup)
                if not backup_done.triggered:
                    yield backup_done
            elif flag.get("sorted"):
                outcome = "won"
                original = self._sort_procs.get(slot)
                if original is not None:
                    group.interrupt_task(original)
                yield from copy_async(machine, span(straggler.primary),
                                      span(temp), phase="Speculate")
                self.sorted_flags[slot] = True
                sup.rec.speculative_wins += 1
            # Otherwise both events fired through failures — the group
            # failure path owns recovery ("abandoned").
        finally:
            self._free_quietly(temp)
            if machine.obs is not None:
                machine.obs.speculated("Sort", straggler.device.name,
                                       helper.device.name, outcome,
                                       env.now)

    def _backup_chain(self, slot: int, temp, backup_done, flag):
        """Re-fetch the straggler's input and sort it on the helper."""
        machine = self.machine
        try:
            lo = slot * self.chunk
            yield from copy_async(machine, span(temp),
                                  span(self.staging, lo, lo + self.chunk),
                                  phase="Speculate")
            yield from sort_on_device(machine, span(temp),
                                      primitive=self.sup.config.primitive,
                                      phase="Speculate")
            flag["sorted"] = True
        finally:
            if not backup_done.triggered:
                backup_done.succeed()

    # -- allocation bookkeeping --------------------------------------------
    def _alloc(self, device, count: int, label: str):
        buffer = device.alloc(count, self.dtype, label=label)
        self._allocated.append(buffer)
        return buffer

    def _free_quietly(self, buffer) -> None:
        if getattr(buffer, "released", False):
            return
        try:
            buffer.free()
        except ReproError:
            pass
        if buffer in self._allocated:
            self._allocated.remove(buffer)

    def _free_device_state(self) -> None:
        for buffer in list(self._allocated):
            self._free_quietly(buffer)
        self._allocated = []
        self.chunks = []
