"""Cluster-tier exchange bookkeeping for the hierarchical sort.

The faulted :func:`~repro.sort.hier.hier_sort` path runs its
cross-node all-to-all as a ledger of *contributions*: one sorted run
per input slice, held in one node's host memory, partitioned by the
epoch's fixed splitters into per-range segments.  Every segment whose
range is owned by another node must be delivered over the fabric; the
ledger records which ``(contribution, range)`` pairs have landed, so a
mid-exchange node loss replays only what the death actually
invalidated:

* segments already delivered **between surviving nodes** stay durable
  (their payload lives in the destination's host memory);
* contributions *held by* the dead node are dropped — their run data is
  gone — and their input slices come back as repair shards for the
  survivors to re-sort against the same splitters;
* ranges *owned by* the dead node are reassigned to survivors and
  their delivered marks cleared — the payloads died with the owner's
  inbox.

Splitters are fixed for the lifetime of one ledger, which is what makes
completed deliveries durable; a death before any exchange work simply
builds a fresh ledger over the survivors instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SortError
from repro.runtime.buffer import HostBuffer


@dataclass
class Contribution:
    """One sorted run of one input slice, held by one node."""

    cid: int
    #: Node whose host memory holds the run (dies with the node).
    node: int
    #: Half-open slice of the global input this run was sorted from
    #: (what a repair must re-sort if the holder dies).
    src_start: int
    src_stop: int
    #: Host buffer holding the padded run; the run itself is the
    #: buffer's first ``size`` elements.
    host: Optional[HostBuffer]
    size: int
    #: ``searchsorted(run, splitters)`` — per-range segment bounds.
    bounds: np.ndarray

    @property
    def run(self) -> np.ndarray:
        return self.host.data[:self.size]

    def segment(self, rng: int, num_ranges: int) -> Tuple[int, int]:
        """Element bounds of this run's segment for range ``rng``."""
        lo = 0 if rng == 0 else int(self.bounds[rng - 1])
        hi = self.size if rng == num_ranges - 1 else int(self.bounds[rng])
        return lo, hi


@dataclass
class ExchangeLedger:
    """Delivery state of one exchange epoch (fixed splitters)."""

    #: The epoch's fixed splitters (``num_ranges - 1`` of them).
    splitters: np.ndarray
    #: Alive nodes at ledger-build time, in node order; range ``j`` is
    #: initially owned by ``nodes[j]``.
    nodes: Tuple[int, ...]
    contributions: List[Contribution] = field(default_factory=list)
    #: range -> owning node (reassigned when an owner dies).
    range_owner: Dict[int, int] = field(default_factory=dict)
    #: ``(cid, range)`` pairs whose segment landed in the owner's inbox.
    delivered: Set[Tuple[int, int]] = field(default_factory=set)
    #: ``(cid, range)`` -> received payload buffer (in the owner's
    #: host memory).
    inbox: Dict[Tuple[int, int], HostBuffer] = field(default_factory=dict)
    #: range -> merged output (host-side; survives only while its
    #: owner does).
    merged: Dict[int, np.ndarray] = field(default_factory=dict)
    _next_cid: int = 0

    def __post_init__(self):
        if not self.range_owner:
            self.range_owner = {j: node for j, node in enumerate(self.nodes)}

    @property
    def num_ranges(self) -> int:
        return len(self.nodes)

    def add_contribution(self, node: int, src_start: int, src_stop: int,
                         host: HostBuffer, size: int) -> Contribution:
        """Register a freshly sorted run held by ``node``."""
        contribution = Contribution(
            cid=self._next_cid, node=node, src_start=src_start,
            src_stop=src_stop, host=host, size=size,
            bounds=np.searchsorted(host.data[:size], self.splitters,
                                   side="left"))
        self._next_cid += 1
        self.contributions.append(contribution)
        return contribution

    def pending(self) -> List[Tuple[Contribution, int]]:
        """Undelivered cross-node ``(contribution, range)`` pairs."""
        pairs = []
        for contribution in self.contributions:
            for rng in range(self.num_ranges):
                if self.range_owner[rng] == contribution.node:
                    continue
                lo, hi = contribution.segment(rng, self.num_ranges)
                if hi > lo and (contribution.cid, rng) not in self.delivered:
                    pairs.append((contribution, rng))
        return pairs

    def unmerged_ranges(self) -> List[int]:
        return [rng for rng in range(self.num_ranges)
                if rng not in self.merged]

    def drop_node(self, node: int,
                  survivors: Sequence[int]) -> List[Tuple[int, int]]:
        """Remove a dead node from the ledger; returns repair slices.

        Contributions held by ``node`` are dropped (with every delivered
        mark and inbox payload they produced) and their input slices
        returned for re-sorting on the survivors; ranges owned by
        ``node`` are reassigned round-robin over ``survivors`` and
        their delivered marks and merged outputs cleared.
        """
        alive = [k for k in survivors if k != node]
        if not alive:
            raise SortError(
                f"node {node} died and no cluster nodes survive it")
        repairs: List[Tuple[int, int]] = []
        kept: List[Contribution] = []
        for contribution in self.contributions:
            if contribution.node == node:
                repairs.append((contribution.src_start,
                                contribution.src_stop))
                for rng in range(self.num_ranges):
                    self.delivered.discard((contribution.cid, rng))
                    self.inbox.pop((contribution.cid, rng), None)
            else:
                kept.append(contribution)
        self.contributions = kept
        orphaned = sorted(rng for rng, owner in self.range_owner.items()
                          if owner == node)
        for i, rng in enumerate(orphaned):
            self.range_owner[rng] = alive[i % len(alive)]
            self.merged.pop(rng, None)
            for contribution in self.contributions:
                self.delivered.discard((contribution.cid, rng))
                self.inbox.pop((contribution.cid, rng), None)
        return repairs

    def merge_parts(self, rng: int) -> List[np.ndarray]:
        """The sorted parts range ``rng``'s owner merges, in cid order.

        Local segments are read straight from the owner's runs; remote
        ones from the delivered inbox payloads.
        """
        owner = self.range_owner[rng]
        parts: List[np.ndarray] = []
        for contribution in sorted(self.contributions,
                                   key=lambda c: c.cid):
            if contribution.node == owner:
                lo, hi = contribution.segment(rng, self.num_ranges)
                if hi > lo:
                    parts.append(contribution.run[lo:hi])
            elif (contribution.cid, rng) in self.delivered:
                parts.append(self.inbox[(contribution.cid, rng)].data)
            else:
                raise SortError(
                    f"range {rng} merge scheduled before contribution "
                    f"{contribution.cid}'s segment was delivered")
        return parts
