"""Figure 16: sensitivity to the key distribution (Section 6.3).

2B integers, two GPUs on the IBM AC922.  Expected shape: P2P sort is
fastest on (nearly-)sorted data (little to no P2P traffic thanks to the
leftmost pivot), slowest on reverse-sorted data (maximal swaps); HET
sort is flat because its CPU merge is bandwidth-bound regardless.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.experiments.sort_scaling import sort_run
from repro.bench.report import Table

PAPER_FIG16: Dict[Tuple[str, str], float] = {
    ("p2p", "uniform"): 0.24, ("het", "uniform"): 0.36,
    ("p2p", "normal"): 0.24, ("het", "normal"): 0.36,
    ("p2p", "sorted"): 0.20, ("het", "sorted"): 0.35,
    ("p2p", "reverse-sorted"): 0.26, ("het", "reverse-sorted"): 0.35,
    ("p2p", "nearly-sorted"): 0.22, ("het", "nearly-sorted"): 0.35,
}

DISTRIBUTIONS = ("uniform", "normal", "sorted", "reverse-sorted",
                 "nearly-sorted")


def measure(system: str = "ibm-ac922", gpus: int = 2,
            billions: float = 2.0) -> List[Tuple[str, str, float, float]]:
    """(algorithm, distribution, measured, paper) rows."""
    rows = []
    for algorithm in ("p2p", "het"):
        for distribution in DISTRIBUTIONS:
            result = sort_run(system, algorithm, gpus, billions,
                              distribution=distribution)
            rows.append((algorithm, distribution, result.duration,
                         PAPER_FIG16.get((algorithm, distribution))))
    return rows


def run_fig16() -> Table:
    """Figure 16: varying data distributions, 2 GPUs on the AC922."""
    table = Table(["algorithm", "distribution", "measured [s]",
                   "paper [s]", "ratio"],
                  title="Figure 16: 2B integers, varying distributions, "
                        "2 GPUs on the IBM AC922")
    for algorithm, distribution, measured, paper in measure():
        table.add_row(algorithm, distribution, f"{measured:.3f}",
                      f"{paper:.2f}" if paper else "-",
                      f"{measured / paper:.2f}x" if paper else "-")
    return table
