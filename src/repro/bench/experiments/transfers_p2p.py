"""Figures 5-7: P2P data transfer throughput on the three systems.

Serial copies move 4 GB GPU-to-GPU; parallel scenarios run the
bidirectional mirrored-pair pattern the P2P merge phase uses
(Section 4.3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.report import Table, comparison_table
from repro.bench.transfers import measure_throughput, p2p, p2p_bidir
from repro.hw import delta_d22x, dgx_a100, ibm_ac922

PAPER_FIG5: Dict[str, float] = {
    "serial 0->1": 72.0, "serial 0->2": 32.0, "serial 0->3": 33.0,
    "parallel 0<->1": 145.0, "parallel 2<->3": 145.0,
    "parallel 0<->3, 1<->2": 53.0,
}

PAPER_FIG6: Dict[str, float] = {
    "serial 0->1": 48.0, "serial 0->2": 48.0, "serial 0->3": 9.0,
    "parallel 0<->1": 97.0, "parallel 2<->3": 97.0,
    "parallel 0<->3, 1<->2": 30.0,
}

PAPER_FIG7: Dict[str, float] = {
    "serial 0->1": 279.0,
    "parallel 0<->1": 530.0,
    "parallel 0<->2": 453.0,
    "parallel 0<->6, 2<->4": 894.0,
    "parallel 0<->3, 1<->2": 1060.0,
    "parallel 4 pairs (8 GPUs)": 2116.0,
}


def _pairs(*couples: Tuple[int, int]) -> List[Tuple]:
    transfers: List[Tuple] = []
    for a, b in couples:
        transfers.extend(p2p_bidir(a, b))
    return transfers


_SCENARIOS: Dict[str, Sequence[Tuple[str, List[Tuple]]]] = {
    "ibm-ac922": [
        ("serial 0->1", [p2p(0, 1)]),
        ("serial 0->2", [p2p(0, 2)]),
        ("serial 0->3", [p2p(0, 3)]),
        ("parallel 0<->1", _pairs((0, 1))),
        ("parallel 2<->3", _pairs((2, 3))),
        ("parallel 0<->3, 1<->2", _pairs((0, 3), (1, 2))),
    ],
    "delta-d22x": [
        ("serial 0->1", [p2p(0, 1)]),
        ("serial 0->2", [p2p(0, 2)]),
        ("serial 0->3", [p2p(0, 3)]),
        ("parallel 0<->1", _pairs((0, 1))),
        ("parallel 2<->3", _pairs((2, 3))),
        ("parallel 0<->3, 1<->2", _pairs((0, 3), (1, 2))),
    ],
    "dgx-a100": [
        ("serial 0->1", [p2p(0, 1)]),
        ("parallel 0<->1", _pairs((0, 1))),
        ("parallel 0<->2", _pairs((0, 2))),
        ("parallel 0<->6, 2<->4", _pairs((0, 6), (2, 4))),
        ("parallel 0<->3, 1<->2", _pairs((0, 3), (1, 2))),
        ("parallel 4 pairs (8 GPUs)", _pairs((0, 7), (1, 6), (2, 5), (3, 4))),
    ],
}

_BUILDERS = {"ibm-ac922": ibm_ac922, "delta-d22x": delta_d22x,
             "dgx-a100": dgx_a100}
_PAPER = {"ibm-ac922": PAPER_FIG5, "delta-d22x": PAPER_FIG6,
          "dgx-a100": PAPER_FIG7}


def measure_p2p(system: str) -> List[Tuple[str, float, float]]:
    """All (label, measured, paper) rows for one system's P2P figure."""
    builder = _BUILDERS[system]
    paper = _PAPER[system]
    return [(label, measure_throughput(builder, transfers),
             paper.get(label))
            for label, transfers in _SCENARIOS[system]]


def run(system: str) -> Table:
    """Regenerate the P2P transfer figure of one system."""
    figure = {"ibm-ac922": "Figure 5", "delta-d22x": "Figure 6",
              "dgx-a100": "Figure 7"}[system]
    return comparison_table(
        f"{figure}: P2P data transfers on {system}",
        "scenario", measure_p2p(system))


def run_fig5() -> Table:
    """Figure 5: P2P transfers on the IBM AC922."""
    return run("ibm-ac922")


def run_fig6() -> Table:
    """Figure 6: P2P transfers on the DELTA D22x."""
    return run("delta-d22x")


def run_fig7() -> Table:
    """Figure 7: P2P transfers on the DGX A100 (NVSwitch)."""
    return run("dgx-a100")
