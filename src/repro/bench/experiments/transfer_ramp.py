"""Transfer-size ramp: bandwidth versus message size.

A classic interconnect microbenchmark (Li et al., Pearson et al.): tiny
transfers are latency-bound, large ones approach the link's sustained
bandwidth, with the half-bandwidth point around
``latency * bandwidth``.  The paper measures only 4 GB copies; this
ramp characterizes the modelled links across the whole range.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.report import Table
from repro.hw import system_by_name
from repro.runtime import Machine
from repro.runtime.memcpy import copy_async, span

#: Logical transfer sizes swept, in bytes.
RAMP_SIZES = tuple(4 * 2 ** exp for exp in range(8, 31, 2))  # 1 KB .. 4 GB


def transfer_seconds(system: str, src: Tuple[str, int],
                     dst: Tuple[str, int], nbytes: float) -> float:
    """Simulated duration of one copy of ``nbytes`` (logical)."""
    physical = 1024
    machine = Machine(system_by_name(system),
                      scale=max(1.0, nbytes / (physical * 4)),
                      fast_functional=True)

    def endpoint(which):
        kind, index = which
        if kind == "host":
            return machine.host_buffer(np.zeros(physical, np.int32),
                                       numa=index)
        return machine.device(index).alloc(physical, np.int32)

    src_buf, dst_buf = endpoint(src), endpoint(dst)
    machine.run(copy_async(machine, span(dst_buf), span(src_buf)))
    return machine.now


def ramp(system: str, src: Tuple[str, int], dst: Tuple[str, int],
         sizes: Sequence[int] = RAMP_SIZES) -> List[Tuple[int, float]]:
    """(bytes, GB/s) points of the bandwidth ramp."""
    return [(size, size / transfer_seconds(system, src, dst, size) / 1e9)
            for size in sizes]


def half_bandwidth_size(points: Sequence[Tuple[int, float]]) -> int:
    """Smallest measured size reaching half the peak rate."""
    peak = max(rate for _, rate in points)
    for size, rate in points:
        if rate >= peak / 2:
            return size
    return points[-1][0]


def run_transfer_ramp() -> Table:
    """Bandwidth ramps for one characteristic path per system."""
    paths: Dict[str, Tuple[Tuple[str, int], Tuple[str, int], str]] = {
        "ibm-ac922": (("host", 0), ("gpu", 0), "HtoD over NVLink 2.0"),
        "delta-d22x": (("host", 0), ("gpu", 0), "HtoD over PCIe 3.0"),
        "dgx-a100": (("gpu", 0), ("gpu", 1), "P2P over NVSwitch"),
    }
    sizes = RAMP_SIZES
    columns, series = [], []
    halves = {}
    for system, (src, dst, label) in paths.items():
        points = ramp(system, src, dst, sizes)
        columns.append(f"{system} {label}")
        series.append([rate for _, rate in points])
        halves[system] = half_bandwidth_size(points)
    table = Table(["bytes", *columns],
                  title="Transfer-size ramp [GB/s]; half-bandwidth at "
                        + ", ".join(f"{system}: {size / 1e6:.1f} MB"
                                    for system, size in halves.items()))
    for row, size in enumerate(sizes):
        table.add_row(f"{size:>11,}",
                      *(f"{series[col][row]:.2f}"
                        for col in range(len(series))))
    return table
