"""Figures 2-4: CPU-GPU data transfer throughput on the three systems.

Each scenario copies 4 GB pinned buffers from NUMA node 0, serially or
in parallel, uni- or bidirectionally (Section 4.2).  The PAPER_* tables
hold the published measurements the model is compared against.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.report import Table, comparison_table
from repro.bench.transfers import bidir, dtoh, htod, measure_throughput
from repro.hw import delta_d22x, dgx_a100, ibm_ac922

# (label, gpu_ids, mode) -> paper GB/s.  Modes: "htod", "dtoh", "bidir".
PAPER_FIG2: Dict[Tuple[str, str], float] = {
    # Figure 2a: serial copies.
    ("serial {0}", "htod"): 72.0, ("serial {0}", "dtoh"): 72.0,
    ("serial {0}", "bidir"): 127.0,
    ("serial {2}", "htod"): 41.0, ("serial {2}", "dtoh"): 35.0,
    ("serial {2}", "bidir"): 65.0,
    # Figure 2b: parallel copies.
    ("parallel (0,1)", "htod"): 141.0, ("parallel (0,1)", "dtoh"): 109.0,
    ("parallel (0,1)", "bidir"): 136.0,
    ("parallel (2,3)", "htod"): 39.0, ("parallel (2,3)", "dtoh"): 30.0,
    ("parallel (2,3)", "bidir"): 54.0,
    ("parallel (0,1,2,3)", "htod"): 74.0, ("parallel (0,1,2,3)", "dtoh"): 54.0,
    ("parallel (0,1,2,3)", "bidir"): 98.0,
}

PAPER_FIG3: Dict[Tuple[str, str], float] = {
    ("serial {0}", "htod"): 12.0, ("serial {0}", "dtoh"): 13.0,
    ("serial {0}", "bidir"): 20.0,
    ("serial {2}", "htod"): 12.0, ("serial {2}", "dtoh"): 13.0,
    ("serial {2}", "bidir"): 20.0,
    ("parallel (0,1)", "htod"): 24.0, ("parallel (0,1)", "dtoh"): 26.0,
    ("parallel (0,1)", "bidir"): 40.0,
    ("parallel (2,3)", "htod"): 24.0, ("parallel (2,3)", "dtoh"): 25.0,
    ("parallel (2,3)", "bidir"): 40.0,
    ("parallel (0,1,2,3)", "htod"): 49.0, ("parallel (0,1,2,3)", "dtoh"): 51.0,
    ("parallel (0,1,2,3)", "bidir"): 79.0,
}

PAPER_FIG4: Dict[Tuple[str, str], float] = {
    ("serial {0-3}", "htod"): 24.0, ("serial {0-3}", "dtoh"): 24.0,
    ("serial {0-3}", "bidir"): 39.0,
    ("serial {4-7}", "htod"): 24.0, ("serial {4-7}", "dtoh"): 25.0,
    ("serial {4-7}", "bidir"): 32.0,
    ("parallel (0,1)", "htod"): 25.0, ("parallel (0,1)", "dtoh"): 26.0,
    ("parallel (0,1)", "bidir"): 29.0,
    ("parallel (0,2)", "htod"): 49.0, ("parallel (0,2)", "dtoh"): 47.0,
    ("parallel (0,2)", "bidir"): 82.0,
    ("parallel (4,6)", "htod"): 46.0, ("parallel (4,6)", "dtoh"): 47.0,
    ("parallel (4,6)", "bidir"): 61.0,
    ("parallel (0,2,4,6)", "htod"): 87.0, ("parallel (0,2,4,6)", "dtoh"): 92.0,
    ("parallel (0,2,4,6)", "bidir"): 113.0,
    ("parallel (0-7)", "htod"): 89.0, ("parallel (0-7)", "dtoh"): 104.0,
    ("parallel (0-7)", "bidir"): 111.0,
}

_SCENARIOS = {
    "ibm-ac922": [("serial {0}", (0,)), ("serial {2}", (2,)),
                  ("parallel (0,1)", (0, 1)), ("parallel (2,3)", (2, 3)),
                  ("parallel (0,1,2,3)", (0, 1, 2, 3))],
    "delta-d22x": [("serial {0}", (0,)), ("serial {2}", (2,)),
                   ("parallel (0,1)", (0, 1)), ("parallel (2,3)", (2, 3)),
                   ("parallel (0,1,2,3)", (0, 1, 2, 3))],
    "dgx-a100": [("serial {0-3}", (0,)), ("serial {4-7}", (4,)),
                 ("parallel (0,1)", (0, 1)), ("parallel (0,2)", (0, 2)),
                 ("parallel (4,6)", (4, 6)),
                 ("parallel (0,2,4,6)", (0, 2, 4, 6)),
                 ("parallel (0-7)", tuple(range(8)))],
}

_BUILDERS = {"ibm-ac922": ibm_ac922, "delta-d22x": delta_d22x,
             "dgx-a100": dgx_a100}
_PAPER = {"ibm-ac922": PAPER_FIG2, "delta-d22x": PAPER_FIG3,
          "dgx-a100": PAPER_FIG4}


def measure_cpu_gpu(system: str) -> List[Tuple[str, float, float]]:
    """All (label, measured, paper) rows for one system's figure."""
    builder = _BUILDERS[system]
    paper = _PAPER[system]
    rows: List[Tuple[str, float, float]] = []
    for label, gpus in _SCENARIOS[system]:
        transfers = {
            "htod": [htod(i) for i in gpus],
            "dtoh": [dtoh(i) for i in gpus],
            "bidir": [t for i in gpus for t in bidir(i)],
        }
        for mode, spec in transfers.items():
            measured = measure_throughput(builder, spec)
            rows.append((f"{label} {mode}", measured,
                         paper.get((label, mode))))
    return rows


def run(system: str) -> Table:
    """Regenerate the CPU-GPU transfer figure of one system."""
    figure = {"ibm-ac922": "Figure 2", "delta-d22x": "Figure 3",
              "dgx-a100": "Figure 4"}[system]
    return comparison_table(
        f"{figure}: CPU-GPU data transfers on {system}",
        "scenario", measure_cpu_gpu(system))


def run_fig2() -> Table:
    """Figure 2: CPU-GPU transfers on the IBM AC922."""
    return run("ibm-ac922")


def run_fig3() -> Table:
    """Figure 3: CPU-GPU transfers on the DELTA D22x."""
    return run("delta-d22x")


def run_fig4() -> Table:
    """Figure 4: CPU-GPU transfers on the DGX A100."""
    return run("dgx-a100")
