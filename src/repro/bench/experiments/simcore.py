"""Throughput benchmark of the simulator core itself.

Unlike every other experiment in this package, ``simcore`` does not
reproduce a paper figure — it measures how fast the discrete-event
engine and the incremental flow allocator execute, in *wall-clock*
terms.  Two scenario families stress the two regimes that dominate
simulation cost:

* **churn** — a flow-arrival storm on a topology where every flow
  crosses one shared bottleneck, so *every* arrival and completion
  forces a full water-filling pass over all active flows.  This is the
  worst case for the allocator: O(F) reallocations of O(F) flows each.
* **het** — a complete 8-GPU HET sort on the DGX A100 at a large scale
  factor (many chunk groups), i.e. the real workload mix of flow
  starts, disjoint fast paths, engine events and process scheduling.

Results are printed as a table and, for the full suite, written to
``BENCH_simcore.json`` together with the seed-tree baselines (the
pre-optimization allocator, measured on the same host) and the
resulting speedups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.bench.report import Table, write_bench_record
from repro.data import generate
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.sim.engine import Environment, SimProfile
from repro.sim.flows import FlowNetwork
from repro.sim.resources import Direction, Resource

#: Wall-clock seconds of the same scenarios on the pre-optimization
#: simulator core (the seed tree: full-rescan allocator, per-flow
#: watcher processes), measured best-of-3 on the reference host.  They
#: anchor the speedup column; re-measure when porting to other hardware.
SEED_BASELINE_WALL_S: Dict[str, float] = {
    "churn-400": 4.178,
    "churn-800": 27.089,
    "het-8gpu-256b": 0.0655,
    "het-8gpu-2048b": 0.4067,
    # churn-1600 has no seed baseline: the scenario was added with the
    # vectorized core (the seed tree would take minutes on it).
}

#: Physical keys per simulated HET run (the scale factor supplies the
#: billions; small enough that NumPy work does not mask engine cost).
HET_PHYSICAL_KEYS = 100_000


@dataclass
class ScenarioResult:
    """Wall-clock and engine counters of one benchmark scenario."""

    name: str
    wall_s: float
    runs: List[float]
    sim_s: float
    events: int
    full_reallocations: int
    fast_starts: int
    fast_finishes: int
    completion_events: int
    profile: Optional[Dict[str, object]] = None

    @property
    def events_per_sec(self) -> float:
        """Engine events retired per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def reallocations_per_sec(self) -> float:
        """Full water-filling passes per wall-clock second."""
        return (self.full_reallocations / self.wall_s
                if self.wall_s > 0 else 0.0)

    @property
    def run_spread_s(self) -> float:
        """Wall-clock spread (max - min) across the repeats."""
        return max(self.runs) - min(self.runs) if self.runs else 0.0

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable record, including derived rates."""
        record: Dict[str, object] = {
            "wall_s": self.wall_s,
            "runs": self.runs,
            "run_spread_s": self.run_spread_s,
            "sim_s": self.sim_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "full_reallocations": self.full_reallocations,
            "reallocations_per_sec": self.reallocations_per_sec,
            "fast_starts": self.fast_starts,
            "fast_finishes": self.fast_finishes,
            "completion_events": self.completion_events,
        }
        baseline = SEED_BASELINE_WALL_S.get(self.name)
        if baseline is not None:
            record["seed_baseline_wall_s"] = baseline
            record["speedup_vs_seed"] = baseline / self.wall_s
        if self.profile is not None:
            record["profile"] = self.profile
        return record


def run_churn(n_flows: int) -> ScenarioResult:
    """Flow-churn storm: ``n_flows`` arrivals sharing one bottleneck.

    Each flow crosses the shared resource plus a private link, so routes
    overlap pairwise (no disjoint fast path applies) and every arrival
    and completion triggers a full reallocation of all active flows.
    """
    env = Environment()
    net = FlowNetwork(env)
    shared = Resource("shared", 100.0)
    private = [Resource(f"private{i}", 1.0 + i % 7) for i in range(n_flows)]

    def arrivals():
        for i in range(n_flows):
            net.start_flow(
                [(shared, Direction.FWD), (private[i], Direction.FWD)],
                50.0 + i % 13, label=f"churn{i}")
            yield env.timeout(0.01)

    env.process(arrivals())
    if PROFILE:
        env.profile = SimProfile()
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    return ScenarioResult(
        name=f"churn-{n_flows}", wall_s=wall, runs=[wall], sim_s=env.now,
        events=env.events_retired,
        full_reallocations=net.full_reallocations,
        fast_starts=net.fast_starts, fast_finishes=net.fast_finishes,
        completion_events=net.completion_events,
        profile=env.profile.to_json() if env.profile else None)


def run_het(billions: float) -> ScenarioResult:
    """Full 8-GPU HET sort on the DGX A100 at ``billions`` billion keys."""
    from repro.sort import het_sort  # deferred: pulls in the sort stack

    scale = billions * 1e9 / HET_PHYSICAL_KEYS
    machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    data = generate(HET_PHYSICAL_KEYS, "uniform", np.int32, seed=42)
    if PROFILE:
        machine.env.profile = SimProfile()
    t0 = time.perf_counter()
    het_sort(machine, data)
    wall = time.perf_counter() - t0
    env, net = machine.env, machine.net
    return ScenarioResult(
        name=f"het-8gpu-{billions:g}b", wall_s=wall, runs=[wall],
        sim_s=env.now, events=env.events_retired,
        full_reallocations=net.full_reallocations,
        fast_starts=net.fast_starts, fast_finishes=net.fast_finishes,
        completion_events=net.completion_events,
        profile=env.profile.to_json() if env.profile else None)


def _best_of(repeats: int, runner, *args) -> ScenarioResult:
    """Run a scenario ``repeats`` times, keep the fastest wall-clock."""
    results = [runner(*args) for _ in range(max(1, repeats))]
    best = min(results, key=lambda r: r.wall_s)
    best.runs = sorted(r.wall_s for r in results)
    return best


def run_simcore(quick: bool = False, repeats: Optional[int] = None,
                json_path: Optional[str] = "BENCH_simcore.json") -> Table:
    """Run the simulator-core benchmark suite and build its table.

    ``quick`` runs the small scenarios once each (the perf smoke used by
    the test suite) and skips the JSON record; the full suite runs every
    scenario best-of-``repeats`` and writes ``json_path``.
    """
    if repeats is None:
        repeats = 1 if quick else 3
    if quick:
        plan = [(run_churn, 400), (run_het, 256.0)]
        if json_path == "BENCH_simcore.json":
            # Don't clobber the committed full-suite record from a smoke.
            json_path = None
    else:
        plan = [(run_churn, 400), (run_churn, 800), (run_churn, 1600),
                (run_het, 256.0), (run_het, 2048.0)]

    results = [_best_of(repeats, runner, arg) for runner, arg in plan]
    churn_scaling = _churn_scaling(results)

    table = Table(
        ["scenario", "wall [s]", "sim [s]", "events", "events/s",
         "reallocs", "reallocs/s", "fast start/finish", "speedup"],
        title="Simulator-core throughput"
              + (" (quick)" if quick else ""))
    for result in results:
        baseline = SEED_BASELINE_WALL_S.get(result.name)
        speedup = (f"{baseline / result.wall_s:.2f}x"
                   if baseline else "-")
        table.add_row(
            result.name, f"{result.wall_s:.3f}", f"{result.sim_s:.3f}",
            result.events, f"{result.events_per_sec:,.0f}",
            result.full_reallocations,
            f"{result.reallocations_per_sec:,.0f}",
            f"{result.fast_starts}/{result.fast_finishes}",
            speedup)

    if json_path:
        record = {
            "benchmark": "simcore",
            "seed_note": (
                "seed_baseline_wall_s measured on the same host from the "
                "pre-optimization tree (full-rescan allocator, watcher "
                "processes), best of 3"),
            "repeats": repeats,
            "profile": PROFILE,
            "scenarios": {r.name: r.to_json() for r in results},
        }
        if churn_scaling is not None:
            record["churn_scaling"] = churn_scaling
        write_bench_record(json_path, record)
    return table


def _churn_scaling(results: List[ScenarioResult]) -> Optional[Dict[str, object]]:
    """Events/sec scaling slope across the churn sizes.

    Fits ``log(events/sec) ~ slope * log(n_flows)`` over every churn
    scenario present.  Slope 0 is perfect scaling (throughput flat as
    flow count doubles); negative slopes quantify the superlinear
    slowdown the churn family exists to track.
    """
    churn = [(int(r.name.split("-")[1]), r.events_per_sec)
             for r in results if r.name.startswith("churn-")]
    if len(churn) < 2:
        return None
    churn.sort()
    sizes = np.array([n for n, _ in churn], dtype=float)
    rates = np.array([eps for _, eps in churn], dtype=float)
    slope = float(np.polyfit(np.log(sizes), np.log(rates), 1)[0])
    return {
        "sizes": [int(n) for n in sizes],
        "events_per_sec": [float(r) for r in rates],
        "slope": slope,
    }


#: Set by the command line's ``--quick`` flag before the registry runs.
QUICK = False

#: Set by the command line's ``--record`` flag: write the benchmark
#: record to this path even under ``--quick``.  The CI perf smoke uses
#: it to produce a record it can ``repro.obs diff`` against the
#: committed ``BENCH_simcore.json`` without clobbering it.
RECORD_PATH: Optional[str] = None

#: Set by the command line's ``--profile`` flag: attach a
#: :class:`~repro.sim.engine.SimProfile` to every scenario environment
#: and emit the per-phase cost breakdown into the BENCH record.  The
#: instrumentation adds wall-clock overhead, so profiled records carry
#: ``"profile": true`` (a different config hash) and are not
#: regression-compared against unprofiled ones.
PROFILE = False


def run_simcore_entry() -> Table:
    """Registry entry point; honours ``--quick`` and ``--record``."""
    return run_simcore(quick=QUICK,
                       json_path=RECORD_PATH or "BENCH_simcore.json")
