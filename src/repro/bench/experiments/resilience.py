"""Resilience benchmark: sorting under injected faults.

This experiment does not reproduce a paper figure — it measures what the
fault-injection subsystem (:mod:`repro.faults`) costs.  Every scenario
sorts the same data twice on the DGX A100: once on a clean machine and
once with a seeded :class:`~repro.faults.plan.FaultPlan` generated at a
given intensity over the clean run's duration (so the fault windows
actually overlap the sort).  The table reports the clean-vs-faulted
overhead together with the recovery work performed — retried copies,
re-routed transfers, time parked on down links, and fault downtime.

Results are written to ``BENCH_resilience.json`` (in quick mode too:
the record is this experiment's primary artifact; quick just sweeps a
single intensity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.report import Table, write_bench_record
from repro.data import generate
from repro.faults import FaultPlan
from repro.hw import dgx_a100
from repro.runtime import Machine

#: Seed of every generated fault plan (one plan per scenario, offset by
#: the scenario index so the scenarios see distinct fault timelines).
SEED = 20220610

#: Physical keys per run; the scale factor supplies the billions.
PHYSICAL_KEYS = 100_000

#: Logical billions of keys per run.
BILLIONS = 2.0


@dataclass
class ScenarioResult:
    """Clean-vs-faulted outcome of one resilience scenario."""

    name: str
    algorithm: str
    intensity: float
    planned_faults: int
    clean_s: float
    faulted_s: float
    degraded: bool
    retries: int
    reroutes: int
    timeouts: int
    fault_downtime_s: float
    link_wait_s: float
    excluded_gpus: Tuple[int, ...]
    sorted_ok: bool

    @property
    def overhead_pct(self) -> float:
        """Faulted slowdown over the clean run, in percent."""
        if self.clean_s <= 0:
            return 0.0
        return 100.0 * (self.faulted_s - self.clean_s) / self.clean_s

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable record."""
        return {
            "algorithm": self.algorithm,
            "intensity": self.intensity,
            "planned_faults": self.planned_faults,
            "clean_s": self.clean_s,
            "faulted_s": self.faulted_s,
            "overhead_pct": self.overhead_pct,
            "degraded": self.degraded,
            "retries": self.retries,
            "reroutes": self.reroutes,
            "timeouts": self.timeouts,
            "fault_downtime_s": self.fault_downtime_s,
            "link_wait_s": self.link_wait_s,
            "excluded_gpus": list(self.excluded_gpus),
            "sorted_ok": self.sorted_ok,
        }


@dataclass
class RecoveryScenarioResult:
    """Outcome of one supervised-recovery scenario.

    Baseline is a *supervised* clean run, so the overhead column shows
    the combined cost of checkpointing plus the actual recovery, not
    checkpointing alone.
    """

    name: str
    algorithm: str
    kind: str              # "replan" | "speculate" | "deadline"
    clean_s: float
    faulted_s: float
    degraded: bool
    replans: int
    checkpoints: int
    checkpoints_restored: int
    speculations: int
    speculative_wins: int
    deadline_exceeded: bool
    completed_phases: int
    excluded_gpus: Tuple[int, ...]
    sorted_ok: bool

    @property
    def overhead_pct(self) -> float:
        if self.clean_s <= 0:
            return 0.0
        return 100.0 * (self.faulted_s - self.clean_s) / self.clean_s

    def to_json(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "supervised": True,
            "clean_s": self.clean_s,
            "faulted_s": self.faulted_s,
            "overhead_pct": self.overhead_pct,
            "degraded": self.degraded,
            "replans": self.replans,
            "checkpoints": self.checkpoints,
            "checkpoints_restored": self.checkpoints_restored,
            "speculations": self.speculations,
            "speculative_wins": self.speculative_wins,
            "deadline_exceeded": self.deadline_exceeded,
            "completed_phases": self.completed_phases,
            "excluded_gpus": list(self.excluded_gpus),
            "sorted_ok": self.sorted_ok,
        }


def _sort(algorithm: str, machine: Machine, data: np.ndarray):
    from repro.sort import het_sort, p2p_sort  # deferred: the sort stack

    if algorithm == "p2p":
        return p2p_sort(machine, data)
    return het_sort(machine, data)


def run_scenario(algorithm: str, intensity: float,
                 seed: int = SEED) -> ScenarioResult:
    """One clean + one faulted run of ``algorithm`` at ``intensity``."""
    scale = BILLIONS * 1e9 / PHYSICAL_KEYS
    data = generate(PHYSICAL_KEYS, "uniform", np.int32, seed=42)

    clean_machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    clean = _sort(algorithm, clean_machine, data)

    faulted_machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    plan = FaultPlan.generate(faulted_machine.spec, seed=seed,
                              intensity=intensity, horizon=clean.duration)
    faulted_machine.install_faults(plan)
    faulted = _sort(algorithm, faulted_machine, data)

    stats = faulted_machine.resilience_stats
    return ScenarioResult(
        name=f"{algorithm}-x{intensity:g}",
        algorithm=algorithm,
        intensity=intensity,
        planned_faults=len(plan),
        clean_s=clean.duration,
        faulted_s=faulted.duration,
        degraded=faulted.degraded,
        retries=faulted.retries,
        reroutes=faulted.reroutes,
        timeouts=faulted.timeouts,
        fault_downtime_s=faulted.fault_downtime,
        link_wait_s=stats.link_wait_s,
        excluded_gpus=faulted.excluded_gpus,
        sorted_ok=bool(np.all(np.diff(faulted.output) >= 0)),
    )


def run_recovery_scenario(algorithm: str, kind: str,
                          seed: int = SEED) -> RecoveryScenarioResult:
    """One supervised-clean + one supervised-faulted run.

    ``kind`` picks the recovery path exercised: ``replan`` hard-fails a
    GPU mid-run, ``speculate`` makes one GPU a 30x straggler shortly
    after the sort starts — late enough that the start-of-sort
    exclusion check cannot pre-empt it, early enough that the window
    still covers the local-sort kernel launches, so the supervisor has
    to race a backup — and ``deadline`` gives the sort half its clean
    duration and expects a typed partial result.
    """
    from repro.faults.events import GpuFail, StragglerGpu
    from repro.recovery import SortSupervisor, SupervisorConfig

    scale = BILLIONS * 1e9 / PHYSICAL_KEYS
    data = generate(PHYSICAL_KEYS, "uniform", np.int32, seed=42)

    clean_machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    clean = SortSupervisor(clean_machine).sort(data, algorithm=algorithm)

    config = SupervisorConfig()
    events = ()
    if kind == "replan":
        events = (GpuFail(at=0.4 * clean.duration, gpu=3),)
    elif kind == "speculate":
        events = (StragglerGpu(at=0.15 * clean.duration, gpu=3,
                               duration=100.0, slowdown=30.0),)
    elif kind == "deadline":
        config = SupervisorConfig(deadline_s=0.5 * clean.duration)
    else:
        raise ValueError(f"unknown recovery scenario kind {kind!r}")

    machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    if events:
        machine.install_faults(FaultPlan(events=events, seed=seed))
    result = SortSupervisor(machine, config).sort(data,
                                                  algorithm=algorithm)

    sorted_ok = (result.output is not None
                 and bool(np.all(np.diff(result.output) >= 0)))
    return RecoveryScenarioResult(
        name=f"sup-{algorithm}-{kind}",
        algorithm=algorithm,
        kind=kind,
        clean_s=clean.duration,
        faulted_s=result.duration,
        degraded=result.degraded,
        replans=result.replans,
        checkpoints=result.checkpoints,
        checkpoints_restored=result.checkpoints_restored,
        speculations=result.speculations,
        speculative_wins=result.speculative_wins,
        deadline_exceeded=result.deadline_exceeded,
        completed_phases=len(result.completed_phases),
        excluded_gpus=result.excluded_gpus,
        sorted_ok=sorted_ok,
    )


def run_resilience(quick: bool = False,
                   json_path: Optional[str] = "BENCH_resilience.json"
                   ) -> List[Table]:
    """Run the resilience suite and build its tables.

    Two parts: plain sorts surviving fault plans of increasing
    intensity, and supervised sorts recovering from targeted failures
    (replan, speculation, deadline).  ``quick`` sweeps one intensity
    per algorithm and runs only the replan recovery scenarios.  Both
    modes write ``json_path`` — the JSON record is the experiment's
    artifact, not a by-product; the recovery scenarios add new
    ``sup-*`` keys to its ``scenarios`` mapping.
    """
    intensities = [1.0] if quick else [0.5, 1.0, 2.0]
    results: List[ScenarioResult] = []
    for algorithm in ("p2p", "het"):
        for index, intensity in enumerate(intensities):
            results.append(run_scenario(algorithm, intensity,
                                        seed=SEED + index))

    if quick:
        recovery_specs = [("p2p", "replan"), ("het", "replan")]
    else:
        recovery_specs = [("p2p", "replan"), ("het", "replan"),
                          ("p2p", "speculate"), ("p2p", "deadline")]
    recovery: List[RecoveryScenarioResult] = []
    for algorithm, kind in recovery_specs:
        recovery.append(run_recovery_scenario(algorithm, kind, seed=SEED))

    table = Table(
        ["scenario", "faults", "clean [s]", "faulted [s]", "overhead",
         "retries", "reroutes", "downtime [s]", "degraded", "sorted"],
        title="Sorting under injected faults (DGX A100, "
              f"{BILLIONS:g}B keys)" + (" (quick)" if quick else ""))
    for result in results:
        table.add_row(
            result.name, result.planned_faults,
            f"{result.clean_s:.3f}", f"{result.faulted_s:.3f}",
            f"{result.overhead_pct:+.1f}%",
            result.retries, result.reroutes,
            f"{result.fault_downtime_s:.3f}",
            "yes" if result.degraded else "no",
            "yes" if result.sorted_ok else "NO")

    recovery_table = Table(
        ["scenario", "clean [s]", "faulted [s]", "overhead", "replans",
         "ckpts", "restored", "spec", "spec wins", "phases", "outcome"],
        title="Supervised recovery (clean baseline is a supervised run)")
    for rec in recovery:
        if rec.deadline_exceeded:
            outcome = "deadline (typed partial)"
        elif rec.sorted_ok:
            outcome = "sorted"
        else:
            outcome = "NOT SORTED"
        recovery_table.add_row(
            rec.name, f"{rec.clean_s:.3f}", f"{rec.faulted_s:.3f}",
            f"{rec.overhead_pct:+.1f}%", rec.replans,
            rec.checkpoints, rec.checkpoints_restored,
            rec.speculations, rec.speculative_wins,
            rec.completed_phases, outcome)

    if json_path:
        scenarios: Dict[str, object] = {r.name: r.to_json()
                                        for r in results}
        scenarios.update({r.name: r.to_json() for r in recovery})
        record = {
            "benchmark": "resilience",
            "seed": SEED,
            "quick": quick,
            "physical_keys": PHYSICAL_KEYS,
            "billions": BILLIONS,
            "scenarios": scenarios,
        }
        write_bench_record(json_path, record, seed=SEED)
    return [table, recovery_table]


#: Set by the command line's ``--quick`` flag before the registry runs.
QUICK = False


def run_resilience_entry() -> List[Table]:
    """Registry entry point; honours the command line's ``--quick``."""
    return run_resilience(quick=QUICK)
