"""Resilience benchmark: sorting under injected faults.

This experiment does not reproduce a paper figure — it measures what the
fault-injection subsystem (:mod:`repro.faults`) costs.  Every scenario
sorts the same data twice on the DGX A100: once on a clean machine and
once with a seeded :class:`~repro.faults.plan.FaultPlan` generated at a
given intensity over the clean run's duration (so the fault windows
actually overlap the sort).  The table reports the clean-vs-faulted
overhead together with the recovery work performed — retried copies,
re-routed transfers, time parked on down links, and fault downtime.

Results are written to ``BENCH_resilience.json`` (in quick mode too:
the record is this experiment's primary artifact; quick just sweeps a
single intensity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.report import Table, write_bench_record
from repro.data import generate
from repro.faults import FaultPlan
from repro.hw import dgx_a100
from repro.runtime import Machine

#: Seed of every generated fault plan (one plan per scenario, offset by
#: the scenario index so the scenarios see distinct fault timelines).
SEED = 20220610

#: Physical keys per run; the scale factor supplies the billions.
PHYSICAL_KEYS = 100_000

#: Logical billions of keys per run.
BILLIONS = 2.0


@dataclass
class ScenarioResult:
    """Clean-vs-faulted outcome of one resilience scenario."""

    name: str
    algorithm: str
    intensity: float
    planned_faults: int
    clean_s: float
    faulted_s: float
    degraded: bool
    retries: int
    reroutes: int
    timeouts: int
    fault_downtime_s: float
    link_wait_s: float
    excluded_gpus: Tuple[int, ...]
    sorted_ok: bool

    @property
    def overhead_pct(self) -> float:
        """Faulted slowdown over the clean run, in percent."""
        if self.clean_s <= 0:
            return 0.0
        return 100.0 * (self.faulted_s - self.clean_s) / self.clean_s

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable record."""
        return {
            "algorithm": self.algorithm,
            "intensity": self.intensity,
            "planned_faults": self.planned_faults,
            "clean_s": self.clean_s,
            "faulted_s": self.faulted_s,
            "overhead_pct": self.overhead_pct,
            "degraded": self.degraded,
            "retries": self.retries,
            "reroutes": self.reroutes,
            "timeouts": self.timeouts,
            "fault_downtime_s": self.fault_downtime_s,
            "link_wait_s": self.link_wait_s,
            "excluded_gpus": list(self.excluded_gpus),
            "sorted_ok": self.sorted_ok,
        }


@dataclass
class RecoveryScenarioResult:
    """Outcome of one supervised-recovery scenario.

    Baseline is a *supervised* clean run, so the overhead column shows
    the combined cost of checkpointing plus the actual recovery, not
    checkpointing alone.
    """

    name: str
    algorithm: str
    kind: str              # "replan" | "speculate" | "deadline"
    clean_s: float
    faulted_s: float
    degraded: bool
    replans: int
    checkpoints: int
    checkpoints_restored: int
    speculations: int
    speculative_wins: int
    deadline_exceeded: bool
    completed_phases: int
    excluded_gpus: Tuple[int, ...]
    sorted_ok: bool

    @property
    def overhead_pct(self) -> float:
        if self.clean_s <= 0:
            return 0.0
        return 100.0 * (self.faulted_s - self.clean_s) / self.clean_s

    def to_json(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "supervised": True,
            "clean_s": self.clean_s,
            "faulted_s": self.faulted_s,
            "overhead_pct": self.overhead_pct,
            "degraded": self.degraded,
            "replans": self.replans,
            "checkpoints": self.checkpoints,
            "checkpoints_restored": self.checkpoints_restored,
            "speculations": self.speculations,
            "speculative_wins": self.speculative_wins,
            "deadline_exceeded": self.deadline_exceeded,
            "completed_phases": self.completed_phases,
            "excluded_gpus": list(self.excluded_gpus),
            "sorted_ok": self.sorted_ok,
        }


@dataclass
class ClusterScenarioResult:
    """Outcome of one cluster-tier fault scenario.

    Baseline is a clean hierarchical sort on the same cluster; the
    faulted run loses nodes, a fabric switch, or a flapping NIC link
    mid-run and recovers elastically.  ``recovery_cost_s`` is the
    absolute slowdown (the price of the replanned epochs), and the
    degraded throughput is ``clean_s / faulted_s`` of the clean one.
    """

    name: str
    nodes: int
    fabric: str
    kind: str              # "node-down" | "switch-down" | "link-flap"
    failed_nodes: int
    failed_switches: int
    clean_s: float
    faulted_s: float
    degraded: bool
    replans: int
    waves_replayed: int
    checkpoints: int
    checkpoints_restored: int
    retries: int
    reroutes: int
    fault_downtime_s: float
    excluded_nodes: Tuple[int, ...]
    sorted_ok: bool

    @property
    def overhead_pct(self) -> float:
        if self.clean_s <= 0:
            return 0.0
        return 100.0 * (self.faulted_s - self.clean_s) / self.clean_s

    @property
    def recovery_cost_s(self) -> float:
        return self.faulted_s - self.clean_s

    def to_json(self) -> Dict[str, object]:
        return {
            "algorithm": "hier",
            "nodes": self.nodes,
            "fabric": self.fabric,
            "kind": self.kind,
            "failed_nodes": self.failed_nodes,
            "failed_switches": self.failed_switches,
            "clean_s": self.clean_s,
            "faulted_s": self.faulted_s,
            "overhead_pct": self.overhead_pct,
            "recovery_cost_s": self.recovery_cost_s,
            "degraded": self.degraded,
            "replans": self.replans,
            "waves_replayed": self.waves_replayed,
            "checkpoints": self.checkpoints,
            "checkpoints_restored": self.checkpoints_restored,
            "retries": self.retries,
            "reroutes": self.reroutes,
            "fault_downtime_s": self.fault_downtime_s,
            "excluded_nodes": list(self.excluded_nodes),
            "sorted_ok": self.sorted_ok,
        }


def _sort(algorithm: str, machine: Machine, data: np.ndarray):
    from repro.sort import het_sort, p2p_sort  # deferred: the sort stack

    if algorithm == "p2p":
        return p2p_sort(machine, data)
    return het_sort(machine, data)


def run_scenario(algorithm: str, intensity: float,
                 seed: int = SEED) -> ScenarioResult:
    """One clean + one faulted run of ``algorithm`` at ``intensity``."""
    scale = BILLIONS * 1e9 / PHYSICAL_KEYS
    data = generate(PHYSICAL_KEYS, "uniform", np.int32, seed=42)

    clean_machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    clean = _sort(algorithm, clean_machine, data)

    faulted_machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    plan = FaultPlan.generate(faulted_machine.spec, seed=seed,
                              intensity=intensity, horizon=clean.duration)
    faulted_machine.install_faults(plan)
    faulted = _sort(algorithm, faulted_machine, data)

    stats = faulted_machine.resilience_stats
    return ScenarioResult(
        name=f"{algorithm}-x{intensity:g}",
        algorithm=algorithm,
        intensity=intensity,
        planned_faults=len(plan),
        clean_s=clean.duration,
        faulted_s=faulted.duration,
        degraded=faulted.degraded,
        retries=faulted.retries,
        reroutes=faulted.reroutes,
        timeouts=faulted.timeouts,
        fault_downtime_s=faulted.fault_downtime,
        link_wait_s=stats.link_wait_s,
        excluded_gpus=faulted.excluded_gpus,
        sorted_ok=bool(np.all(np.diff(faulted.output) >= 0)),
    )


def run_recovery_scenario(algorithm: str, kind: str,
                          seed: int = SEED) -> RecoveryScenarioResult:
    """One supervised-clean + one supervised-faulted run.

    ``kind`` picks the recovery path exercised: ``replan`` hard-fails a
    GPU mid-run, ``speculate`` makes one GPU a 30x straggler shortly
    after the sort starts — late enough that the start-of-sort
    exclusion check cannot pre-empt it, early enough that the window
    still covers the local-sort kernel launches, so the supervisor has
    to race a backup — and ``deadline`` gives the sort half its clean
    duration and expects a typed partial result.
    """
    from repro.faults.events import GpuFail, StragglerGpu
    from repro.recovery import SortSupervisor, SupervisorConfig

    scale = BILLIONS * 1e9 / PHYSICAL_KEYS
    data = generate(PHYSICAL_KEYS, "uniform", np.int32, seed=42)

    clean_machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    clean = SortSupervisor(clean_machine).sort(data, algorithm=algorithm)

    config = SupervisorConfig()
    events = ()
    if kind == "replan":
        events = (GpuFail(at=0.4 * clean.duration, gpu=3),)
    elif kind == "speculate":
        events = (StragglerGpu(at=0.15 * clean.duration, gpu=3,
                               duration=100.0, slowdown=30.0),)
    elif kind == "deadline":
        config = SupervisorConfig(deadline_s=0.5 * clean.duration)
    else:
        raise ValueError(f"unknown recovery scenario kind {kind!r}")

    machine = Machine(dgx_a100(), scale=scale, fast_functional=True)
    if events:
        machine.install_faults(FaultPlan(events=events, seed=seed))
    result = SortSupervisor(machine, config).sort(data,
                                                  algorithm=algorithm)

    sorted_ok = (result.output is not None
                 and bool(np.all(np.diff(result.output) >= 0)))
    return RecoveryScenarioResult(
        name=f"sup-{algorithm}-{kind}",
        algorithm=algorithm,
        kind=kind,
        clean_s=clean.duration,
        faulted_s=result.duration,
        degraded=result.degraded,
        replans=result.replans,
        checkpoints=result.checkpoints,
        checkpoints_restored=result.checkpoints_restored,
        speculations=result.speculations,
        speculative_wins=result.speculative_wins,
        deadline_exceeded=result.deadline_exceeded,
        completed_phases=len(result.completed_phases),
        excluded_gpus=result.excluded_gpus,
        sorted_ok=sorted_ok,
    )


def run_cluster_scenario(nodes: int, kind: str, failed_nodes: int = 1,
                         fabric: str = "fat-tree",
                         seed: int = SEED) -> ClusterScenarioResult:
    """One clean + one faulted hierarchical sort on a cluster.

    ``kind`` picks the cluster-tier fault: ``node-down`` kills
    ``failed_nodes`` nodes — the first mid-exchange, so the
    wave-checkpointed ledger has durable deliveries to preserve, any
    further ones earlier in the run; ``switch-down`` takes a fabric
    spine out for a fifth of the clean duration (the redundant-path
    fabrics reroute around it); ``link-flap`` cycles one NIC link
    down/up three times, exercising the health-score hysteresis.
    """
    from repro.faults.events import LinkFlap, NodeDown, SwitchDown
    from repro.hw.cluster import make_cluster
    from repro.sort.hier import hier_sort

    scale = BILLIONS * 1e9 / PHYSICAL_KEYS
    data = generate(PHYSICAL_KEYS, "uniform", np.int32, seed=42)

    clean_machine = Machine(make_cluster("dgx-a100", nodes, fabric=fabric),
                            scale=scale, fast_functional=True)
    clean = hier_sort(clean_machine, data)
    exchange_tail = (clean.phase_durations.get("Exchange", 0.0)
                     + clean.phase_durations.get("NodeMerge", 0.0))
    mid_exchange = clean.duration - 0.5 * exchange_tail

    events = []
    failed_switches = 0
    if kind == "node-down":
        events.append(NodeDown(at=mid_exchange, node=1))
        for extra in range(1, failed_nodes):
            events.append(NodeDown(at=(0.3 + 0.1 * extra) * clean.duration,
                                   node=1 + extra))
    elif kind == "switch-down":
        failed_switches = 1
        switches = clean_machine.spec.topology.fabric_switches
        spines = [s for s in switches if "spine" in s]
        # A spine when the fabric has one (redundant paths: the
        # exchange reroutes); otherwise the only leaf (a hard outage
        # the copies wait out).
        events.append(SwitchDown(at=0.4 * clean.duration,
                                 switch=spines[0] if spines
                                 else switches[0],
                                 duration=0.2 * clean.duration))
    elif kind == "link-flap":
        machine_spec = clean_machine.spec
        resource = machine_spec.node_nic_links(1)[0]
        events.append(LinkFlap(at=0.3 * clean.duration, resource=resource,
                               cycles=3,
                               down_s=0.03 * clean.duration,
                               up_s=0.05 * clean.duration))
    else:
        raise ValueError(f"unknown cluster scenario kind {kind!r}")

    machine = Machine(make_cluster("dgx-a100", nodes, fabric=fabric),
                      scale=scale, fast_functional=True)
    machine.install_faults(FaultPlan(events=tuple(events), seed=seed))
    result = hier_sort(machine, data)

    sorted_ok = (result.output is not None
                 and bool(np.all(np.diff(result.output) >= 0)))
    name = f"cluster{nodes}-{kind}"
    if kind == "node-down" and failed_nodes != 1:
        name += f"-{failed_nodes}"
    return ClusterScenarioResult(
        name=name,
        nodes=nodes,
        fabric=fabric,
        kind=kind,
        failed_nodes=failed_nodes if kind == "node-down" else 0,
        failed_switches=failed_switches,
        clean_s=clean.duration,
        faulted_s=result.duration,
        degraded=result.degraded,
        replans=result.replans,
        waves_replayed=result.waves_replayed,
        checkpoints=result.checkpoints,
        checkpoints_restored=result.checkpoints_restored,
        retries=result.retries,
        reroutes=result.reroutes,
        fault_downtime_s=result.fault_downtime,
        excluded_nodes=result.excluded_nodes,
        sorted_ok=sorted_ok,
    )


def run_resilience(quick: bool = False,
                   json_path: Optional[str] = "BENCH_resilience.json"
                   ) -> List[Table]:
    """Run the resilience suite and build its tables.

    Three parts: plain sorts surviving fault plans of increasing
    intensity, supervised sorts recovering from targeted failures
    (replan, speculation, deadline), and hierarchical sorts on
    clusters losing nodes, fabric switches and NIC links mid-run.
    ``quick`` sweeps one intensity per algorithm, runs only the replan
    recovery scenarios, and only two 4-node cluster scenarios.  Both
    modes write ``json_path`` — the JSON record is the experiment's
    artifact, not a by-product; the recovery and cluster scenarios add
    ``sup-*`` and ``cluster*`` keys to its ``scenarios`` mapping.
    """
    intensities = [1.0] if quick else [0.5, 1.0, 2.0]
    results: List[ScenarioResult] = []
    for algorithm in ("p2p", "het"):
        for index, intensity in enumerate(intensities):
            results.append(run_scenario(algorithm, intensity,
                                        seed=SEED + index))

    if quick:
        recovery_specs = [("p2p", "replan"), ("het", "replan")]
    else:
        recovery_specs = [("p2p", "replan"), ("het", "replan"),
                          ("p2p", "speculate"), ("p2p", "deadline")]
    recovery: List[RecoveryScenarioResult] = []
    for algorithm, kind in recovery_specs:
        recovery.append(run_recovery_scenario(algorithm, kind, seed=SEED))

    if quick:
        cluster_specs = [(4, "node-down", 1), (4, "switch-down", 1)]
    else:
        cluster_specs = [(4, "node-down", 1), (4, "node-down", 2),
                         (4, "switch-down", 1), (4, "link-flap", 1),
                         (16, "node-down", 1), (16, "switch-down", 1)]
    cluster: List[ClusterScenarioResult] = []
    for nodes, kind, failed_nodes in cluster_specs:
        cluster.append(run_cluster_scenario(nodes, kind,
                                            failed_nodes=failed_nodes,
                                            seed=SEED))

    table = Table(
        ["scenario", "faults", "clean [s]", "faulted [s]", "overhead",
         "retries", "reroutes", "downtime [s]", "degraded", "sorted"],
        title="Sorting under injected faults (DGX A100, "
              f"{BILLIONS:g}B keys)" + (" (quick)" if quick else ""))
    for result in results:
        table.add_row(
            result.name, result.planned_faults,
            f"{result.clean_s:.3f}", f"{result.faulted_s:.3f}",
            f"{result.overhead_pct:+.1f}%",
            result.retries, result.reroutes,
            f"{result.fault_downtime_s:.3f}",
            "yes" if result.degraded else "no",
            "yes" if result.sorted_ok else "NO")

    recovery_table = Table(
        ["scenario", "clean [s]", "faulted [s]", "overhead", "replans",
         "ckpts", "restored", "spec", "spec wins", "phases", "outcome"],
        title="Supervised recovery (clean baseline is a supervised run)")
    for rec in recovery:
        if rec.deadline_exceeded:
            outcome = "deadline (typed partial)"
        elif rec.sorted_ok:
            outcome = "sorted"
        else:
            outcome = "NOT SORTED"
        recovery_table.add_row(
            rec.name, f"{rec.clean_s:.3f}", f"{rec.faulted_s:.3f}",
            f"{rec.overhead_pct:+.1f}%", rec.replans,
            rec.checkpoints, rec.checkpoints_restored,
            rec.speculations, rec.speculative_wins,
            rec.completed_phases, outcome)

    cluster_table = Table(
        ["scenario", "clean [s]", "faulted [s]", "overhead", "replans",
         "waves replayed", "restored", "retries", "reroutes",
         "excluded nodes", "sorted"],
        title="Cluster-tier faults (hierarchical sort, clean baseline "
              "on the same cluster)")
    for cl in cluster:
        cluster_table.add_row(
            cl.name, f"{cl.clean_s:.3f}", f"{cl.faulted_s:.3f}",
            f"{cl.overhead_pct:+.1f}%", cl.replans, cl.waves_replayed,
            cl.checkpoints_restored, cl.retries, cl.reroutes,
            ",".join(str(k) for k in cl.excluded_nodes) or "-",
            "yes" if cl.sorted_ok else "NO")

    if json_path:
        scenarios: Dict[str, object] = {r.name: r.to_json()
                                        for r in results}
        scenarios.update({r.name: r.to_json() for r in recovery})
        scenarios.update({r.name: r.to_json() for r in cluster})
        record = {
            "benchmark": "resilience",
            "seed": SEED,
            "quick": quick,
            "physical_keys": PHYSICAL_KEYS,
            "billions": BILLIONS,
            "scenarios": scenarios,
        }
        write_bench_record(json_path, record, seed=SEED)
    return [table, recovery_table, cluster_table]


#: Set by the command line's ``--quick`` flag before the registry runs.
QUICK = False


def run_resilience_entry() -> List[Table]:
    """Registry entry point; honours the command line's ``--quick``."""
    return run_resilience(quick=QUICK)
