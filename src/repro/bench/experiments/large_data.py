"""Figure 15: sorting large (out-of-core) data with HET sort.

* Figure 15a compares the 2n and 3n pipelining approaches, each with
  and without eager merging, on the DGX A100 with eight GPUs for 10-60B
  keys.  Expected shape: 2n and 3n indistinguishable, eager merging
  1.5-1.75x *slower* (Section 6.2).
* Figure 15b compares the best variant (2n, no eager merges) against
  CPU-only PARADIS: HET sort stays ~2.6x faster even at 60B keys.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.experiments.sort_scaling import (
    cpu_sort_duration,
    sort_duration,
)
from repro.bench.report import Table, series_table
from repro.sort import HetConfig

#: Paper reference points read off Figure 15b at 60B keys.
PAPER_60B = {"PARADIS (CPU)": 34.0, "HET sort (8 GPUs)": 13.0}

#: Eager merging slows HET sort by this band (Section 6.2).
PAPER_EAGER_SLOWDOWN = (1.5, 1.75)

VARIANTS: Dict[str, HetConfig] = {
    "3n": HetConfig(approach="3n"),
    "3n + EM": HetConfig(approach="3n", eager_merge=True),
    "2n": HetConfig(approach="2n"),
    "2n + EM": HetConfig(approach="2n", eager_merge=True),
}


def het_variant_series(system: str = "dgx-a100", gpus: int = 8,
                       billions_list: Sequence[float] = (10, 20, 30, 40, 50, 60),
                       ) -> Dict[str, List[float]]:
    """Durations of the four HET variants over increasing sizes."""
    series: Dict[str, List[float]] = {}
    for name, config in VARIANTS.items():
        series[name] = [
            sort_duration(system, "het", gpus, billions,
                          config=HetConfig(approach=config.approach,
                                           eager_merge=config.eager_merge))
            for billions in billions_list
        ]
    return series


def run_fig15a(system: str = "dgx-a100", gpus: int = 8,
               billions_list: Sequence[float] = (10, 20, 30, 40, 50, 60),
               ) -> Table:
    """Figure 15a: HET sort approaches for out-of-core data."""
    series = het_variant_series(system, gpus, billions_list)
    return series_table(
        f"Figure 15a: HET sort approaches on {system}, {gpus} GPUs",
        "keys [1e9]", list(billions_list),
        list(series.keys()), list(series.values()))


def run_fig15b(system: str = "dgx-a100", gpus: int = 8,
               billions_list: Sequence[float] = (10, 20, 30, 40, 50, 60),
               ) -> Table:
    """Figure 15b: HET sort (2n) versus CPU-only PARADIS."""
    paradis = [cpu_sort_duration(system, billions, primitive="paradis")
               for billions in billions_list]
    het = [sort_duration(system, "het", gpus, billions,
                         config=HetConfig(approach="2n"))
           for billions in billions_list]
    return series_table(
        f"Figure 15b: HET sort vs CPU-only sort on {system}",
        "keys [1e9]", list(billions_list),
        ["PARADIS (CPU)", f"HET sort ({gpus} GPUs)"], [paradis, het])
