"""Extensions beyond the paper: Section 7 proposals, implemented.

* multi-hop P2P routing (after Paul et al. [55]),
* the single-exchange radix/range-partitioning sort (RP sort),
* key-value record sorting.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.bench.experiments.sort_scaling import PHYSICAL_KEYS, make_keys
from repro.bench.report import Table
from repro.hw import delta_d22x, ibm_ac922, system_by_name
from repro.runtime import Machine
from repro.runtime.memcpy import copy_async, span
from repro.runtime.multihop import copy_multihop
from repro.sort import HetConfig, P2PConfig, het_sort, p2p_sort, rp_sort


def run_multihop() -> Table:
    """Multi-hop routing on the DELTA: transfer rates and sort impact."""
    def transfer_rate(use_relay: bool) -> float:
        machine = Machine(delta_d22x(), scale=1000, fast_functional=True)
        src = machine.device(0).alloc(1_000_000, np.int32)
        dst = machine.device(3).alloc(1_000_000, np.int32)

        def run():
            if use_relay:
                yield from copy_multihop(machine, span(dst), span(src),
                                         relays=[2])
            else:
                yield from copy_async(machine, span(dst), span(src))

        machine.run(run())
        return 4e9 / machine.now / 1e9

    data = make_keys(n=PHYSICAL_KEYS)
    scale = 2e9 / PHYSICAL_KEYS

    def sort_seconds(multihop: bool) -> float:
        machine = Machine(delta_d22x(), scale=scale, fast_functional=True)
        return p2p_sort(machine, data, gpu_ids=(0, 1, 2, 3),
                        config=P2PConfig(multihop=multihop)).duration

    table = Table(["metric", "host-staged", "GPU-relayed", "gain"],
                  title="Extension (Section 7): multi-hop P2P routing "
                        "on the DELTA D22x")
    staged_rate, relayed_rate = transfer_rate(False), transfer_rate(True)
    table.add_row("GPU0 -> GPU3 transfer [GB/s]", f"{staged_rate:.1f}",
                  f"{relayed_rate:.1f}",
                  f"{relayed_rate / staged_rate:.1f}x")
    staged_sort, relayed_sort = sort_seconds(False), sort_seconds(True)
    table.add_row("4-GPU P2P sort, 2B keys [s]", f"{staged_sort:.3f}",
                  f"{relayed_sort:.3f}",
                  f"{staged_sort / relayed_sort:.2f}x")
    return table


def run_rp_sort() -> Table:
    """RP sort versus the merge-based P2P sort on all three systems."""
    data = make_keys(n=PHYSICAL_KEYS)
    scale = 2e9 / PHYSICAL_KEYS
    table = Table(["system", "GPUs", "RP sort [s]", "P2P sort [s]",
                   "RP volume [GB]", "P2P volume [GB]"],
                  title="Extension (Section 7): single-exchange RP sort, "
                        "2B keys")
    for system, gpus in (("dgx-a100", 8), ("dgx-a100", 4),
                         ("delta-d22x", 4), ("ibm-ac922", 4)):
        ids = system_by_name(system).preferred_gpu_set(gpus)
        rp = rp_sort(Machine(system_by_name(system), scale=scale,
                             fast_functional=True), data, gpu_ids=ids)
        pp = p2p_sort(Machine(system_by_name(system), scale=scale,
                              fast_functional=True), data, gpu_ids=ids)
        table.add_row(system, gpus, f"{rp.duration:.3f}",
                      f"{pp.duration:.3f}", f"{rp.p2p_bytes / 1e9:.1f}",
                      f"{pp.p2p_bytes / 1e9:.1f}")
    return table


def run_key_value() -> Table:
    """Payload cost of key-value record sorting on the DGX A100."""
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 1 << 30, size=PHYSICAL_KEYS).astype(np.int32)
    values = np.arange(PHYSICAL_KEYS, dtype=np.int64)
    scale = 2e9 / PHYSICAL_KEYS
    table = Table(["algorithm", "keys only [s]", "key+8B value [s]",
                   "slowdown"],
                  title="Extension: key-value records, 2B records on the "
                        "DGX A100 (8 GPUs)")
    for name, sorter in (("p2p", p2p_sort), ("het", het_sort),
                         ("rp", rp_sort)):
        plain = sorter(Machine(system_by_name("dgx-a100"), scale=scale,
                               fast_functional=True), keys).duration
        loaded = sorter(Machine(system_by_name("dgx-a100"), scale=scale,
                                fast_functional=True), keys,
                        values=values).duration
        table.add_row(name, f"{plain:.3f}", f"{loaded:.3f}",
                      f"{loaded / plain:.2f}x")
    return table


def run_numa_placement() -> Table:
    """NUMA-aware input placement on the AC922 (Section 7)."""
    data = make_keys(n=PHYSICAL_KEYS)
    scale = 2e9 / PHYSICAL_KEYS

    def run(**cfg) -> float:
        machine = Machine(ibm_ac922(), scale=scale, fast_functional=True)
        return p2p_sort(machine, data, gpu_ids=(0, 1, 2, 3),
                        config=P2PConfig(**cfg)).duration

    table = Table(["input placement", "4-GPU P2P sort [s]"],
                  title="Extension: NUMA-aware input placement, "
                        "IBM AC922, 2B keys")
    table.add_row("node0 (paper)", f"{run():.3f}")
    table.add_row("numa-local + shuffle",
                  f"{run(input_placement='numa-local'):.3f}")
    table.add_row("numa-local (pre-placed)",
                  f"{run(input_placement='numa-local', charge_redistribution=False):.3f}")
    return table


def run_gpu_merged_groups() -> Table:
    """P2P GPU merge per chunk group for out-of-core data (Section 7)."""
    data = make_keys(n=PHYSICAL_KEYS)
    table = Table(["keys [1e9]", "CPU-merged runs [s]",
                   "GPU-merged groups [s]", "speedup"],
                  title="Extension: P2P GPU merge per chunk group, "
                        "IBM AC922, 2 GPUs, out-of-core")
    for billions in (16.0, 32.0, 48.0):
        durations = []
        for gpu_merge in (False, True):
            machine = Machine(ibm_ac922(),
                              scale=billions * 1e9 / PHYSICAL_KEYS,
                              fast_functional=True)
            durations.append(het_sort(
                machine, data, gpu_ids=(0, 1),
                config=HetConfig(gpu_merge_groups=gpu_merge)).duration)
        table.add_row(f"{billions:g}", f"{durations[0]:.2f}",
                      f"{durations[1]:.2f}",
                      f"{durations[0] / durations[1]:.2f}x")
    return table


def run_all_extensions() -> List[Table]:
    """All extension tables."""
    return [run_multihop(), run_rp_sort(), run_key_value(),
            run_numa_placement(), run_gpu_merged_groups()]
