"""Multi-node cluster benchmark: hierarchical sort at 4-64 nodes.

Scales the paper's platforms out to the clusters of
:mod:`repro.hw.cluster` and measures two things per (fabric, node
count) scenario:

* **sorted throughput** — logical GB sorted per simulated second by
  the hierarchical sort (node-local P2P sort + fabric exchange +
  host merge), under weak scaling (fixed keys per node);
* **engine throughput** — events retired per wall-clock second, the
  simulator-core cost of running 100s of GPUs and 1000s of links in
  one event loop.

The 64-node scenarios are the hard gate of the scale-out work: they
must *complete* on all three fabric generators, and events/sec at 64
nodes must stay within 4x of the 4-node rate even though the link
count grows ~7x — i.e. per-event cost degrades sub-linearly in link
count (precomputed routing tables, per-link membership-index scaling
in the flow solver, batched fabric-flow reallocation).  The gate is
checked in-process: a full run raises if it fails.

Each scenario row records its topology size (nodes, GPUs, links) and
the routing-cache counters; the record's provenance block carries the
largest graph's counts so a regression is attributable to topology
size, not just an opaque config hash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.bench.report import Table, write_bench_record
from repro.data import generate
from repro.errors import ReproError
from repro.hw import FABRICS, make_cluster
from repro.runtime import Machine
from repro.sim.engine import SimProfile
from repro.sort import hier_sort

#: Physical keys per node (weak scaling: the input grows with the
#: cluster).  Small enough that NumPy work does not mask engine cost.
KEYS_PER_NODE = 16_384
#: Logical keys per physical key — ~4 GB of logical data per node.
SCALE = 64_000.0
#: RNG seed for the input data (and the record's provenance).
SEED = 42

#: Node counts of the full sweep; quick runs only the smallest.
FULL_NODE_COUNTS = (4, 16, 64)
QUICK_NODE_COUNTS = (4,)
#: The gate compares the largest against the smallest full count.
GATE_MIN_RATIO = 0.25


@dataclass
class ScenarioResult:
    """One (platform, fabric, node count) scenario's measurements."""

    name: str
    nodes: int
    fabric: str
    counts: Dict[str, int]
    sim_s: float
    wall_s: float
    logical_bytes: float
    events: int
    full_reallocations: int
    batched_starts: int
    routing: Dict[str, object]
    profile: Optional[Dict[str, object]] = None

    @property
    def sorted_gb_per_s(self) -> float:
        """Logical GB sorted per simulated second."""
        return (self.logical_bytes / 1e9 / self.sim_s
                if self.sim_s > 0 else 0.0)

    @property
    def events_per_sec(self) -> float:
        """Engine events retired per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "nodes": self.nodes,
            "gpus": self.counts["gpus"],
            "links": self.counts["links"],
            "vertices": self.counts["vertices"],
            "sim_s": self.sim_s,
            "wall_s": self.wall_s,
            "sorted_gb_per_s": self.sorted_gb_per_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "full_reallocations": self.full_reallocations,
            "batched_starts": self.batched_starts,
            # Nested: informational, not regression-diffed (wall-based
            # and host-dependent).
            "routing": self.routing,
        }
        if self.profile is not None:
            record["profile"] = self.profile
        return record


def run_scenario(base: str, nodes: int, fabric: str) -> ScenarioResult:
    """Build the cluster, run one hierarchical sort, collect counters."""
    spec = make_cluster(base, nodes, fabric=fabric)
    machine = Machine(spec, scale=SCALE, fast_functional=True)
    if PROFILE:
        machine.env.profile = SimProfile()
    data = generate(KEYS_PER_NODE * nodes, "uniform", np.int32, seed=SEED)
    t0 = time.perf_counter()
    result = hier_sort(machine, data)
    wall = time.perf_counter() - t0
    if not np.array_equal(result.output, np.sort(data)):
        raise ReproError(f"{spec.name}: hierarchical sort output is "
                         "not the sorted input")
    routing = dict(spec.topology.routes.stats())
    return ScenarioResult(
        name=spec.name, nodes=nodes, fabric=fabric,
        counts=spec.counts(), sim_s=result.duration, wall_s=wall,
        logical_bytes=result.logical_keys * data.dtype.itemsize,
        events=machine.env.events_retired,
        full_reallocations=machine.net.full_reallocations,
        batched_starts=machine.net.batched_starts,
        routing=routing,
        profile=(machine.env.profile.to_json()
                 if machine.env.profile else None))


def _check_gate(results: List[ScenarioResult]) -> Dict[str, object]:
    """The 64-node scale-out gate; raises when it fails.

    For every fabric present at both the smallest and the largest node
    count: events/sec at the largest must be at least
    :data:`GATE_MIN_RATIO` of the smallest's — sub-linear per-event
    degradation in link count.
    """
    by_key = {(r.fabric, r.nodes): r for r in results
              if r.name.startswith("dgx")}
    gate: Dict[str, object] = {"min_ratio": GATE_MIN_RATIO, "fabrics": {}}
    lo, hi = min(FULL_NODE_COUNTS), max(FULL_NODE_COUNTS)
    for fabric in FABRICS:
        small = by_key.get((fabric, lo))
        large = by_key.get((fabric, hi))
        if small is None or large is None:
            continue
        ratio = (large.events_per_sec / small.events_per_sec
                 if small.events_per_sec else 0.0)
        link_growth = large.counts["links"] / small.counts["links"]
        gate["fabrics"][fabric] = {  # type: ignore[index]
            "events_ratio": ratio,
            "link_growth": link_growth,
        }
        if ratio < GATE_MIN_RATIO:
            raise ReproError(
                f"scale-out gate failed on {fabric}: events/sec at "
                f"{hi} nodes is {ratio:.2f}x the {lo}-node rate "
                f"(minimum {GATE_MIN_RATIO}) while links grew "
                f"{link_growth:.1f}x")
    return gate


def run_cluster(quick: bool = False,
                json_path: Optional[str] = "BENCH_cluster.json") -> Table:
    """Run the cluster benchmark sweep and build its table."""
    node_counts = QUICK_NODE_COUNTS if quick else FULL_NODE_COUNTS
    if quick and json_path == "BENCH_cluster.json":
        # Don't clobber the committed full-sweep record from a smoke.
        json_path = None
    plan = [("dgx-a100", nodes, fabric)
            for fabric in FABRICS for nodes in node_counts]
    # Platform breadth: one small cluster of each other paper machine.
    plan += [("ibm-ac922", 4, "fat-tree"), ("delta-d22x", 4, "fat-tree")]

    results = [run_scenario(*args) for args in plan]
    gate = _check_gate(results) if not quick else None

    table = Table(
        ["cluster", "nodes", "gpus", "links", "sim [s]", "sorted GB/s",
         "events", "events/s", "route hit%"],
        title="Cluster hierarchical sort" + (" (quick)" if quick else ""))
    for r in results:
        table.add_row(
            r.name, r.nodes, r.counts["gpus"], r.counts["links"],
            f"{r.sim_s:.4f}", f"{r.sorted_gb_per_s:,.0f}",
            r.events, f"{r.events_per_sec:,.0f}",
            f"{r.routing['hit_rate']:.0%}")

    if json_path:
        largest = max(results, key=lambda r: r.counts["links"])
        record = {
            "benchmark": "cluster",
            "keys_per_node": KEYS_PER_NODE,
            "scale": SCALE,
            "profile": PROFILE,
            "scenarios": {r.name: r.to_json() for r in results},
        }
        if gate is not None:
            record["gate"] = gate
        write_bench_record(json_path, record, seed=SEED,
                           topology=largest.counts)
    return table


#: Set by the command line's ``--quick`` flag before the registry runs.
QUICK = False

#: Set by the command line's ``--record`` flag: write the benchmark
#: record to this path even under ``--quick`` (the CI cluster smoke
#: diffs it against the committed ``BENCH_cluster.json``).
RECORD_PATH: Optional[str] = None

#: Set by the command line's ``--profile`` flag: attach the engine
#: profiler to every scenario and emit per-phase cost breakdowns
#: (fills, calendar, heap, dispatch) into the BENCH record.
PROFILE = False


def run_cluster_entry() -> Table:
    """Registry entry point; honours ``--quick``/``--record``/``--profile``."""
    return run_cluster(quick=QUICK,
                       json_path=RECORD_PATH or "BENCH_cluster.json")
