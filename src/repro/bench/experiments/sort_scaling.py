"""Figures 1 and 12-14: multi-GPU sort scaling and phase breakdowns.

``sort_duration`` is the workhorse shared by the figure runners and the
benchmark suite: one simulated end-to-end sort of N billion uniformly
distributed keys on a chosen system, algorithm and GPU set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.report import Table, comparison_table, series_table
from repro.data import generate
from repro.hw import system_by_name
from repro.runtime import Machine
from repro.runtime.cpu_ops import cpu_sort
from repro.sort import HetConfig, P2PConfig, SortResult, het_sort, p2p_sort

#: Physical keys per simulated run; the scale factor supplies the
#: billions.  The paper reports the mean of 10 runs; the simulator is
#: deterministic, so one run per configuration suffices.
PHYSICAL_KEYS = 500_000

# Figure 12/13/14 (bottom): total durations at 2B keys per GPU count.
PAPER_TOTALS_2B: Dict[Tuple[str, str], Dict[int, float]] = {
    ("ibm-ac922", "p2p"): {1: 0.35, 2: 0.24, 4: 0.45},
    ("ibm-ac922", "het"): {1: 0.35, 2: 0.35, 4: 0.45},
    ("delta-d22x", "p2p"): {1: 1.37, 2: 0.74, 4: 0.64},
    ("delta-d22x", "het"): {1: 1.37, 2: 0.90, 4: 0.64},
    ("dgx-a100", "p2p"): {1: 0.72, 2: 0.38, 4: 0.25, 8: 0.24},
    ("dgx-a100", "het"): {1: 0.72, 2: 0.56, 4: 0.39, 8: 0.37},
}

# Figure 1: sorting 16 GB (4B int32) on the DGX A100.
PAPER_FIG1: Dict[str, float] = {
    "PARADIS (CPU)": 2.25,
    "Thrust (1 GPU)": 1.47,
    "P2P sort (2 GPUs)": 0.75,
    "P2P sort (4 GPUs)": 0.45,
    "HET sort (2 GPUs)": 1.09,
    "HET sort (4 GPUs)": 0.75,
}


def make_keys(distribution: str = "uniform", dtype=np.int32,
              seed: int = 42, n: int = PHYSICAL_KEYS) -> np.ndarray:
    """The standard physical workload array."""
    return generate(n, distribution, dtype, seed=seed)


def sort_run(system: str, algorithm: str, gpus: int, billions: float,
             distribution: str = "uniform", dtype=np.int32,
             config=None, gpu_ids: Optional[Sequence[int]] = None,
             seed: int = 42) -> SortResult:
    """One end-to-end simulated sort; returns the full result."""
    spec = system_by_name(system)
    scale = billions * 1e9 / PHYSICAL_KEYS
    machine = Machine(spec, scale=scale, fast_functional=True)
    data = make_keys(distribution, dtype, seed=seed)
    if gpu_ids is None:
        gpu_ids = spec.preferred_gpu_set(gpus)
    if algorithm == "p2p" and gpus > 1:
        return p2p_sort(machine, data, gpu_ids=gpu_ids,
                        config=config if isinstance(config, P2PConfig)
                        else None)
    # The single-GPU baseline and HET sort share one code path (plain
    # Thrust for one GPU: HtoD, sort, DtoH, no merge).
    return het_sort(machine, data, gpu_ids=gpu_ids,
                    config=config if isinstance(config, HetConfig) else None)


def sort_duration(system: str, algorithm: str, gpus: int,
                  billions: float, **kwargs) -> float:
    """End-to-end duration in simulated seconds."""
    return sort_run(system, algorithm, gpus, billions, **kwargs).duration


def cpu_sort_duration(system: str, billions: float,
                      primitive: Optional[str] = None) -> float:
    """CPU-only baseline duration (PARADIS by default)."""
    spec = system_by_name(system)
    scale = billions * 1e9 / PHYSICAL_KEYS
    machine = Machine(spec, scale=scale, fast_functional=True)
    buffer = machine.host_buffer(make_keys())
    start = machine.env.now
    machine.run(cpu_sort(machine, buffer, primitive=primitive))
    return machine.env.now - start


def max_billions_in_core(system: str, gpus: int, itemsize: int = 4) -> float:
    """Largest data size (billions of keys) fitting a P2P sort."""
    spec = system_by_name(system)
    capacity = min(spec.gpu_specs[name].memory_bytes
                   for name in spec.gpu_names)
    return gpus * capacity / (2 * itemsize) / 1e9


def scaling_series(system: str, algorithm: str, gpu_counts: Sequence[int],
                   billions_list: Sequence[float]
                   ) -> Dict[int, List[Tuple[float, float]]]:
    """Duration series per GPU count over increasing data sizes.

    P2P series stop at the GPUs' combined memory; HET continues
    (out-of-core capable).  Returns ``{g: [(billions, seconds), ...]}``.
    """
    series: Dict[int, List[Tuple[float, float]]] = {}
    for gpus in gpu_counts:
        points = []
        for billions in billions_list:
            if (algorithm == "p2p"
                    and billions > max_billions_in_core(system, gpus)):
                continue
            points.append((billions,
                           sort_duration(system, algorithm, gpus, billions)))
        series[gpus] = points
    return series


def breakdown_table(system: str, algorithm: str,
                    gpu_counts: Sequence[int],
                    billions: float = 2.0) -> Table:
    """Phase breakdown at a fixed size (Figures 12-14, bottom)."""
    paper = PAPER_TOTALS_2B.get((system, algorithm), {})
    table = Table(["GPUs", "HtoD [s]", "Sort [s]", "Merge [s]", "DtoH [s]",
                   "total [s]", "paper [s]", "ratio"],
                  title=f"{system} {algorithm.upper()} sort, "
                        f"{billions:g}B uniform int32")
    for gpus in gpu_counts:
        result = sort_run(system, algorithm, gpus, billions)
        phases = result.phase_durations
        reference = paper.get(gpus)
        table.add_row(
            gpus,
            f"{phases.get('HtoD', 0.0):.3f}",
            f"{phases.get('Sort', 0.0):.3f}",
            f"{phases.get('Merge', 0.0):.3f}",
            f"{phases.get('DtoH', 0.0):.3f}",
            f"{result.duration:.3f}",
            f"{reference:.2f}" if reference else "-",
            f"{result.duration / reference:.2f}x" if reference else "-",
        )
    return table


def _figure(system: str, gpu_counts: Sequence[int],
            billions_list: Sequence[float], figure: str) -> List[Table]:
    tables = []
    for algorithm in ("p2p", "het"):
        series = scaling_series(system, algorithm, gpu_counts, billions_list)
        sizes = sorted({b for points in series.values() for b, _ in points})
        columns, data = [], []
        for gpus, points in series.items():
            lookup = dict(points)
            columns.append(f"{gpus} GPU{'s' if gpus > 1 else ''}")
            data.append([lookup.get(b, float("nan")) for b in sizes])
        tables.append(series_table(
            f"{figure} ({algorithm.upper()} sort, top): duration vs keys "
            f"on {system}", "keys [1e9]", sizes, columns, data))
        tables.append(breakdown_table(system, algorithm, gpu_counts))
    return tables


def run_fig12() -> List[Table]:
    """Figure 12: multi-GPU sort performance on the IBM AC922."""
    return _figure("ibm-ac922", (1, 2, 4), (1.0, 2.0, 4.0, 8.0), "Figure 12")


def run_fig13() -> List[Table]:
    """Figure 13: multi-GPU sort performance on the DELTA D22x."""
    return _figure("delta-d22x", (1, 2, 4), (1.0, 2.0, 4.0, 8.0), "Figure 13")


def run_fig14() -> List[Table]:
    """Figure 14: multi-GPU sort performance on the DGX A100."""
    return _figure("dgx-a100", (1, 2, 4, 8), (2.0, 4.0, 8.0, 16.0),
                   "Figure 14")


def run_fig1() -> Table:
    """Figure 1: sorting 16 GB on the DGX A100, CPU vs GPUs."""
    billions = 4.0
    rows = [
        ("PARADIS (CPU)", cpu_sort_duration("dgx-a100", billions,
                                            primitive="paradis"),
         PAPER_FIG1["PARADIS (CPU)"]),
        ("Thrust (1 GPU)", sort_duration("dgx-a100", "het", 1, billions),
         PAPER_FIG1["Thrust (1 GPU)"]),
        ("P2P sort (2 GPUs)", sort_duration("dgx-a100", "p2p", 2, billions),
         PAPER_FIG1["P2P sort (2 GPUs)"]),
        ("P2P sort (4 GPUs)", sort_duration("dgx-a100", "p2p", 4, billions),
         PAPER_FIG1["P2P sort (4 GPUs)"]),
        ("HET sort (2 GPUs)", sort_duration("dgx-a100", "het", 2, billions),
         PAPER_FIG1["HET sort (2 GPUs)"]),
        ("HET sort (4 GPUs)", sort_duration("dgx-a100", "het", 4, billions),
         PAPER_FIG1["HET sort (4 GPUs)"]),
    ]
    return comparison_table("Figure 1: sorting 16 GB on the DGX A100",
                            "configuration", rows,
                            value_formatter=lambda v: f"{v:7.3f}",
                            unit="s")
