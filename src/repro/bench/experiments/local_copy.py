"""Section 5.2: device-local copies versus P2P interconnect transfers.

The out-of-place swap overlaps a device-local copy with the P2P
streams; the paper justifies it by measuring local copies to be 3x
faster than NVLink 3.0, 5x faster than three NVLink 2.0 bricks and 42x
faster than PCIe 3.0.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bench.report import Table
from repro.bench.transfers import gpu, measure_throughput, p2p
from repro.hw import delta_d22x, dgx_a100, ibm_ac922

#: (system, P2P path, paper ratio of local copy over that path).
PAPER_RATIOS: List[Tuple[str, str, float]] = [
    ("dgx-a100", "NVLink 3.0 (NVSwitch)", 3.0),
    ("ibm-ac922", "3x NVLink 2.0", 5.0),
    ("delta-d22x", "PCIe 3.0 (host-staged)", 42.0),
]

_BUILDERS = {"ibm-ac922": ibm_ac922, "delta-d22x": delta_d22x,
             "dgx-a100": dgx_a100}
#: P2P pair exercising the named interconnect per system.
_P2P_PAIR = {"dgx-a100": (0, 1), "ibm-ac922": (0, 1), "delta-d22x": (0, 3)}


def local_copy_rate(system: str) -> float:
    """Device-local copy throughput in GB/s (one on-GPU DtoD copy)."""
    builder = _BUILDERS[system]
    return measure_throughput(builder, [(gpu(0), gpu(0))])


def p2p_rate(system: str) -> float:
    """Serial P2P throughput over the system's characteristic path."""
    builder = _BUILDERS[system]
    a, b = _P2P_PAIR[system]
    return measure_throughput(builder, [p2p(a, b)])


def measure() -> List[Tuple[str, str, float, float, float]]:
    """(system, path, local GB/s, p2p GB/s, ratio) rows."""
    rows = []
    for system, path, _paper in PAPER_RATIOS:
        local = local_copy_rate(system)
        remote = p2p_rate(system)
        rows.append((system, path, local, remote, local / remote))
    return rows


def run_local_copy() -> Table:
    """Regenerate the Section 5.2 local-copy comparison."""
    table = Table(["system", "P2P path", "local copy [GB/s]",
                   "P2P [GB/s]", "ratio", "paper ratio"],
                  title="Section 5.2: device-local copy vs P2P transfer")
    paper = {(s, p): r for s, p, r in PAPER_RATIOS}
    for system, path, local, remote, ratio in measure():
        table.add_row(system, path, f"{local:.0f}", f"{remote:.1f}",
                      f"{ratio:.1f}x", f"{paper[(system, path)]:.0f}x")
    return table
