"""Table 2: single-GPU sorting primitives, 1B 32-bit integers on an A100.

Times the on-device sort kernel only (no transfers), matching the
paper's primitive comparison.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.bench.report import Table, comparison_table
from repro.hw import dgx_a100
from repro.runtime import Machine
from repro.runtime.kernels import sort_on_device
from repro.runtime.memcpy import span

PAPER_TABLE2_MS: Dict[str, float] = {
    "thrust": 36.0,
    "cub": 36.0,
    "stehle": 57.0,
    "mgpu": 200.0,
}

#: 1B 32-bit integers, represented by 1M physical keys at scale 1000.
_PHYSICAL = 1_000_000
_SCALE = 1000.0


def sort_duration_ms(primitive: str, gpu_model: str = "a100") -> float:
    """Simulated kernel time for 1B int32 on one GPU, in milliseconds."""
    machine = Machine(dgx_a100(), scale=_SCALE, fast_functional=True)
    device = machine.device(0)
    if gpu_model == "v100":
        from repro.hw import ibm_ac922
        machine = Machine(ibm_ac922(), scale=_SCALE, fast_functional=True)
        device = machine.device(0)
    buffer = device.alloc(_PHYSICAL, np.int32)
    buffer.data[:] = np.random.default_rng(0).integers(
        0, 2**31 - 1, size=_PHYSICAL, dtype=np.int32)
    start = machine.env.now
    machine.run(sort_on_device(machine, span(buffer),
                               primitive=primitive))
    return (machine.env.now - start) * 1e3


def measure() -> List[Tuple[str, float, float]]:
    """(primitive, measured_ms, paper_ms) rows."""
    return [(name, sort_duration_ms(name), paper)
            for name, paper in PAPER_TABLE2_MS.items()]


def run_table2() -> Table:
    """Regenerate Table 2."""
    table = comparison_table(
        "Table 2: NVIDIA A100 sorting 1B integers (4 GB)",
        "primitive", measure(),
        value_formatter=lambda v: f"{v:7.1f}", unit="ms")
    return table
