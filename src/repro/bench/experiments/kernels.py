"""Throughput benchmark of the functional kernel layer.

Like ``simcore``, this experiment measures the repository itself rather
than a paper figure: the *host wall-clock* cost of the functional
kernels that execute every sort's data movement (the simulated virtual
time is independent of them).  Each scenario times the vectorized
production kernel against its retained element-wise reference — the
seed-tree implementation that doubles as the property-test oracle — on
the same input:

* **scatter** — :func:`stable_counting_permutation` (one stable C radix
  argsort over the digit array) versus the per-bucket
  ``flatnonzero`` gather of the seed.
* **paradis** — the one-round vectorized PARADIS level versus the
  element-at-a-time speculation/repair loop.
* **lsb** — the pooled double-buffer LSB radix sort versus the same
  pass structure composed from the reference scatter with per-pass
  allocations.
* **merge** — the pooled binary-merge-tree multiway merge versus the
  loser tree.
* **e2e** — a complete 8-GPU P2P sort on the DGX A100 with
  ``fast_functional=False``, i.e. every functional kernel on its hot
  path; its baseline is the seed tree's wall-clock, measured on the
  same host (re-measure when porting to other hardware).

Results are printed as a table and, for the full suite, written to
``BENCH_kernels.json`` with before/after throughput per kernel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.bench.report import Table, write_bench_record
from repro.data import generate
from repro.hw import dgx_a100
from repro.runtime import Machine

#: Wall-clock seconds of the end-to-end scenario on the seed tree
#: (per-bucket scatter, element-wise PARADIS, allocation-per-call merge
#: layer), measured best-of-3 on the reference host.
SEED_E2E_WALL_S: Dict[str, float] = {
    "p2p-8gpu-2m-int32": 1.607,
}


@dataclass
class KernelResult:
    """Before/after wall-clock of one kernel scenario."""

    name: str
    keys: int
    wall_s: float
    runs: List[float] = field(default_factory=list)
    ref_wall_s: Optional[float] = None
    #: Where the baseline comes from: a live run of the retained
    #: reference implementation, or the recorded seed-tree wall-clock.
    ref_source: str = "reference-impl"

    @property
    def keys_per_sec(self) -> float:
        """Vectorized-path throughput."""
        return self.keys / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def ref_keys_per_sec(self) -> Optional[float]:
        """Reference-path throughput (``None`` without a baseline)."""
        if self.ref_wall_s is None or self.ref_wall_s <= 0:
            return None
        return self.keys / self.ref_wall_s

    @property
    def speedup(self) -> Optional[float]:
        """Reference wall over vectorized wall (``None`` if unknown)."""
        if self.ref_wall_s is None or self.wall_s <= 0:
            return None
        return self.ref_wall_s / self.wall_s

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable record, including derived rates."""
        record: Dict[str, object] = {
            "keys": self.keys,
            "wall_s": self.wall_s,
            "runs": self.runs,
            "keys_per_sec": self.keys_per_sec,
        }
        if self.ref_wall_s is not None:
            record["ref_wall_s"] = self.ref_wall_s
            record["ref_keys_per_sec"] = self.ref_keys_per_sec
            record["speedup"] = self.speedup
            record["ref_source"] = self.ref_source
        return record


def _best_of(fn: Callable[[], None], repeats: int) -> List[float]:
    """Wall-clock seconds of ``repeats`` runs of ``fn``, sorted."""
    runs = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - t0)
    return sorted(runs)


def run_scatter(n: int, repeats: int) -> KernelResult:
    """Stable counting permutation: vectorized vs per-bucket gather."""
    from repro.gpuprims.common import (
        stable_counting_permutation,
        stable_counting_permutation_reference,
    )

    rng = np.random.default_rng(42)
    digits = rng.integers(0, 256, size=n).astype(np.int64)
    assert np.array_equal(stable_counting_permutation(digits, 256),
                          stable_counting_permutation_reference(digits, 256))
    runs = _best_of(lambda: stable_counting_permutation(digits, 256),
                    repeats)
    ref_runs = _best_of(
        lambda: stable_counting_permutation_reference(digits, 256), 1)
    return KernelResult(name=f"scatter-{_size_tag(n)}", keys=n,
                        wall_s=runs[0], runs=runs, ref_wall_s=ref_runs[0])


def run_paradis(n: int, repeats: int) -> KernelResult:
    """PARADIS: vectorized level vs element-wise speculation/repair."""
    from repro.cpuprims.paradis import paradis_sort, paradis_sort_reference

    data = generate(n, "uniform", np.int32, seed=42)
    assert np.array_equal(paradis_sort(data), paradis_sort_reference(data))
    runs = _best_of(lambda: paradis_sort(data), repeats)
    ref_runs = _best_of(lambda: paradis_sort_reference(data), 1)
    return KernelResult(name=f"paradis-{_size_tag(n)}", keys=n,
                        wall_s=runs[0], runs=runs, ref_wall_s=ref_runs[0])


def _lsb_reference(values: np.ndarray) -> np.ndarray:
    """The seed LSB radix sort: reference scatter, per-pass allocations."""
    from repro.gpuprims.common import (
        from_radix_keys,
        stable_counting_permutation_reference,
        to_radix_keys,
    )

    keys, dtype = to_radix_keys(values)
    key_bits = dtype.itemsize * 8
    for shift in range(0, key_bits, 8):
        digits = ((keys >> keys.dtype.type(shift))
                  & keys.dtype.type(0xFF)).astype(np.int64)
        order = stable_counting_permutation_reference(digits, 256)
        keys = keys[order]
    return from_radix_keys(keys, dtype)


def run_lsb(n: int, repeats: int) -> KernelResult:
    """Full LSB radix sort: pooled double buffer vs seed composition."""
    from repro.gpuprims.radix_lsb import radix_sort_lsb

    data = generate(n, "uniform", np.int32, seed=42)
    assert np.array_equal(radix_sort_lsb(data), _lsb_reference(data))
    runs = _best_of(lambda: radix_sort_lsb(data), repeats)
    ref_runs = _best_of(lambda: _lsb_reference(data), 1)
    return KernelResult(name=f"lsb-{_size_tag(n)}", keys=n,
                        wall_s=runs[0], runs=runs, ref_wall_s=ref_runs[0])


def run_merge(k: int, run_length: int, repeats: int) -> KernelResult:
    """K-way merge: pooled binary merge tree vs the loser tree."""
    from repro.cpuprims.multiway_merge import (
        multiway_merge,
        multiway_merge_losertree,
    )

    rng = np.random.default_rng(42)
    runs_data = [np.sort(rng.integers(0, 2**31, size=run_length)
                         .astype(np.int32)) for _ in range(k)]
    total = k * run_length
    assert np.array_equal(multiway_merge(runs_data),
                          multiway_merge_losertree(runs_data))
    runs = _best_of(lambda: multiway_merge(runs_data), repeats)
    ref_runs = _best_of(lambda: multiway_merge_losertree(runs_data), 1)
    return KernelResult(name=f"merge-{k}x{_size_tag(run_length)}",
                        keys=total, wall_s=runs[0], runs=runs,
                        ref_wall_s=ref_runs[0])


def run_e2e(keys: int, repeats: int) -> KernelResult:
    """Complete 8-GPU P2P sort with the functional kernels live."""
    from repro.sort import p2p_sort  # deferred: pulls in the sort stack

    data = generate(keys, "uniform", np.int32, seed=42)

    def once() -> None:
        machine = Machine(dgx_a100(), scale=1000.0, fast_functional=False)
        p2p_sort(machine, data)

    runs = _best_of(once, repeats)
    name = f"p2p-8gpu-{_size_tag(keys)}-int32"
    baseline = SEED_E2E_WALL_S.get(name)
    return KernelResult(name=name, keys=keys, wall_s=runs[0], runs=runs,
                        ref_wall_s=baseline, ref_source="seed-tree")


def _size_tag(n: int) -> str:
    if n % 1_000_000 == 0:
        return f"{n // 1_000_000}m"
    if n % 1_000 == 0:
        return f"{n // 1_000}k"
    return str(n)


def _rate(value: Optional[float]) -> str:
    return f"{value:,.0f}" if value else "-"


def run_kernels(quick: bool = False, repeats: Optional[int] = None,
                json_path: Optional[str] = "BENCH_kernels.json") -> Table:
    """Run the kernel-layer benchmark suite and build its table.

    ``quick`` shrinks every scenario (the CI smoke / perf-test mode) and
    skips the JSON record; the full suite measures the vectorized paths
    best-of-``repeats`` (references run once — they are the slow side)
    and writes ``json_path``.
    """
    if repeats is None:
        repeats = 1 if quick else 3
    if quick:
        plan = [
            lambda: run_scatter(100_000, repeats),
            lambda: run_paradis(50_000, repeats),
            lambda: run_lsb(200_000, repeats),
            lambda: run_merge(8, 4_000, repeats),
            lambda: run_e2e(200_000, repeats),
        ]
        if json_path == "BENCH_kernels.json":
            # Don't clobber the committed full-suite record from a smoke.
            json_path = None
    else:
        plan = [
            lambda: run_scatter(1_000_000, repeats),
            lambda: run_paradis(1_000_000, repeats),
            lambda: run_lsb(1_000_000, repeats),
            lambda: run_merge(16, 16_000, repeats),
            lambda: run_e2e(2_000_000, repeats),
        ]

    results = [scenario() for scenario in plan]

    table = Table(
        ["kernel", "keys", "before [s]", "after [s]", "before keys/s",
         "after keys/s", "speedup"],
        title="Functional kernel throughput"
              + (" (quick)" if quick else ""))
    for result in results:
        before = (f"{result.ref_wall_s:.4f}"
                  if result.ref_wall_s is not None else "-")
        speedup = (f"{result.speedup:.2f}x"
                   if result.speedup is not None else "-")
        table.add_row(
            result.name, f"{result.keys:,}", before,
            f"{result.wall_s:.4f}", _rate(result.ref_keys_per_sec),
            _rate(result.keys_per_sec), speedup)

    if json_path:
        record = {
            "benchmark": "kernels",
            "seed_note": (
                "per-kernel baselines are live runs of the retained "
                "reference implementations (the seed-tree algorithms, "
                "kept as property-test oracles); the e2e baseline is "
                "the seed tree's wall-clock measured on the same host, "
                "best of 3"),
            "repeats": repeats,
            "scenarios": {r.name: r.to_json() for r in results},
        }
        write_bench_record(json_path, record)
    return table


#: Set by the command line's ``--quick`` flag before the registry runs.
QUICK = False


def run_kernels_entry() -> Table:
    """Registry entry point; honours the command line's ``--quick``."""
    return run_kernels(quick=QUICK)
