"""Service benchmark: the sort service under offered-load sweeps.

Not a paper figure — the paper sorts once on a dedicated machine; this
experiment measures the ROADMAP's service milestone instead.  Per
platform, a reference supervised sort calibrates the platform's
sorting rate; the workload generator then offers Poisson job streams
at 0.5x, 1x and 2x the estimated capacity, and the table reports
jobs/sec, p50/p99 latency of completed jobs, and the rejection-rate
curve.  The headline property under test: at 2x overload the service
*sheds load with typed rejections* while p99 of the jobs it does admit
stays within 2x of the 1x value — no unbounded queue, no crash.

A breaker scenario per platform round-trips a chaos plan through
:meth:`~repro.faults.plan.FaultPlan.to_json` /
:meth:`~repro.faults.plan.FaultPlan.from_json` (the replayable-artifact
path), makes one GPU a persistent straggler, and shows the circuit
breaker quarantining it after three consecutive faulted jobs — with
every subsequent job scheduled around it.

Results go to ``BENCH_service.json`` (quick mode too — the committed
record is generated quick, so the CI smoke diffs bit-identical
simulated metrics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.report import Table, write_bench_record
from repro.data import generate
from repro.faults import FaultPlan
from repro.faults.events import StragglerGpu
from repro.hw import system_by_name
from repro.recovery import SortSupervisor
from repro.runtime import Machine
from repro.serve import (
    ServiceConfig,
    SortService,
    Tenant,
    WorkloadSpec,
    generate_jobs,
)

SEED = 20220711

#: Physical keys of a full-size ("large") job; the mix scales down.
PHYSICAL_KEYS = 50_000

#: Logical billions of keys of a full-size job.
BILLIONS = 0.5

#: Offered load as a multiple of estimated capacity.
LOADS = (0.5, 1.0, 2.0)

SYSTEMS = ("ibm-ac922", "delta-d22x", "dgx-a100")

#: Jobs per load point (quick: CI smoke; full: tighter percentiles).
JOBS_QUICK = 30
JOBS_FULL = 120

#: Expected keys-fraction of one job under the default workload mix
#: (0.5 x 1/8 + 0.3 x 1/2 + 0.2 x 1).
MIX_MEAN_FRACTION = 0.4125


@dataclass
class LoadPoint:
    """Service metrics at one (platform, offered load) point."""

    system: str
    load: float
    offered: int
    completed: int
    rejected: int
    rejections: Dict[str, int]
    deadline: int
    failed: int
    jobs_per_s: float
    p50_latency_s: float
    p99_latency_s: float
    mean_queue_wait_s: float
    peak_queue: int
    #: Episode metrics snapshot (per-tenant latency histograms,
    #: rejection counters) from :attr:`ServiceReport.metrics`.  Nested,
    #: so ``repro.obs diff`` ignores it — the flat numbers above stay
    #: the comparison surface.
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "load": self.load,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "rejections": dict(self.rejections),
            "rejection_rate": self.rejection_rate,
            "deadline": self.deadline,
            "failed": self.failed,
            "jobs_per_s": self.jobs_per_s,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "peak_queue": self.peak_queue,
            "metrics": dict(self.metrics),
        }


@dataclass
class BreakerScenario:
    """Circuit-breaker outcome of one chaos episode."""

    system: str
    straggler_gpu: int
    offered: int
    completed: int
    quarantined: Tuple[int, ...]
    #: Jobs judged before the breaker tripped (the consecutive-fault
    #: count it took).
    jobs_to_trip: int
    #: Jobs dispatched after the trip that still used the bad GPU
    #: (must be 0: scheduled around it).
    post_trip_uses: int
    plan_roundtrip_ok: bool

    def to_json(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "straggler_gpu": self.straggler_gpu,
            "offered": self.offered,
            "completed": self.completed,
            "quarantined": list(self.quarantined),
            "jobs_to_trip": self.jobs_to_trip,
            "post_trip_uses": self.post_trip_uses,
            "plan_roundtrip_ok": self.plan_roundtrip_ok,
        }


def _calibrate(system: str) -> Tuple[float, float]:
    """``(scale, rate)``: logical/physical factor and the platform's
    measured sorting rate in logical keys per second per GPU.

    One supervised reference sort on a throwaway machine — the same
    executor the service uses, so the estimate includes checkpoint
    overhead.
    """
    spec = system_by_name(system)
    scale = BILLIONS * 1e9 / PHYSICAL_KEYS
    machine = Machine(spec, scale=scale, fast_functional=True)
    data = generate(PHYSICAL_KEYS, "uniform", seed=SEED)
    result = SortSupervisor(machine).sort(data, algorithm="p2p")
    rate = result.logical_keys / (result.duration * len(result.gpu_ids))
    return scale, rate


def run_load_point(system: str, load: float, jobs: int,
                   seed: int = SEED) -> LoadPoint:
    """One service episode at ``load`` times estimated capacity."""
    scale, rate = _calibrate(system)
    spec = system_by_name(system)
    machine = Machine(spec, scale=scale, fast_functional=True)
    # Capacity in jobs/s: all GPUs sorting at the calibrated rate over
    # the mix's mean job size.
    mean_logical = MIX_MEAN_FRACTION * PHYSICAL_KEYS * scale
    capacity = spec.num_gpus * rate / mean_logical
    workload = WorkloadSpec(
        jobs=jobs, arrival_rate=load * capacity,
        base_keys=PHYSICAL_KEYS,
        est_service_s=PHYSICAL_KEYS * scale / rate,
        seed=seed)
    service = SortService(
        machine,
        tenants=[Tenant(name) for name in workload.tenants],
        config=ServiceConfig(queue_capacity=6,
                             gpu_rate_keys_per_s=rate))
    report = service.run(generate_jobs(workload))
    return LoadPoint(
        system=system, load=load, offered=report.offered,
        completed=report.completed, rejected=report.rejected,
        rejections=dict(report.rejections),
        deadline=report.by_status.get("deadline", 0),
        failed=report.by_status.get("failed", 0),
        jobs_per_s=report.jobs_per_s,
        p50_latency_s=report.p50_latency_s,
        p99_latency_s=report.p99_latency_s,
        mean_queue_wait_s=report.mean_queue_wait_s,
        peak_queue=report.peak_queue,
        metrics=report.metrics)


def run_breaker_scenario(system: str, jobs: int,
                         seed: int = SEED) -> BreakerScenario:
    """Chaos episode: one persistent straggler GPU, breaker armed.

    The fault plan goes through a JSON round-trip before installation —
    exactly how a saved chaos artifact would be replayed.
    """
    scale, rate = _calibrate(system)
    spec = system_by_name(system)
    machine = Machine(spec, scale=scale, fast_functional=True)
    straggler = spec.num_gpus - 1
    plan = FaultPlan(events=(
        StragglerGpu(at=0.0, gpu=straggler, duration=1e9, slowdown=2.0),),
        seed=seed)
    loaded = FaultPlan.from_json(plan.to_json())
    machine.install_faults(loaded)
    workload = WorkloadSpec(
        jobs=jobs, arrival_rate=0.5 * spec.num_gpus * rate
        / (MIX_MEAN_FRACTION * PHYSICAL_KEYS * scale),
        base_keys=PHYSICAL_KEYS,
        est_service_s=PHYSICAL_KEYS * scale / rate,
        deadline_slack=None,  # no deadlines: isolate the breaker signal
        seed=seed + 1)
    service = SortService(
        machine,
        tenants=[Tenant(name) for name in workload.tenants],
        config=ServiceConfig(queue_capacity=6,
                             gpu_rate_keys_per_s=rate))
    report = service.run(generate_jobs(workload))
    trip_at = (service.breaker.trips[0][1]
               if service.breaker.trips else None)
    jobs_to_trip = 0
    post_trip_uses = 0
    for result in report.results:
        if result.started_s is None or straggler not in result.gpu_ids:
            continue
        if trip_at is not None and result.started_s > trip_at:
            post_trip_uses += 1
        else:
            jobs_to_trip += 1
    return BreakerScenario(
        system=system, straggler_gpu=straggler, offered=report.offered,
        completed=report.completed,
        quarantined=report.quarantined,
        jobs_to_trip=jobs_to_trip,
        post_trip_uses=post_trip_uses,
        plan_roundtrip_ok=loaded == plan)


def run_service(quick: bool = False,
                json_path: Optional[str] = "BENCH_service.json"
                ) -> List[Table]:
    """Run the service suite and build its tables."""
    jobs = JOBS_QUICK if quick else JOBS_FULL
    points: List[LoadPoint] = []
    breakers: List[BreakerScenario] = []
    for system in SYSTEMS:
        for load in LOADS:
            points.append(run_load_point(system, load, jobs))
        breakers.append(run_breaker_scenario(system, jobs))

    table = Table(
        ["system", "load", "offered", "done", "rejected", "reject %",
         "jobs/s", "p50 [s]", "p99 [s]", "wait [s]", "peak q"],
        title=f"Sort service under offered load ({BILLIONS:g}B-key "
              "full-size jobs)" + (" (quick)" if quick else ""))
    for point in points:
        table.add_row(
            point.system, f"{point.load:g}x", point.offered,
            point.completed, point.rejected,
            f"{100 * point.rejection_rate:.0f}%",
            f"{point.jobs_per_s:.1f}",
            f"{point.p50_latency_s:.3f}", f"{point.p99_latency_s:.3f}",
            f"{point.mean_queue_wait_s:.3f}", point.peak_queue)

    breaker_table = Table(
        ["system", "straggler", "offered", "done", "quarantined",
         "jobs to trip", "post-trip uses", "plan roundtrip"],
        title="Circuit breaker: persistent straggler, typed quarantine")
    for scenario in breakers:
        breaker_table.add_row(
            scenario.system, f"gpu{scenario.straggler_gpu}",
            scenario.offered, scenario.completed,
            ",".join(map(str, scenario.quarantined)) or "-",
            scenario.jobs_to_trip, scenario.post_trip_uses,
            "ok" if scenario.plan_roundtrip_ok else "BROKEN")

    if json_path:
        scenarios: Dict[str, object] = {
            f"{p.system}-x{p.load:g}": p.to_json() for p in points}
        scenarios.update({f"{s.system}-breaker": s.to_json()
                          for s in breakers})
        record = {
            "benchmark": "service",
            "seed": SEED,
            "quick": quick,
            "physical_keys": PHYSICAL_KEYS,
            "billions": BILLIONS,
            "loads": list(LOADS),
            "jobs_per_point": jobs,
            "scenarios": scenarios,
        }
        write_bench_record(json_path, record, seed=SEED)
    return [table, breaker_table]


#: Set by the command line's ``--quick`` flag before the registry runs.
QUICK = False

#: Set by ``--record PATH`` to redirect the JSON record (the CI smoke
#: writes a fresh record next to the committed one and diffs the two).
RECORD_PATH: Optional[str] = None


def run_service_entry() -> List[Table]:
    """Registry entry point; honours ``--quick`` and ``--record``."""
    return run_service(quick=QUICK,
                       json_path=RECORD_PATH or "BENCH_service.json")
