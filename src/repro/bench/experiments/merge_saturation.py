"""Section 5.3: multiway-merge memory bandwidth saturation.

The paper measures gnu_parallel::multiway_merge to saturate 71-94% of
the STREAM-sustainable memory bandwidth across the three systems, for
n in {2, 8, 32} billion integers split into k in {2, 4, 8} runs.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.bench.experiments.sort_scaling import PHYSICAL_KEYS
from repro.bench.report import Table
from repro.cpuprims.stream import (
    MERGE_SATURATION_HIGH,
    MERGE_SATURATION_LOW,
)
from repro.hw import system_by_name
from repro.runtime import Machine
from repro.runtime.cpu_ops import cpu_multiway_merge

SYSTEMS = ("ibm-ac922", "delta-d22x", "dgx-a100")


def merge_duration(system: str, billions: float, runs: int) -> float:
    """Simulated duration of one k-way merge of ``billions`` keys."""
    spec = system_by_name(system)
    machine = Machine(spec, scale=billions * 1e9 / PHYSICAL_KEYS,
                      fast_functional=True)
    per_run = PHYSICAL_KEYS // runs
    rng = np.random.default_rng(0)
    arrays = [np.sort(rng.integers(0, 2**31 - 1, size=per_run,
                                   dtype=np.int32))
              for _ in range(runs)]
    out = np.empty(per_run * runs, dtype=np.int32)
    start = machine.env.now
    machine.run(cpu_multiway_merge(machine, out, arrays))
    return machine.env.now - start


def saturation_rows() -> List[Tuple[str, float, float, float, float]]:
    """(system, standalone GB/s, HET-effective GB/s, STREAM, saturation).

    Saturation counts total memory traffic (read + write = twice the
    output rate) of the *standalone* benchmark against the STREAM
    bandwidth, as the paper does (Section 5.3); the HET-effective rate
    is what the merge reaches inside the end-to-end sort (lower — the
    paper's own HET breakdowns imply it).
    """
    from repro.hw import calibration as cal

    rows = []
    for system in SYSTEMS:
        spec = system_by_name(system)
        standalone = cal.STANDALONE_MERGE_RATE[system] / 1e9
        seconds = merge_duration(system, 8.0, 4)
        het_effective = 8e9 * 4 / seconds / 1e9
        stream = spec.cpu.stream_bw / 1e9
        rows.append((system, standalone, het_effective, stream,
                     2 * standalone / stream))
    return rows


def run_merge_saturation() -> Table:
    """Regenerate the Section 5.3 saturation measurement."""
    table = Table(["system", "standalone [GB/s]", "in HET sort [GB/s]",
                   "STREAM [GB/s]", "saturation", "paper band"],
                  title="Section 5.3: multiway merge vs STREAM bandwidth")
    for system, standalone, het_rate, stream, saturation in saturation_rows():
        table.add_row(system, f"{standalone:.1f}", f"{het_rate:.1f}",
                      f"{stream:.1f}", f"{saturation:.0%}",
                      f"{MERGE_SATURATION_LOW:.0%}-"
                      f"{MERGE_SATURATION_HIGH:.0%}")
    return table
