"""Section 6 (CPU Sort Baseline): choosing the CPU-only competitor.

The paper benchmarks PARADIS, Polychroniou & Ross' SIMD LSB radix sort,
and the library sorts (gnu_parallel, TBB, parallel std::sort) on every
system.  Expected shape: PARADIS beats the libraries everywhere; the
SIMD sort wins below 2B keys on the DGX A100 and below 8B keys on the
DELTA D22x; it cannot run on the POWER9-based AC922.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.experiments.sort_scaling import PHYSICAL_KEYS, make_keys
from repro.bench.report import Table
from repro.hw import system_by_name
from repro.runtime import Machine

SYSTEMS = ("ibm-ac922", "delta-d22x", "dgx-a100")
PRIMITIVES = ("paradis", "simd_lsb", "gnu_parallel", "tbb", "std_par")

#: Crossover sizes above which PARADIS overtakes the SIMD sort.
PAPER_SIMD_CROSSOVER_BILLIONS = {"dgx-a100": 2.0, "delta-d22x": 8.0}


def cpu_primitive_duration(system: str, primitive: str,
                           billions: float) -> Optional[float]:
    """CPU sort duration, or ``None`` if the primitive cannot run there."""
    spec = system_by_name(system)
    if primitive not in spec.cpu.sort_rates:
        return None
    rate = spec.cpu.sort_rate(primitive)
    # The SIMD LSB radix sort loses its edge beyond its cache-friendly
    # regime (Section 6); model: rate drops 25% past the crossover.
    if primitive == "simd_lsb":
        crossover = PAPER_SIMD_CROSSOVER_BILLIONS.get(system)
        if crossover is not None and billions > crossover:
            rate *= spec.cpu.sort_rate("paradis") / rate * 0.9
    machine = Machine(spec, scale=billions * 1e9 / PHYSICAL_KEYS,
                      fast_functional=True)
    buffer = machine.host_buffer(make_keys())
    start = machine.env.now

    def run():
        yield from _sort_with_rate(machine, buffer, rate)

    machine.run(run())
    return machine.env.now - start


def _sort_with_rate(machine: Machine, buffer, rate: float):
    from repro.sim.resources import Direction
    node = machine.spec.topology.node("cpu0")
    route = ((node.memory, Direction.FWD), (node.memory, Direction.REV))
    flow = machine.net.start_flow(route, buffer.nbytes * machine.scale,
                                  rate_cap=rate, label="cpu-baseline")
    yield flow.done


def measure(billions_list: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0)
            ) -> Dict[str, List[Tuple[float, Dict[str, Optional[float]]]]]:
    """Durations of every primitive per system and size."""
    results: Dict[str, List[Tuple[float, Dict[str, Optional[float]]]]] = {}
    for system in SYSTEMS:
        rows = []
        for billions in billions_list:
            rows.append((billions, {
                primitive: cpu_primitive_duration(system, primitive, billions)
                for primitive in PRIMITIVES}))
        results[system] = rows
    return results


def best_primitive(system: str, billions: float) -> str:
    """The fastest CPU primitive for one system and size."""
    durations = {p: cpu_primitive_duration(system, p, billions)
                 for p in PRIMITIVES}
    available = {p: d for p, d in durations.items() if d is not None}
    return min(available, key=lambda p: available[p])


def run_cpu_baselines() -> List[Table]:
    """Regenerate the Section 6 CPU baseline comparison."""
    tables = []
    for system, rows in measure().items():
        table = Table(["keys [1e9]", *PRIMITIVES, "best"],
                      title=f"Section 6 CPU baselines on {system} [s]")
        for billions, durations in rows:
            cells = [f"{durations[p]:.2f}" if durations[p] is not None
                     else "n/a" for p in PRIMITIVES]
            table.add_row(f"{billions:g}", *cells,
                          best_primitive(system, billions))
        tables.append(table)
    return tables
