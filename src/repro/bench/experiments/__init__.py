"""One module per paper experiment; see :mod:`repro.bench.harness`."""
