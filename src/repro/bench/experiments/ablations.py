"""Ablations of the design choices DESIGN.md calls out.

Beyond reproducing the paper's figures, these experiments isolate the
impact of the individual optimizations:

* **GPU order** (Section 5.4) — ``(0, 1, 2, 3)`` vs ``(0, 2, 1, 3)`` on
  the AC922, plus the optimizer's pick.  On the DELTA the search finds
  ``(1, 0, 2, 3)``, whose global merge stage also runs over NVLink — a
  configuration the paper's default order misses.
* **Leftmost pivot** — leftmost vs the literal Algorithm 1 pivot on
  sorted / nearly-sorted data (leftmost skips swaps entirely).
* **Out-of-place swap** — overlapped bidirectional swap vs serialized
  staged copies.
* **Copy/compute overlap value** — the Section 6.2/7 argument: the
  faster the interconnect, the less the 3n overlap can hide.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bench.experiments.sort_scaling import sort_run
from repro.bench.report import Table
from repro.hw import system_by_name
from repro.sort import HetConfig, P2PConfig, best_gpu_order_for_p2p


def gpu_order_rows(system: str, billions: float = 2.0
                   ) -> List[Tuple[str, float]]:
    """P2P sort duration per 4-GPU order on one system."""
    spec = system_by_name(system)
    optimizer_pick = best_gpu_order_for_p2p(spec, (0, 1, 2, 3))
    orders = [(0, 1, 2, 3), (0, 2, 1, 3), optimizer_pick]
    rows = []
    seen = set()
    for order in orders:
        if order in seen:
            continue
        seen.add(order)
        result = sort_run(system, "p2p", 4, billions, gpu_ids=order)
        label = f"{order}"
        if order == optimizer_pick:
            label += " (optimizer pick)"
        rows.append((label, result.duration))
    return rows


def run_gpu_order(systems=("ibm-ac922", "delta-d22x")) -> List[Table]:
    """GPU-set order ablation (Section 5.4)."""
    tables = []
    for system in systems:
        table = Table(["order", "duration [s]"],
                      title=f"Ablation: 4-GPU P2P sort order on {system}, "
                            "2B uniform int32")
        for label, duration in gpu_order_rows(system):
            table.add_row(label, f"{duration:.3f}")
        tables.append(table)
    return tables


def pivot_rows(system: str = "ibm-ac922", gpus: int = 2,
               billions: float = 2.0) -> List[Tuple[str, str, float, float]]:
    """(distribution, measured leftmost, measured Algorithm 1) rows."""
    rows = []
    for distribution in ("uniform", "sorted", "nearly-sorted",
                         "reverse-sorted"):
        leftmost = sort_run(system, "p2p", gpus, billions,
                            distribution=distribution,
                            config=P2PConfig(leftmost_pivot=True))
        literal = sort_run(system, "p2p", gpus, billions,
                           distribution=distribution,
                           config=P2PConfig(leftmost_pivot=False))
        rows.append((distribution, leftmost.duration, literal.duration,
                     leftmost.p2p_bytes / 1e9))
    return rows


def run_pivot_ablation() -> Table:
    """Leftmost-pivot ablation on the AC922 (Section 5.2)."""
    table = Table(["distribution", "leftmost [s]", "Algorithm 1 [s]",
                   "P2P volume [GB]"],
                  title="Ablation: pivot selection strategy, 2 GPUs on "
                        "the IBM AC922, 2B keys")
    for distribution, leftmost, literal, volume in pivot_rows():
        table.add_row(distribution, f"{leftmost:.3f}", f"{literal:.3f}",
                      f"{volume:.1f}")
    return table


def swap_overlap_rows(billions: float = 2.0) -> List[Tuple[str, float, float]]:
    """(system, overlapped, serialized) P2P sort durations, 2 GPUs."""
    rows = []
    for system in ("ibm-ac922", "delta-d22x", "dgx-a100"):
        gpus = system_by_name(system).preferred_gpu_set(2)
        overlapped = sort_run(system, "p2p", 2, billions, gpu_ids=gpus,
                              config=P2PConfig(out_of_place_swap=True))
        serialized = sort_run(system, "p2p", 2, billions, gpu_ids=gpus,
                              config=P2PConfig(out_of_place_swap=False))
        rows.append((system, overlapped.duration, serialized.duration))
    return rows


def run_swap_ablation() -> Table:
    """Out-of-place overlapped swap vs serialized swap (Section 5.2)."""
    table = Table(["system", "overlapped [s]", "serialized [s]", "benefit"],
                  title="Ablation: out-of-place P2P swap, 2 GPUs, 2B keys")
    for system, overlapped, serialized in swap_overlap_rows():
        table.add_row(system, f"{overlapped:.3f}", f"{serialized:.3f}",
                      f"{serialized / overlapped:.2f}x")
    return table


def overlap_value_rows() -> List[Tuple[str, float, float, float]]:
    """(system, billions, 2n duration, 3n duration) for out-of-core data.

    Section 6.2/7: overlapping copy and compute (3n) buys little on
    modern systems.  The AC922 runs the paper's 32B-key configuration,
    where the on-GPU phases differ most but the final CPU merge (77% of
    the total there) overshadows the difference.
    """
    rows = []
    for system, gpus, billions in (("ibm-ac922", 2, 32.0),
                                   ("delta-d22x", 4, 16.0),
                                   ("dgx-a100", 8, 60.0)):
        two_n = sort_run(system, "het", gpus, billions,
                         config=HetConfig(approach="2n"))
        three_n = sort_run(system, "het", gpus, billions,
                           config=HetConfig(approach="3n"))
        rows.append((system, billions, two_n.duration, three_n.duration))
    return rows


def run_overlap_value() -> Table:
    """Copy/compute overlap value across interconnect generations."""
    table = Table(["system", "keys [1e9]", "2n [s]", "3n [s]", "3n/2n"],
                  title="Ablation: is hiding the GPU sort worth a smaller "
                        "chunk size? (out-of-core data)")
    for system, billions, two_n, three_n in overlap_value_rows():
        table.add_row(system, f"{billions:g}", f"{two_n:.2f}",
                      f"{three_n:.2f}", f"{three_n / two_n:.2f}x")
    return table
