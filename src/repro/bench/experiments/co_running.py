"""Co-running workloads: what "exclusive system usage" is worth.

The paper's evaluation assumes the sort owns the machine (Section 6).
This experiment injects two realistic neighbours — a scan-heavy query
saturating part of the host memory bandwidth, and another operator's
CPU-GPU copy stream — and measures each sorting algorithm's slowdown.

Expected shape: HET sort suffers most from memory-bandwidth pressure
(its CPU merge is bandwidth-bound, Section 5.3); P2P sort suffers most
from competing PCIe traffic on its copy phases; the NVSwitch merge
phase is immune to host-side noise.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench.experiments.sort_scaling import PHYSICAL_KEYS, make_keys
from repro.bench.report import Table
from repro.hw import system_by_name
from repro.runtime import Machine
from repro.runtime.background import start_copy_stream, start_memory_scan
from repro.sort import het_sort, p2p_sort
from repro.units import gb

_SCENARIOS = ("exclusive", "memory scan (40 GB/s)", "copy stream (1 GPU)")


def sort_under_load(system: str, algorithm: str, gpus: int,
                    scenario: str, billions: float = 2.0) -> float:
    """Duration of one sort while a background workload runs."""
    spec = system_by_name(system)
    machine = Machine(spec, scale=billions * 1e9 / PHYSICAL_KEYS,
                      fast_functional=True)
    if scenario == "memory scan (40 GB/s)":
        start_memory_scan(machine, gb(40.0))
    elif scenario == "copy stream (1 GPU)":
        # A neighbour hammers an *uninvolved* GPU's CPU link.
        spare = spec.num_gpus - 1
        start_copy_stream(machine, spare)
    data = make_keys(n=PHYSICAL_KEYS)
    ids = spec.preferred_gpu_set(gpus)
    sorter = p2p_sort if algorithm == "p2p" else het_sort
    return sorter(machine, data, gpu_ids=ids).duration


def measure(system: str = "dgx-a100",
            gpus: int = 4) -> Dict[Tuple[str, str], float]:
    """Durations per (algorithm, scenario)."""
    return {(algorithm, scenario):
            sort_under_load(system, algorithm, gpus, scenario)
            for algorithm in ("p2p", "het")
            for scenario in _SCENARIOS}


def run_co_running(system: str = "dgx-a100", gpus: int = 4) -> Table:
    """The co-running interference table."""
    results = measure(system, gpus)
    table = Table(["algorithm", *(f"{s} [s]" for s in _SCENARIOS),
                   "worst slowdown"],
                  title=f"Co-running workloads on {system}, {gpus} GPUs, "
                        "2B keys")
    for algorithm in ("p2p", "het"):
        clean = results[(algorithm, "exclusive")]
        row = [f"{results[(algorithm, s)]:.3f}" for s in _SCENARIOS]
        worst = max(results[(algorithm, s)] for s in _SCENARIOS) / clean
        table.add_row(algorithm, *row, f"{worst:.2f}x")
    return table
