"""Section 6.3: sorting different key data types.

8 GB of data per run: 4B 32-bit keys (int/float) or 2B 64-bit keys
(long/double).  Expected shape: on the A100 the four runs land within
95% of each other; on the V100, 32-bit runs take only 83-88% of the
64-bit time.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.bench.experiments.sort_scaling import sort_run
from repro.bench.report import Table
from repro.data import KEY_TYPES

#: Total bytes per experiment (8 GB), as in the paper.
_TOTAL_BYTES = 8e9

#: Expected 32-bit over 64-bit duration ratios (Section 6.3).
PAPER_RATIO_BANDS = {
    "dgx-a100": (0.95, 1.05),     # "within 95%"
    "ibm-ac922": (0.83, 0.88),    # V100: 32-bit takes 83-88% of 64-bit
}


def measure(system: str, algorithm: str = "p2p",
            gpus: int = 2) -> Dict[str, float]:
    """Sort durations per key type name (int/float/long/double)."""
    durations: Dict[str, float] = {}
    for name, dtype in KEY_TYPES.items():
        billions = _TOTAL_BYTES / dtype.itemsize / 1e9
        result = sort_run(system, algorithm, gpus, billions, dtype=dtype)
        durations[name] = result.duration
    return durations


def width_ratio(durations: Dict[str, float]) -> float:
    """Mean 32-bit duration over mean 64-bit duration."""
    narrow = (durations["int"] + durations["float"]) / 2
    wide = (durations["long"] + durations["double"]) / 2
    return narrow / wide


def run_datatypes() -> List[Table]:
    """Section 6.3 data-type experiment on both GPU generations."""
    tables = []
    for system, gpu_name in (("dgx-a100", "A100"), ("ibm-ac922", "V100")):
        durations = measure(system)
        lo, hi = PAPER_RATIO_BANDS[system]
        table = Table(["key type", "itemsize", "keys [1e9]", "duration [s]"],
                      title=f"Section 6.3: sorting 8 GB per type on the "
                            f"{gpu_name} ({system}); 32/64-bit ratio "
                            f"{width_ratio(durations):.2f} "
                            f"(paper band {lo:.2f}-{hi:.2f})")
        for name, dtype in KEY_TYPES.items():
            billions = _TOTAL_BYTES / dtype.itemsize / 1e9
            table.add_row(name, np.dtype(dtype).itemsize, f"{billions:g}",
                          f"{durations[name]:.3f}")
        tables.append(table)
    return tables
