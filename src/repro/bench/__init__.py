"""Benchmark harness regenerating every table and figure of the paper.

Run everything::

    python -m repro.bench            # all experiments
    python -m repro.bench fig4       # one experiment
    python -m repro.bench --list     # what exists

or through pytest-benchmark: ``pytest benchmarks/ --benchmark-only``.
"""

from repro.bench.harness import (
    EXPERIMENTS,
    Experiment,
    experiment_by_id,
    run_all,
)
from repro.bench.report import Table, format_gbps, format_seconds
from repro.bench.transfers import Endpoint, measure_throughput

__all__ = [
    "EXPERIMENTS",
    "Endpoint",
    "Experiment",
    "Table",
    "experiment_by_id",
    "format_gbps",
    "format_seconds",
    "measure_throughput",
    "run_all",
]
