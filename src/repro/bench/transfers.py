"""Data-transfer micro-benchmarks (the Section 4 methodology).

:func:`measure_throughput` reproduces the paper's measurement scheme:
every transfer copies a 4 GB pinned buffer; concurrent transfers start
together; a scenario's throughput is the total volume divided by the
time the *slowest* copy stream needs ("bidirectional data transfers are
bound by the slower copy stream", Section 4.2).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ReproError
from repro.hw.systems import SystemSpec
from repro.runtime.context import Machine
from repro.runtime.memcpy import copy_async, span
from repro.units import GB

#: ("host", numa_index) or ("gpu", gpu_id).
Endpoint = Tuple[str, int]

#: Physical elements per transfer buffer in measurements (4 MB of
#: int32); with the default scale of 1000 one buffer represents the
#: paper's 4 GB.
_PHYSICAL_ELEMENTS = 1_000_000
_DEFAULT_SCALE = 1000.0

HOST = ("host", 0)


def gpu(gpu_id: int) -> Endpoint:
    """GPU endpoint shorthand."""
    return ("gpu", gpu_id)


def htod(gpu_id: int, numa: int = 0) -> Tuple[Endpoint, Endpoint]:
    """A host-to-device transfer descriptor."""
    return (("host", numa), ("gpu", gpu_id))


def dtoh(gpu_id: int, numa: int = 0) -> Tuple[Endpoint, Endpoint]:
    """A device-to-host transfer descriptor."""
    return (("gpu", gpu_id), ("host", numa))


def bidir(gpu_id: int, numa: int = 0) -> List[Tuple[Endpoint, Endpoint]]:
    """Both directions for one GPU, concurrently."""
    return [htod(gpu_id, numa), dtoh(gpu_id, numa)]


def p2p(src_gpu: int, dst_gpu: int) -> Tuple[Endpoint, Endpoint]:
    """A P2P transfer descriptor."""
    return (("gpu", src_gpu), ("gpu", dst_gpu))


def p2p_bidir(a: int, b: int) -> List[Tuple[Endpoint, Endpoint]]:
    """Bidirectional P2P between two GPUs."""
    return [p2p(a, b), p2p(b, a)]


def measure_throughput(
    spec_or_builder: Union[SystemSpec, Callable[[], SystemSpec]],
    transfers: Sequence[Tuple[Endpoint, Endpoint]],
    scale: float = _DEFAULT_SCALE,
    pinned: bool = True,
) -> float:
    """Aggregate throughput of concurrent transfers, in GB/s.

    Each transfer moves one 4 GB (logical) buffer; the result is the
    total logical volume over the completion time of the last stream.
    """
    if not transfers:
        raise ReproError("at least one transfer is required")
    spec = spec_or_builder() if callable(spec_or_builder) else spec_or_builder
    machine = Machine(spec, scale=scale, fast_functional=True)

    def make_buffer(endpoint: Endpoint):
        kind, index = endpoint
        if kind == "host":
            return machine.host_buffer(
                np.zeros(_PHYSICAL_ELEMENTS, np.int32), numa=index,
                pinned=pinned)
        if kind == "gpu":
            return machine.device(index).alloc(_PHYSICAL_ELEMENTS, np.int32)
        raise ReproError(f"unknown endpoint kind {kind!r}")

    def scenario():
        procs = []
        for src, dst in transfers:
            src_buf = make_buffer(src)
            dst_buf = make_buffer(dst)
            procs.append(machine.env.process(
                copy_async(machine, span(dst_buf), span(src_buf))))
        yield machine.env.all_of(procs)

    start = machine.env.now
    machine.run(scenario())
    elapsed = machine.env.now - start
    total_logical = len(transfers) * _PHYSICAL_ELEMENTS * 4 * scale
    return total_logical / elapsed / GB
