"""Command line for the benchmark suite: ``python -m repro.bench``."""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import EXPERIMENTS, experiment_by_id, run_all


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures from the "
                    "calibrated simulation.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write all result tables as JSON")
    parser.add_argument("--quick", action="store_true",
                        help="simcore/kernels/resilience/service/cluster "
                             "only: run the reduced scenario sweep (simcore, "
                             "kernels and cluster then skip their JSON "
                             "records; resilience and service always write "
                             "their own)")
    parser.add_argument("--record", metavar="PATH", default=None,
                        help="simcore/service/cluster only: write the "
                             "benchmark record to PATH (the CI smokes diff "
                             "it against the committed record)")
    parser.add_argument("--profile", action="store_true",
                        help="simcore/cluster only: attach the engine "
                             "profiler and emit a per-phase cost breakdown "
                             "(fill rounds, calendar rebuilds, heap ops, "
                             "dispatch) into the BENCH record")
    args = parser.parse_args(argv)
    if args.quick:
        from repro.bench.experiments import (cluster, kernels, resilience,
                                             service, simcore)
        cluster.QUICK = True
        kernels.QUICK = True
        simcore.QUICK = True
        resilience.QUICK = True
        service.QUICK = True
    if args.profile:
        from repro.bench.experiments import cluster, simcore
        cluster.PROFILE = True
        simcore.PROFILE = True
    if args.record:
        from repro.bench.experiments import cluster, service, simcore
        cluster.RECORD_PATH = args.record
        simcore.RECORD_PATH = args.record
        service.RECORD_PATH = args.record
    if args.list:
        for experiment in EXPERIMENTS:
            print(f"{experiment.id:22s} {experiment.title}")
        return 0
    if args.json:
        chosen = (EXPERIMENTS if not args.experiments
                  else [experiment_by_id(i) for i in args.experiments])
        record = {}
        for experiment in chosen:
            print(f"=== {experiment.title} ===")
            tables = experiment.run()
            for table in tables:
                table.print()
            record[experiment.id] = [
                {"title": table.title, "headers": table.headers,
                 "rows": table.rows} for table in tables]
        with open(args.json, "w") as handle:
            json.dump(record, handle, indent=1)
        print(f"JSON record written to {args.json}")
        return 0
    run_all(args.experiments or None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
