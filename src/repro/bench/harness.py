"""Registry of all reproducible experiments.

Each :class:`Experiment` maps a paper table/figure (or an ablation) to
the runner that regenerates it.  The registry backs both the
``python -m repro.bench`` command line and the pytest-benchmark suite
in ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Union

from repro.bench.experiments import (
    ablations,
    cluster,
    co_running,
    cpu_baselines,
    datatypes,
    distributions,
    extensions,
    kernels,
    large_data,
    local_copy,
    merge_saturation,
    resilience,
    service,
    simcore,
    sort_scaling,
    table2,
    transfer_ramp,
    transfers_cpu_gpu,
    transfers_p2p,
)
from repro.bench.report import Table
from repro.errors import ReproError

Runner = Callable[[], Union[Table, List[Table]]]


@dataclass(frozen=True)
class Experiment:
    """One regenerable experiment."""

    id: str
    title: str
    runner: Runner

    def run(self) -> List[Table]:
        """Execute and return the result tables."""
        result = self.runner()
        return result if isinstance(result, list) else [result]


EXPERIMENTS: List[Experiment] = [
    Experiment("table2", "Table 2: single-GPU sorting primitives",
               table2.run_table2),
    Experiment("fig1", "Figure 1: sorting 16 GB on the DGX A100",
               sort_scaling.run_fig1),
    Experiment("fig2", "Figure 2: CPU-GPU transfers, IBM AC922",
               transfers_cpu_gpu.run_fig2),
    Experiment("fig3", "Figure 3: CPU-GPU transfers, DELTA D22x",
               transfers_cpu_gpu.run_fig3),
    Experiment("fig4", "Figure 4: CPU-GPU transfers, DGX A100",
               transfers_cpu_gpu.run_fig4),
    Experiment("fig5", "Figure 5: P2P transfers, IBM AC922",
               transfers_p2p.run_fig5),
    Experiment("fig6", "Figure 6: P2P transfers, DELTA D22x",
               transfers_p2p.run_fig6),
    Experiment("fig7", "Figure 7: P2P transfers, DGX A100",
               transfers_p2p.run_fig7),
    Experiment("fig12", "Figure 12: sort scaling, IBM AC922",
               sort_scaling.run_fig12),
    Experiment("fig13", "Figure 13: sort scaling, DELTA D22x",
               sort_scaling.run_fig13),
    Experiment("fig14", "Figure 14: sort scaling, DGX A100",
               sort_scaling.run_fig14),
    Experiment("fig15a", "Figure 15a: HET approaches for large data",
               large_data.run_fig15a),
    Experiment("fig15b", "Figure 15b: HET sort vs CPU for large data",
               large_data.run_fig15b),
    Experiment("fig16", "Figure 16: varying data distributions",
               distributions.run_fig16),
    Experiment("datatypes", "Section 6.3: key data types",
               datatypes.run_datatypes),
    Experiment("cpu-baselines", "Section 6: CPU sort baselines",
               cpu_baselines.run_cpu_baselines),
    Experiment("local-copy", "Section 5.2: local copy vs P2P",
               local_copy.run_local_copy),
    Experiment("merge-saturation", "Section 5.3: merge bandwidth saturation",
               merge_saturation.run_merge_saturation),
    Experiment("ablation-gpu-order", "Ablation: P2P GPU set order",
               ablations.run_gpu_order),
    Experiment("ablation-pivot", "Ablation: pivot selection strategy",
               ablations.run_pivot_ablation),
    Experiment("ablation-swap", "Ablation: out-of-place swap overlap",
               ablations.run_swap_ablation),
    Experiment("ablation-overlap", "Ablation: copy/compute overlap value",
               ablations.run_overlap_value),
    Experiment("ext-multihop", "Extension: multi-hop P2P routing",
               extensions.run_multihop),
    Experiment("ext-rp-sort", "Extension: single-exchange RP sort",
               extensions.run_rp_sort),
    Experiment("ext-key-value", "Extension: key-value record sorting",
               extensions.run_key_value),
    Experiment("ext-numa-placement", "Extension: NUMA-aware input placement",
               extensions.run_numa_placement),
    Experiment("ext-gpu-merge", "Extension: GPU-merged chunk groups",
               extensions.run_gpu_merged_groups),
    Experiment("ext-transfer-ramp", "Extension: bandwidth vs transfer size",
               transfer_ramp.run_transfer_ramp),
    Experiment("ext-co-running", "Extension: co-running workloads",
               co_running.run_co_running),
    Experiment("simcore", "Simulator-core throughput (engine + allocator)",
               simcore.run_simcore_entry),
    Experiment("kernels", "Functional kernel layer throughput "
               "(scatter, PARADIS, merge)",
               kernels.run_kernels_entry),
    Experiment("resilience", "Sorting under injected faults (fault model)",
               resilience.run_resilience_entry),
    Experiment("service", "Multi-tenant sort service under offered load",
               service.run_service_entry),
    Experiment("cluster", "Multi-node hierarchical sort over cluster fabrics",
               cluster.run_cluster_entry),
]

_BY_ID: Dict[str, Experiment] = {e.id: e for e in EXPERIMENTS}


def experiment_by_id(experiment_id: str) -> Experiment:
    """Look up one experiment."""
    try:
        return _BY_ID[experiment_id]
    except KeyError:
        known = ", ".join(e.id for e in EXPERIMENTS)
        raise ReproError(
            f"unknown experiment {experiment_id!r} (known: {known})"
        ) from None


def run_all(ids: Union[List[str], None] = None) -> None:
    """Run experiments (all by default) and print their tables."""
    chosen = (EXPERIMENTS if not ids
              else [experiment_by_id(i) for i in ids])
    for experiment in chosen:
        print(f"=== {experiment.title} ===")
        for table in experiment.run():
            table.print()
