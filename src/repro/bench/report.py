"""Plain-text reporting: tables comparing measured against the paper,
plus the provenance-stamped benchmark-record writer."""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence


def format_gbps(value: float) -> str:
    """Bandwidth cell, GB/s."""
    return f"{value:7.1f}"


def format_seconds(value: float) -> str:
    """Duration cell, seconds."""
    return f"{value:7.3f}"


def format_ratio(measured: float, reference: float) -> str:
    """Measured-over-paper cell."""
    if reference <= 0:
        return "    n/a"
    return f"{measured / reference:6.2f}x"


class Table:
    """A fixed-column text table."""

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row (cells are str()-ed)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns")
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        """The table as a multi-line string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in
                               zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout."""
        print(self.render())
        print()


def write_bench_record(path: str, record: dict,
                       seed: Optional[int] = None,
                       topology: Optional[dict] = None) -> str:
    """Write one ``BENCH_*.json`` record with an embedded provenance block.

    The provenance (git SHA + dirty flag, config hash, seed, UTC
    timestamp, host facts — see :mod:`repro.obs.provenance`) makes
    every number traceable and lets ``repro.obs diff`` refuse
    apples-to-oranges comparisons.  The config hash covers everything
    except the measured ``scenarios`` (and the provenance itself).
    Cluster-scale records pass ``topology`` (node/GPU/vertex/link
    counts) so a regression is attributable to the simulated graph
    size, not just the opaque config hash.
    """
    from repro.obs.provenance import provenance

    config = {key: value for key, value in record.items()
              if key not in ("scenarios", "provenance")}
    stamped = dict(record)
    stamped["provenance"] = provenance(config, seed=seed, topology=topology)
    if stamped["provenance"].get("dirty"):
        # A record from a dirty tree cannot be traced back to a commit;
        # it must not be checked in (tests/bench/test_bench_provenance.py
        # fails CI if one is).  Regenerate from a clean tree instead.
        print(f"WARNING: {path} was produced from a dirty working tree; "
              "do not commit it (provenance.dirty = true)",
              file=sys.stderr)
    with open(path, "w") as handle:
        json.dump(stamped, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def comparison_table(title: str, label_header: str,
                     rows: Sequence[tuple],
                     value_formatter=format_gbps,
                     unit: str = "GB/s") -> Table:
    """Build a (label, measured, paper, ratio) table.

    ``rows`` are ``(label, measured, paper)`` tuples; ``paper`` may be
    ``None`` for model-only rows.
    """
    table = Table([label_header, f"measured [{unit}]", f"paper [{unit}]",
                   "ratio"], title=title)
    for label, measured, paper in rows:
        if paper is None:
            table.add_row(label, value_formatter(measured).strip(),
                          "-", "-")
        else:
            table.add_row(label, value_formatter(measured).strip(),
                          value_formatter(paper).strip(),
                          format_ratio(measured, paper).strip())
    return table


def series_table(title: str, x_header: str, x_values: Sequence,
                 columns: Sequence[str],
                 series: Sequence[Sequence[float]],
                 value_formatter=format_seconds) -> Table:
    """Build a table of several y-series over one x axis (figure style)."""
    if any(len(s) != len(x_values) for s in series):
        raise ValueError("every series must match the x-axis length")
    table = Table([x_header, *columns], title=title)
    for i, x in enumerate(x_values):
        table.add_row(x, *(value_formatter(s[i]).strip() for s in series))
    return table
