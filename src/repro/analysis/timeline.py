"""Export simulated traces as Chrome trace-event timelines.

Load the JSON produced by :func:`write_chrome_trace` in
``chrome://tracing`` or https://ui.perfetto.dev to inspect a run the
way one would a real ``nsys`` profile: one row per GPU / CPU actor,
one slice per phase span.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.sim.trace import Trace

#: Simulated seconds to trace microseconds.
_US = 1e6

#: Stable color names per phase (Chrome trace "cname" values).
_PHASE_COLORS = {
    "HtoD": "thread_state_runnable",
    "DtoH": "thread_state_iowait",
    "Sort": "good",
    "Merge": "bad",
    "Partition": "generic_work",
    "Exchange": "terrible",
    "CPUSort": "grey",
}


def to_chrome_trace(trace: Trace, label: str = "repro") -> Dict:
    """Convert a trace to the Chrome trace-event JSON structure."""
    actors = sorted({span.actor for span in trace.spans})
    tids = {actor: index for index, actor in enumerate(actors)}
    events: List[Dict] = []
    for actor, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": actor},
        })
    for span in trace.spans:
        event = {
            "name": span.phase,
            "cat": "sim",
            "ph": "X",
            "pid": 0,
            "tid": tids[span.actor],
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "args": {"bytes": span.bytes},
        }
        color = _PHASE_COLORS.get(span.phase)
        if color:
            event["cname"] = color
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": label},
    }


def write_chrome_trace(trace: Trace, path: str,
                       label: Optional[str] = None) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    payload = to_chrome_trace(trace, label=label or path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return path
