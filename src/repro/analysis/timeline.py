"""Export simulated traces as Chrome trace-event timelines.

Load the JSON produced by :func:`write_chrome_trace` in
``chrome://tracing`` or https://ui.perfetto.dev to inspect a run the
way one would a real ``nsys`` profile: one row per GPU / CPU actor,
one slice per phase span.

With a :class:`~repro.obs.recorder.Recorder` (see
:meth:`repro.runtime.context.Machine.enable_observability`) the export
deepens into a full profile:

* **nested slices** — each flow recorded under a traced copy span is
  emitted on the span's own row, so a phase slice visually decomposes
  into the transfers that made it up (spans carry their ``id`` and
  ``parent`` in ``args`` for tooling);
* **counter tracks** — one per link direction (allocated bandwidth in
  GB/s) plus an active-flow-count track, rendered by Perfetto as
  area charts under the slices;
* **fault markers** — instant events at each fault occurrence and
  shaded range slices for fault windows, on a dedicated ``faults`` row.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.sim.trace import Trace

#: Simulated seconds to trace microseconds.
_US = 1e6

#: Stable color names per phase (Chrome trace "cname" values).
_PHASE_COLORS = {
    "HtoD": "thread_state_runnable",
    "DtoH": "thread_state_iowait",
    "Sort": "good",
    "Merge": "bad",
    "Partition": "generic_work",
    "Exchange": "terrible",
    "CPUSort": "grey",
    "P2PSort": "vsync_highlight_color",
    "HetSort": "vsync_highlight_color",
    "flow": "rail_load",
    "fault": "terrible",
}


def to_chrome_trace(trace: Trace, label: str = "repro",
                    recorder=None) -> Dict:
    """Convert a trace to the Chrome trace-event JSON structure.

    Pass the run's :class:`~repro.obs.recorder.Recorder` to add flow
    slices nested under their parent spans, per-link bandwidth counter
    tracks, and fault markers.
    """
    actors = sorted({span.actor for span in trace.spans})
    tids = {actor: index for index, actor in enumerate(actors)}
    events: List[Dict] = []
    for actor, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": actor},
        })
    span_tids: Dict[int, int] = {}
    for span in trace.spans:
        tid = tids[span.actor]
        if span.id:
            span_tids[span.id] = tid
        event = {
            "name": span.phase,
            "cat": "sim",
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "args": {"bytes": span.bytes, "id": span.id,
                     "parent": span.parent},
        }
        color = _PHASE_COLORS.get(span.phase)
        if span.phase.startswith("Fault:"):
            color = _PHASE_COLORS["fault"]
        if color:
            event["cname"] = color
        events.append(event)
    if recorder is not None:
        events.extend(_recorder_events(recorder, span_tids, len(tids)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": label},
    }


def _recorder_events(recorder, span_tids: Dict[int, int],
                     next_tid: int) -> List[Dict]:
    """Flow slices, counter tracks and fault markers from the recorder."""
    from repro.obs.events import FaultClose, FaultOpen, LinkRate
    from repro.obs.telemetry import flow_count_series

    events: List[Dict] = []
    # Flows: nested under their parent span's row when attached; the
    # rest (un-traced transfers) collect on a shared overflow row.
    flow_tid = next_tid
    fault_tid = next_tid + 1
    used_flow_row = False
    for record in recorder.flows:
        end = record.end if record.end is not None else recorder.last_time
        tid = span_tids.get(record.parent_span)
        if tid is None:
            tid = flow_tid
            used_flow_row = True
        events.append({
            "name": record.label,
            "cat": "flow",
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": record.start * _US,
            "dur": max(0.0, end - record.start) * _US,
            "cname": _PHASE_COLORS["flow"],
            "args": {"bytes": record.size, "links": list(record.links),
                     "parent": record.parent_span,
                     "aborted": record.aborted},
        })
    if used_flow_row:
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": flow_tid, "args": {"name": "flows"}})
    # Fault markers: an instant per occurrence, a shaded range per
    # closed window, all on one dedicated row.
    used_fault_row = False
    for event in recorder.events:
        if isinstance(event, FaultOpen):
            used_fault_row = True
            events.append({
                "name": f"{event.fault}@{event.target}",
                "cat": "fault",
                "ph": "i",
                "s": "g",
                "pid": 0,
                "tid": fault_tid,
                "ts": event.t * _US,
                "args": {"instant": event.instant},
            })
        elif isinstance(event, FaultClose):
            used_fault_row = True
            events.append({
                "name": f"{event.fault}@{event.target}",
                "cat": "fault",
                "ph": "X",
                "pid": 0,
                "tid": fault_tid,
                "ts": event.opened * _US,
                "dur": max(0.0, event.t - event.opened) * _US,
                "cname": _PHASE_COLORS["fault"],
                "args": {},
            })
    if used_fault_row:
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": fault_tid, "args": {"name": "faults"}})
    # Counter tracks: per-link allocated bandwidth plus active flows.
    for event in recorder.events:
        if isinstance(event, LinkRate):
            events.append({
                "name": f"bw {event.link}.{event.direction}",
                "cat": "link",
                "ph": "C",
                "pid": 0,
                "ts": event.t * _US,
                "args": {"GB/s": event.rate / 1e9},
            })
    for when, count in flow_count_series(recorder):
        events.append({
            "name": "active flows",
            "cat": "flow",
            "ph": "C",
            "pid": 0,
            "ts": when * _US,
            "args": {"flows": count},
        })
    return events


def write_chrome_trace(trace: Trace, path: str,
                       label: Optional[str] = None,
                       recorder=None) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    payload = to_chrome_trace(trace, label=label or path,
                              recorder=recorder)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return path
