"""Per-actor utilization: who was busy, with what, for how long.

Complements the phase breakdowns: where
:mod:`repro.analysis.breakdown` answers "which phase dominated",
this module answers "which device sat idle" — the load-balancing view
behind the paper's observation that GPUs execute partly uncoupled
(Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.sim.trace import Trace


@dataclass(frozen=True)
class ActorUtilization:
    """One actor's activity over a window."""

    actor: str
    busy: float
    window: float
    by_phase: Dict[str, float]

    @property
    def fraction(self) -> float:
        """Busy share of the window (spans may overlap on one actor)."""
        return self.busy / self.window if self.window else 0.0


def utilization_report(trace: Trace,
                       window: Optional[float] = None
                       ) -> List[ActorUtilization]:
    """Per-actor busy time over ``window`` (defaults to the trace span).

    Busy time sums span durations; concurrent spans on one actor (e.g.
    a copy engine and a kernel) can push the fraction above 1 — that is
    overlap, not an error.
    """
    if window is not None and window <= 0:
        raise ReproError(
            f"utilization window must be positive, got {window}")
    if not trace.spans:
        return []
    if window is None:
        window = (max(s.end for s in trace.spans)
                  - min(s.start for s in trace.spans))
    actors = sorted({s.actor for s in trace.spans})
    report = []
    for actor in actors:
        spans = [s for s in trace.spans if s.actor == actor]
        by_phase: Dict[str, float] = {}
        for span in spans:
            by_phase[span.phase] = (by_phase.get(span.phase, 0.0)
                                    + span.duration)
        report.append(ActorUtilization(
            actor=actor, busy=sum(s.duration for s in spans),
            window=window, by_phase=by_phase))
    return report


def load_imbalance(trace: Trace, phase: str) -> Tuple[float, float]:
    """(min, max) busy time across actors for one phase.

    A large spread means stragglers: the phase's wall time is set by
    the slowest actor (the paper's phase-end convention).
    """
    per_actor: Dict[str, float] = {}
    for span in trace.spans:
        if span.phase == phase:
            per_actor[span.actor] = (per_actor.get(span.actor, 0.0)
                                     + span.duration)
    if not per_actor:
        return (0.0, 0.0)
    values = list(per_actor.values())
    return (min(values), max(values))
