"""Phase breakdowns in the paper's style (Figures 12-14, bottom)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sort.result import SortResult

#: Phase display order: the paper's stacked-bar phases plus the phases
#: the extension algorithms introduce (redistribution, partition and
#: the RP exchange).
PHASE_ORDER: Tuple[str, ...] = ("Redistribute", "HtoD", "Partition",
                                "Sort", "Exchange", "Merge", "DtoH")


@dataclass(frozen=True)
class PhaseBreakdown:
    """One sort run reduced to per-phase durations and fractions."""

    total: float
    phases: Dict[str, float]

    def fraction(self, phase: str) -> float:
        """Share of the total one phase accounts for (phases overlap, so
        fractions need not sum to one)."""
        return self.phases.get(phase, 0.0) / self.total if self.total else 0.0

    def dominant_phase(self) -> str:
        """The phase with the largest wall-clock window."""
        return max(self.phases, key=lambda name: self.phases[name])

    def rows(self) -> List[Tuple[str, float, float]]:
        """(phase, seconds, fraction) rows in display order."""
        return [(name, self.phases.get(name, 0.0), self.fraction(name))
                for name in PHASE_ORDER if name in self.phases]


def breakdown_of(result: SortResult) -> PhaseBreakdown:
    """Phase breakdown of a sort result."""
    return PhaseBreakdown(total=result.duration,
                          phases=dict(result.phase_durations))
