"""Derived metrics for comparing runs against the paper."""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.errors import ReproError


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """How many times faster the candidate is than the baseline."""
    if candidate_seconds <= 0:
        raise ReproError("candidate duration must be positive")
    return baseline_seconds / candidate_seconds


def shape_error(measured: Sequence[float], reference: Sequence[float]) -> float:
    """Worst multiplicative deviation between two series.

    Returns ``max_i exp(|ln(measured_i / reference_i)|)`` — 1.0 means a
    perfect match, 1.2 means every point within 20%.  This is the
    reproduction criterion: shapes and factors, not absolute seconds.
    """
    if len(measured) != len(reference):
        raise ReproError(
            f"series length mismatch: {len(measured)} vs {len(reference)}")
    if not measured:
        raise ReproError("series must be non-empty")
    worst = 0.0
    for m, r in zip(measured, reference):
        if m <= 0 or r <= 0:
            raise ReproError("series values must be positive")
        worst = max(worst, abs(math.log(m / r)))
    return math.exp(worst)


def crossover_point(xs: Sequence[float], a: Sequence[float],
                    b: Sequence[float]) -> Optional[Tuple[float, float]]:
    """Where series ``a`` starts beating series ``b`` (linear interp).

    Returns ``(x, value)`` of the first crossing of ``a`` below ``b``,
    or ``None`` if ``a`` never drops below ``b`` (or starts below and
    stays there, in which case ``(xs[0], a[0])``).
    """
    if not (len(xs) == len(a) == len(b)):
        raise ReproError("series must share one length")
    if a[0] < b[0]:
        return (xs[0], a[0])
    for i in range(1, len(xs)):
        if a[i] < b[i]:
            # Interpolate the crossing between i-1 and i.
            da = a[i] - a[i - 1]
            db = b[i] - b[i - 1]
            denom = db - da
            t = (a[i - 1] - b[i - 1]) / denom if denom else 0.0
            x = xs[i - 1] + t * (xs[i] - xs[i - 1])
            value = a[i - 1] + t * da
            return (x, value)
    return None
