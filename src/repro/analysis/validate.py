"""Output validation: sortedness and permutation checks.

Every simulated sort really sorts; these helpers make verifying that
cheap and explicit, both in the test suite and in user code:

>>> import numpy as np
>>> from repro.analysis.validate import verify_sort
>>> verify_sort(np.array([3, 1, 2]), np.array([1, 2, 3]))
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class ValidationError(ReproError):
    """Raised when a sort output fails verification."""


def is_sorted(values: np.ndarray) -> bool:
    """Whether ``values`` is non-decreasing."""
    if values.size <= 1:
        return True
    return bool(np.all(values[:-1] <= values[1:]))


def first_inversion(values: np.ndarray) -> int:
    """Index of the first descending step, or ``-1`` if sorted."""
    if values.size <= 1:
        return -1
    bad = np.flatnonzero(values[:-1] > values[1:])
    return int(bad[0]) if bad.size else -1


def is_permutation(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether ``a`` and ``b`` hold the same multiset of values."""
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    return bool(np.array_equal(np.sort(a), np.sort(b)))


def verify_sort(original: np.ndarray, output: np.ndarray) -> None:
    """Assert ``output`` is a sorted permutation of ``original``.

    Raises :class:`ValidationError` with a pinpointed diagnosis.
    """
    if output.shape != original.shape:
        raise ValidationError(
            f"output has {output.size} elements, input had "
            f"{original.size}")
    inversion = first_inversion(output)
    if inversion >= 0:
        raise ValidationError(
            f"output is not sorted: output[{inversion}] = "
            f"{output[inversion]!r} > output[{inversion + 1}] = "
            f"{output[inversion + 1]!r}")
    if not is_permutation(original, output):
        raise ValidationError(
            "output is sorted but is not a permutation of the input "
            "(keys were lost or invented)")
