"""Analysis of simulated runs: phase breakdowns and derived metrics."""

from repro.analysis.breakdown import PhaseBreakdown, breakdown_of
from repro.analysis.metrics import crossover_point, shape_error, speedup
from repro.analysis.timeline import to_chrome_trace, write_chrome_trace
from repro.analysis.utilization import (
    ActorUtilization,
    load_imbalance,
    utilization_report,
)
from repro.analysis.validate import (
    ValidationError,
    is_permutation,
    is_sorted,
    verify_sort,
)

__all__ = [
    "ActorUtilization",
    "PhaseBreakdown",
    "ValidationError",
    "breakdown_of",
    "crossover_point",
    "is_permutation",
    "is_sorted",
    "load_imbalance",
    "shape_error",
    "speedup",
    "to_chrome_trace",
    "utilization_report",
    "verify_sort",
    "write_chrome_trace",
]
