"""GPU kernel launches: on-device sorting and merging.

Each launch has a functional effect (the NumPy payload is sorted or
merged with the from-scratch primitives of :mod:`repro.gpuprims`) and a
timing effect (simulated time advances by the device's calibrated
rate).  With ``machine.fast_functional`` the functional effect is
computed with NumPy's built-in sort instead — timing is identical, only
the host-side wall-clock cost of big benchmark runs drops.

Key-value variants: passing ``values`` makes the kernel carry a payload
array alongside the keys.  Payload bytes count toward the kernel's
processed volume, so 8-byte payloads roughly triple an int32 sort's
duration — the honest cost of sorting records instead of bare keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import RuntimeApiError
from repro.gpuprims.merge_path import merge_positions, merge_sorted
from repro.gpuprims.radix_lsb import argsort_radix_lsb
from repro.gpuprims.registry import functional_sort
from repro.runtime.buffer import default_pool
from repro.runtime.memcpy import Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine


def _check_values(target: Span, values: Optional[Span]) -> None:
    if values is not None and len(values) != len(target):
        raise RuntimeApiError(
            f"values span has {len(values)} elements, keys span has "
            f"{len(target)}")


def sort_on_device(machine: "Machine", target: Span,
                   primitive: str = "thrust", phase: str = "Sort",
                   values: Optional[Span] = None):
    """Process: sort ``target`` (and optionally ``values``) in place.

    The duration follows the device's calibrated rate for ``primitive``
    (Table 2) and the key width (Section 6.3); payload bytes add to the
    processed volume.
    """
    _check_values(target, values)
    device = target.buffer.device
    view = target.view
    logical = target.nbytes * machine.scale
    if values is not None:
        logical += values.nbytes * machine.scale
    start = machine.env.now
    duration = device.spec.sort_seconds(primitive, logical,
                                        view.dtype.itemsize)
    if device.compute_slowdown != 1.0:
        duration *= device.compute_slowdown
    if machine.obs is not None:
        machine.obs.kernel_launched(device.name, phase, logical, duration,
                                    start)
    if machine.faults is None:
        yield machine.env.timeout(duration)
    else:
        # Race the launch against the device's (potential) hard failure
        # so a GPU dying mid-kernel aborts the launch instead of letting
        # it retire on a corpse.  Healthy machines keep the bare timeout
        # above — bit-identical to the pre-fault engine.
        yield from machine.faults.run_on_device(device, duration)
    if values is None:
        if machine.fast_functional:
            view.sort()
        else:
            functional_sort(primitive)(view, out=view)
    else:
        if machine.fast_functional:
            order = np.argsort(view, kind="stable")
        else:
            order = argsort_radix_lsb(view)
        view[:] = view[order]
        values.view[:] = values.view[order]
    machine.trace.record(phase, device.name, start, bytes=logical)
    return target


def merge_two_on_device(machine: "Machine", target: Span, split: int,
                        phase: str = "Merge",
                        values: Optional[Span] = None):
    """Process: merge the two sorted runs ``target[:split]``/``[split:]``.

    This is the GPU-local merge of the P2P sort's merge phase
    (``thrust::merge`` in the original, Section 5.2).  The merged
    result replaces ``target`` in place; the auxiliary buffer the real
    implementation uses is accounted for by the sorting algorithms,
    which pre-allocate it.  ``values`` payloads are permuted alongside.
    """
    _check_values(target, values)
    device = target.buffer.device
    view = target.view
    if not 0 <= split <= len(view):
        raise ValueError(f"split {split} out of range for {len(view)} elements")
    logical = target.nbytes * machine.scale
    if values is not None:
        logical += values.nbytes * machine.scale
    start = machine.env.now
    duration = device.spec.merge_seconds(logical)
    if device.compute_slowdown != 1.0:
        duration *= device.compute_slowdown
    if machine.obs is not None:
        machine.obs.kernel_launched(device.name, phase, logical, duration,
                                    start)
    if machine.faults is None:
        yield machine.env.timeout(duration)
    else:
        yield from machine.faults.run_on_device(device, duration)
    if split not in (0, len(view)):
        a, b = view[:split], view[split:]
        if values is None:
            # The merge scratch comes from the workspace pool — this
            # models the pre-allocated auxiliary buffer of the real
            # implementation rather than a per-merge allocation.
            with default_pool.borrow(len(view), view.dtype) as merged:
                if machine.fast_functional:
                    pos_a, pos_b = merge_positions(a, b)
                    merged[pos_a] = a
                    merged[pos_b] = b
                else:
                    merge_sorted(a, b, out=merged)
                view[:] = merged
        else:
            payload = values.view
            with default_pool.borrow(len(view), view.dtype) as merged, \
                    default_pool.borrow(len(payload),
                                        payload.dtype) as merged_values:
                pos_a, pos_b = merge_positions(a, b)
                merged[pos_a] = a
                merged[pos_b] = b
                merged_values[pos_a] = payload[:split]
                merged_values[pos_b] = payload[split:]
                view[:] = merged
                payload[:] = merged_values
    machine.trace.record(phase, device.name, start, bytes=logical)
    return target
