"""Multi-hop P2P copies: GPU-relayed store-and-forward transfers.

The paper's Section 7 proposes evaluating multi-hop routing for the P2P
merge phase (after Paul et al.'s MG-Join): on systems where some GPU
pairs lack a direct link (the DELTA D22x), a copy can be forwarded
through intermediate GPUs over NVLink instead of staging through PCIe
3.0 on the host side.

:func:`copy_multihop` implements the classic pipelined relay: the
payload is cut into blocks; each relay double-buffers, so hop ``k`` of
block ``i`` overlaps hop ``k+1`` of block ``i-1``.  Steady-state
throughput approaches the slowest hop's bandwidth — on the DELTA,
``min(48, 24) = 24 GB/s`` for GPU 0 -> 1 -> 3 versus ~9 GB/s host-staged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import RuntimeApiError
from repro.runtime.memcpy import Span, copy_async, span
from repro.runtime.sync import Semaphore

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine

#: Blocks per relayed transfer; more blocks pipeline better but pay
#: more per-copy launch overheads.
DEFAULT_BLOCKS = 8

#: Staging slots per relay GPU (double buffering).
_RELAY_SLOTS = 2


def relay_gpu_ids(machine: "Machine", src_gpu: int,
                  dst_gpu: int) -> Optional[List[int]]:
    """GPU ids of the relays between ``src_gpu`` and ``dst_gpu``.

    ``None`` when no multi-hop path exists (or none is needed because
    a direct link is available).
    """
    topology = machine.spec.topology
    path = topology.gpu_relay_path(machine.spec.gpu_name(src_gpu),
                                   machine.spec.gpu_name(dst_gpu))
    if path is None:
        return None
    return [int(name[3:]) for name in path[1:-1]]


def multihop_rate_estimate(machine: "Machine", src_gpu: int,
                           dst_gpu: int) -> Optional[float]:
    """Steady-state bytes/s of the relayed path, or ``None`` if absent."""
    topology = machine.spec.topology
    path = topology.gpu_relay_path(machine.spec.gpu_name(src_gpu),
                                   machine.spec.gpu_name(dst_gpu))
    if path is None:
        return None
    slowest = float("inf")
    for a, b in zip(path, path[1:]):
        slowest = min(slowest, topology.route(a, b).bottleneck)
    return slowest


def copy_multihop(machine: "Machine", dst: Span, src: Span,
                  relays: Sequence[int], blocks: int = DEFAULT_BLOCKS,
                  phase: Optional[str] = None):
    """Process: copy ``src`` to ``dst`` through relay GPUs, pipelined.

    ``relays`` is the ordered list of intermediate GPU ids.  Each relay
    allocates two block-sized staging buffers for the duration of the
    copy; the per-hop copies of consecutive blocks overlap.  Falls back
    to a plain :func:`~repro.runtime.memcpy.copy_async` when ``relays``
    is empty.
    """
    if len(dst) != len(src):
        raise RuntimeApiError(
            f"copy size mismatch: dst has {len(dst)} elements, "
            f"src has {len(src)}")
    if not relays:
        result = yield from copy_async(machine, dst, src, phase=phase)
        return result
    if blocks < 1:
        raise RuntimeApiError(f"blocks must be >= 1, got {blocks}")

    env = machine.env
    total = len(src)
    blocks = min(blocks, total)
    block_size = -(-total // blocks)
    dtype = src.buffer.data.dtype
    start_time = env.now

    # Two staging slots per relay; a semaphore guards slot reuse.
    stagings = []
    for relay in relays:
        device = machine.device(relay)
        slots = [device.alloc(block_size, dtype,
                              label=f"relay{relay}_slot{i}")
                 for i in range(_RELAY_SLOTS)]
        stagings.append((slots, Semaphore(env, _RELAY_SLOTS)))

    def forward_block(index: int, lo: int, hi: int):
        """Move one block along the whole relay chain."""
        length = hi - lo
        acquired = []
        try:
            current = Span(src.buffer, src.start + lo, src.start + hi)
            for slots, guard in stagings:
                yield guard.acquire()
                acquired.append(guard)
                slot = slots[index % _RELAY_SLOTS]
                yield from copy_async(machine, span(slot, 0, length),
                                      current, phase=phase)
                current = span(slot, 0, length)
            yield from copy_async(
                machine, Span(dst.buffer, dst.start + lo, dst.start + hi),
                current, phase=phase)
        finally:
            for guard in acquired:
                guard.release()

    procs = []
    for index in range(blocks):
        lo = index * block_size
        hi = min(total, lo + block_size)
        if lo >= hi:
            break
        procs.append(env.process(forward_block(index, lo, hi)))
    yield env.all_of(procs)

    for slots, _guard in stagings:
        for slot in slots:
            slot.free()
    if phase is not None:
        machine.trace.record(f"{phase}(relay)",
                             machine.spec.gpu_name(relays[0]), start_time,
                             bytes=src.nbytes * machine.scale)
    return dst
