"""Background workloads: traffic that co-runs with a sort.

Sorting rarely owns a database machine: scans stream through host
memory, other operators copy to accelerators.  The paper assumes
exclusive use (Section 6: "assuming exclusive system usage"); these
helpers quantify what that assumption is worth by injecting competing
traffic into the same flow network before a sort runs.

The injected work shares links, switches, memory controllers and copy
engines with the sort through the ordinary max-min fair allocation —
no special contention code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import RuntimeApiError
from repro.runtime.memcpy import copy_async, span
from repro.sim.resources import Direction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine


def start_memory_scan(machine: "Machine", bandwidth: float,
                      numa: int = 0) -> None:
    """Occupy ``bandwidth`` bytes/s of one NUMA node's memory, forever.

    Models a co-running scan-heavy query: a rate-capped flow that reads
    and writes the node's memory until the simulation ends.  Start it
    *before* running a sort on the same machine.
    """
    if bandwidth <= 0:
        raise RuntimeApiError(f"bandwidth must be positive, got {bandwidth}")
    node = machine.spec.topology.node(machine.spec.numa_node_name(numa))
    route = ((node.memory, Direction.FWD), (node.memory, Direction.REV))
    # Effectively infinite: the flow outlives any sort.
    machine.net.start_flow(route, 1e24, rate_cap=bandwidth,
                           label=f"background-scan@numa{numa}")


def start_copy_stream(machine: "Machine", gpu_id: int,
                      chunk_elements: int = 250_000,
                      dtype=np.int32, numa: int = 0,
                      direction: str = "htod",
                      count: Optional[int] = None) -> None:
    """Launch a looping CPU-GPU copy stream on one GPU.

    Models another operator shipping data to/from an accelerator while
    the sort runs.  Each iteration copies one pinned chunk; the loop
    runs ``count`` times (forever by default — it simply stops mattering
    once the machine's main process completes).
    """
    if direction not in ("htod", "dtoh"):
        raise RuntimeApiError(f"direction must be htod/dtoh, got {direction}")
    host = machine.host_buffer(np.zeros(chunk_elements, dtype), numa=numa)
    device_buffer = machine.device(gpu_id).alloc(chunk_elements, dtype,
                                                 label=f"bg{gpu_id}")

    def loop():
        done = 0
        while count is None or done < count:
            if direction == "htod":
                yield from copy_async(machine, span(device_buffer),
                                      span(host))
            else:
                yield from copy_async(machine, span(host),
                                      span(device_buffer))
            done += 1

    machine.env.process(loop())
