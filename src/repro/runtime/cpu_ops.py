"""Host-side compute operations: CPU sorting and multiway merging.

CPU compute is modelled as *flows through the NUMA node's memory
resource* rather than plain delays: a merge reads and writes every byte
through the same memory controller the GPU copy engines use, so running
it concurrently with CPU-GPU transfers slows both sides down.  This is
precisely the contention the paper observes for eager merging
(Section 6.2: "the transfers and the CPU merge compete for host memory
bandwidth") — here it emerges from the shared-resource model instead of
being hard-coded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.cpuprims.multiway_merge import (
    multiway_merge,
    multiway_merge_with_values,
)
from repro.cpuprims.std_sorts import cpu_functional_sort
from repro.errors import RuntimeApiError
from repro.runtime.buffer import HostBuffer
from repro.sim.resources import Direction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine


def _memory_route(machine: "Machine", numa: int):
    node = machine.spec.topology.node(machine.spec.numa_node_name(numa))
    memory = node.memory
    return ((memory, Direction.FWD), (memory, Direction.REV))


def cpu_sort(machine: "Machine", target: HostBuffer,
             primitive: Optional[str] = None, phase: str = "CPUSort"):
    """Process: sort a host buffer in place with a CPU primitive.

    ``primitive`` defaults to the platform's best baseline (PARADIS on
    all three systems for large data, Section 6).  Timing: a flow of
    the buffer's logical size through its NUMA node's memory, capped at
    the primitive's calibrated rate.
    """
    cpu = machine.spec.cpu
    if primitive is None:
        primitive = cpu.best_sort_primitive()
    rate = cpu.sort_rate(primitive)
    logical = target.nbytes * machine.scale
    start = machine.env.now
    flow = machine.net.start_flow(_memory_route(machine, target.numa),
                                  logical, rate_cap=rate,
                                  label=f"cpu-sort:{primitive}")
    yield flow.done
    if machine.fast_functional:
        target.data.sort()
    else:
        cpu_functional_sort(primitive)(target.data, out=target.data)
    machine.trace.record(phase, f"cpu{target.numa}", start, bytes=logical)
    return target


def cpu_multiway_merge(machine: "Machine", out: np.ndarray,
                       runs: Sequence[np.ndarray], numa: int = 0,
                       phase: str = "Merge",
                       values_out: Optional[np.ndarray] = None,
                       value_runs: Optional[Sequence[np.ndarray]] = None):
    """Process: k-way merge sorted ``runs`` into ``out`` on the CPU.

    Timing: a flow of the output's logical size through NUMA node
    ``numa``'s memory in both directions, capped at the calibrated
    gnu_parallel multiway-merge rate.  The merge occupies the memory
    controller for its whole duration, so concurrent GPU copies share
    the bandwidth (the Section 6.2 effect).

    Pass ``values_out``/``value_runs`` to merge key-value records;
    payload bytes add to the merged volume.
    """
    total = sum(run.size for run in runs)
    if total != out.size:
        raise RuntimeApiError(
            f"merge output size {out.size} != sum of runs {total}")
    if (values_out is None) != (value_runs is None):
        raise RuntimeApiError(
            "values_out and value_runs must be passed together")
    logical = out.nbytes * machine.scale
    if values_out is not None:
        logical += values_out.nbytes * machine.scale
    start = machine.env.now
    rate = machine.spec.cpu.multiway_merge_rate_for(len(runs))
    flow = machine.net.start_flow(_memory_route(machine, numa), logical,
                                  rate_cap=rate, label="cpu-multiway-merge")
    yield flow.done
    if runs:
        if values_out is None:
            if machine.fast_functional:
                # Concatenate straight into the output buffer and sort
                # there — no intermediate array (runs never alias out).
                offset = 0
                for run in runs:
                    out[offset:offset + run.size] = run
                    offset += run.size
                out.sort()
            else:
                multiway_merge(runs, out=out)
        else:
            multiway_merge_with_values(runs, value_runs, out=out,
                                       values_out=values_out)
    machine.trace.record(phase, f"cpu{numa}", start, bytes=logical)
    return out
