"""Asynchronous copies between host and device buffers.

:func:`copy_async` is the single entry point for every transfer kind the
paper exercises — HtoD, DtoH, host-staged and direct P2P, and
device-local copies.  It spawns a flow over the routed path (charging
simulated time under bandwidth sharing) and moves the NumPy payload on
completion.

All copy process functions are generators meant to run under
``machine.env.process`` (or ``yield from`` inside another process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.errors import (
    CopyTimeoutError,
    RuntimeApiError,
    TopologyError,
    TransientTransferError,
)
from repro.hw import calibration as cal
from repro.runtime.buffer import DeviceBuffer, HostBuffer
from repro.sim.resources import Direction

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine

Buffer = Union[HostBuffer, DeviceBuffer]


@dataclass(frozen=True)
class Span:
    """An element range of a buffer, the unit all copies operate on."""

    buffer: Buffer
    start: int
    stop: int

    @property
    def view(self) -> np.ndarray:
        """Writable NumPy view of the range."""
        return self.buffer.data[self.start:self.stop]

    @property
    def nbytes(self) -> int:
        """Physical size of the range in bytes."""
        return (self.stop - self.start) * self.buffer.data.dtype.itemsize

    def __len__(self) -> int:
        return self.stop - self.start


def span(buffer: Buffer, start: int = 0, stop: Optional[int] = None) -> Span:
    """Construct a :class:`Span` (``stop`` defaults to the buffer end)."""
    stop = len(buffer.data) if stop is None else stop
    if not 0 <= start <= stop <= len(buffer.data):
        raise RuntimeApiError(
            f"span [{start}:{stop}) out of range for buffer of "
            f"{len(buffer.data)} elements")
    return Span(buffer, start, stop)


def _node_of(machine: "Machine", buffer: Buffer) -> str:
    if isinstance(buffer, HostBuffer):
        return machine.spec.numa_node_name(buffer.numa)
    if isinstance(buffer, DeviceBuffer):
        return buffer.device.name
    raise RuntimeApiError(f"not a buffer: {buffer!r}")


def _copy_kind(src: Buffer, dst: Buffer) -> str:
    src_gpu = isinstance(src, DeviceBuffer)
    dst_gpu = isinstance(dst, DeviceBuffer)
    if src_gpu and dst_gpu:
        return "DtoD" if src.device is dst.device else "PtoP"
    if src_gpu:
        return "DtoH"
    if dst_gpu:
        return "HtoD"
    return "HtoH"


def copy_async(machine: "Machine", dst: Span, src: Span,
               phase: Optional[str] = None):
    """Process: copy ``src`` into ``dst`` (sizes and dtypes must match).

    Timing model per copy kind:

    * **HtoD / DtoH / HtoH** — a flow over the routed path; pageable
      host buffers are additionally capped at
      :data:`~repro.hw.calibration.PAGEABLE_PENALTY` times the path
      bottleneck (Section 4.2); the GPU-side DMA engine of the matching
      direction is held for the duration.
    * **PtoP, direct** — a flow over the P2P link / NVSwitch ports,
      holding the source's outbound and the destination's inbound
      engine.
    * **PtoP, host-staged** — same, but rate-capped at the system's
      ``p2p_traverse_efficiency`` times the path's static bottleneck
      (Figures 5a/6a: 33 GB/s on the AC922, 9 GB/s on the DELTA).
    * **DtoD on one GPU** — kernel-driven local copy at the device's
      ``local_copy_rate``, crossing only the GPU's own memory; no DMA
      engine is held, so it overlaps with P2P traffic (Section 5.2).

    Under an installed :class:`~repro.faults.plan.FaultPlan` the routed
    kinds run the machine's :class:`~repro.faults.policy.ResiliencePolicy`:
    transient failures retry with exponential backoff, an optional
    watchdog bounds each attempt, and routes detour around down links
    (see :mod:`repro.faults`).  Without a plan none of that machinery is
    touched and simulated timing is bit-identical to the pre-fault
    engine.
    """
    if len(dst) != len(src):
        raise RuntimeApiError(
            f"copy size mismatch: dst has {len(dst)} elements, "
            f"src has {len(src)}")
    if dst.buffer.data.dtype != src.buffer.data.dtype:
        raise RuntimeApiError(
            f"copy dtype mismatch: {dst.buffer.data.dtype} vs "
            f"{src.buffer.data.dtype}")
    if len(src) == 0:
        return None

    env = machine.env
    kind = _copy_kind(src.buffer, dst.buffer)
    logical = src.nbytes * machine.scale
    start_time = env.now
    # Reserve the copy's span id up front so the flows it spawns can be
    # parented beneath it on the timeline while the copy is in flight.
    span_id = machine.trace.allocate_id() if phase is not None else None
    # Snapshot the payload when the copy is issued: the 3n pipeline's
    # in-place transfer swap overwrites the source region with the next
    # inbound chunk while this copy drains it (Section 5.3, Figure 10).
    payload = src.view.copy()

    if machine.faults is not None:
        # New copies touching a hard-failed GPU (or the host memory of
        # a dead cluster node) raise immediately: the memory is gone,
        # so neither reading from nor writing to it can be retried into
        # success.
        for buffer in (src.buffer, dst.buffer):
            if isinstance(buffer, DeviceBuffer):
                machine.faults.check_device(buffer.device)
            elif isinstance(buffer, HostBuffer):
                machine.faults.check_host(buffer.numa)

    if kind == "DtoD":
        device = src.buffer.device
        yield env.timeout(device.spec.launch_overhead_s)
        memory = machine.spec.topology.node(device.name).memory
        route_hops = ((memory, Direction.FWD), (memory, Direction.REV))
        rate = device.spec.local_copy_rate
        if device.compute_slowdown != 1.0:
            # Straggler GPUs drive their kernel-driven local copies at
            # the same reduced speed as their kernels.
            rate /= device.compute_slowdown
        flow = machine.net.start_flow(
            route_hops, logical, rate_cap=rate,
            label=f"DtoD@{device.name}")
        if machine.obs is not None and span_id is not None:
            machine.obs.attach_flow(flow, span_id)
        yield flow.done
    else:
        yield from _routed_copy(machine, dst, src, kind, logical,
                                span_id=span_id)

    dst.view[:] = payload
    if phase is not None:
        actor = _node_of(machine, dst.buffer if kind != "DtoH"
                         else src.buffer)
        machine.trace.record(phase, actor, start_time, bytes=logical,
                             id=span_id)
    return dst


def _resolve_route(machine: "Machine", src_node: str, dst_node: str):
    """Process: the route for a copy, honoring down links.

    The healthy path is a straight cache hit.  When the direct route
    crosses a link the fault injector took down, try a route avoiding
    every down resource (a GPU-GPU detour through the host keeps its
    ``host_traversing`` flag, so the caller's ``p2p_traverse_efficiency``
    cap applies — graceful degradation, not teleportation).  With no
    detour (or re-routing disabled), park until the first blocking link
    is restored and resolve again.

    Quarantined links (health score under the policy's low watermark —
    flapping links, mostly) are avoided the same way, but only ever
    advisorily: a copy whose sole route crosses a quarantined-but-up
    link takes it rather than park, and a copy blocked by a genuinely
    down link still reroutes over quarantined links when nothing
    cleaner exists.
    """
    topology = machine.spec.topology
    faults = machine.faults
    env = machine.env
    while True:
        route = topology.route(src_node, dst_node)
        if faults is None or (not faults.down_ids
                              and not faults.link_health):
            return route
        down = faults.down_ids
        quarantined = faults.quarantined_ids()
        blocked = [id(resource) for resource, _direction in route.hops
                   if id(resource) in down]
        shunned = any(id(resource) in quarantined
                      for resource, _direction in route.hops)
        if not blocked and not shunned:
            return route
        if machine.resilience.reroute:
            try:
                detour = topology.route(src_node, dst_node,
                                        avoid=frozenset(down)
                                        | quarantined)
            except TopologyError:
                detour = None
            if detour is None and blocked and quarantined:
                # Quarantine is advisory: never let it turn a routable
                # copy into a parked one.
                try:
                    detour = topology.route(src_node, dst_node,
                                            avoid=frozenset(down))
                except TopologyError:
                    detour = None
            if detour is not None:
                machine.resilience_stats.reroutes += 1
                return detour
        if not blocked:
            # Only quarantined (but up) links in the way and no clean
            # detour: take the direct route rather than wait on links
            # that are not actually down.
            return route
        parked_at = env.now
        yield faults.restored_event(blocked[0])
        machine.resilience_stats.link_wait_s += env.now - parked_at


def _jitter_draw(machine: "Machine", policy) -> float:
    """One seeded jitter draw, or 0 when jitter is off (no stream use).

    Guarded so the default (``backoff_jitter == 0``) policy never
    consumes a random number — legacy faulted timelines replay
    bit-identically whether or not jitter support exists.
    """
    if policy.backoff_jitter and machine.faults is not None:
        return machine.faults.backoff_jitter_draw()
    return 0.0


def _routed_copy(machine: "Machine", dst: Span, src: Span, kind: str,
                 logical: float, span_id: Optional[int] = None):
    """Process: the engine-holding, route-crossing copy with resilience.

    Structure: acquire the DMA engines once (held across retries, like
    a real driver holding its copy queue), then attempt the transfer
    under the machine's :class:`~repro.faults.policy.ResiliencePolicy` —
    re-resolving the route per attempt, arming the optional watchdog,
    and backing off exponentially after transient failures.  Engines are
    released exactly as acquired, even when an interrupt lands between
    the two acquisitions.
    """
    env = machine.env
    src_node = _node_of(machine, src.buffer)
    dst_node = _node_of(machine, dst.buffer)
    policy = machine.resilience
    stats = machine.resilience_stats
    faults = machine.faults

    engines = []
    if isinstance(src.buffer, DeviceBuffer):
        engines.append(src.buffer.device.engine_out)
    if isinstance(dst.buffer, DeviceBuffer):
        engines.append(dst.buffer.device.engine_in)
    acquired = []
    try:
        for engine in engines:
            ticket = engine.acquire()
            try:
                yield ticket
            except BaseException:
                # Interrupted/failed between acquisitions: withdraw the
                # ticket (queued or granted) so no slot leaks, and leave
                # engines acquired so far to the finally clause.
                engine.cancel(ticket)
                raise
            acquired.append(engine)

        attempt = 0
        while True:
            if faults is not None:
                # A device (or whole node) can die between retry
                # attempts (backoff) — re-check before resubmitting so
                # the copy fails with the non-retryable fault error,
                # not another flow.
                for buffer in (src.buffer, dst.buffer):
                    if isinstance(buffer, DeviceBuffer):
                        faults.check_device(buffer.device)
                    elif isinstance(buffer, HostBuffer):
                        faults.check_host(buffer.numa)
            route = yield from _resolve_route(machine, src_node, dst_node)
            rate_cap = None
            if kind == "PtoP" and route.host_traversing:
                rate_cap = (machine.spec.p2p_traverse_efficiency
                            * route.bottleneck)
            for buffer in (src.buffer, dst.buffer):
                if isinstance(buffer, HostBuffer) and not buffer.pinned:
                    pageable = cal.PAGEABLE_PENALTY * route.bottleneck
                    rate_cap = (pageable if rate_cap is None
                                else min(rate_cap, pageable))
            # Fixed cost before the first byte moves: the launch
            # overhead of the involved devices plus one traversal
            # latency per hop of the route (pre-summed on the route).
            overhead = route.latency_s
            launch = 0.0
            for buffer in (src.buffer, dst.buffer):
                if isinstance(buffer, DeviceBuffer):
                    launch = max(launch,
                                 buffer.device.spec.launch_overhead_s)
            overhead += launch
            if overhead:
                yield env.timeout(overhead)
            flow = machine.net.start_flow(
                route.hops, logical, rate_cap=rate_cap,
                label=f"{kind}:{src_node}->{dst_node}")
            if machine.obs is not None and span_id is not None:
                machine.obs.attach_flow(flow, span_id)
            if faults is not None:
                faults.on_flow_started(flow)
            try:
                if policy.copy_timeout_s is None:
                    yield flow.done
                else:
                    deadline = env.timeout(policy.copy_timeout_s)
                    yield env.any_of([flow.done, deadline])
                    if not flow.done.triggered:
                        machine.net.abort_flow(flow)
                        stats.timeouts += 1
                        raise CopyTimeoutError(
                            f"copy {flow.label!r} exceeded the "
                            f"{policy.copy_timeout_s}s watchdog")
                return
            except TransientTransferError:
                if flow.active:
                    machine.net.abort_flow(flow)
                attempt += 1
                if attempt > policy.max_retries:
                    raise
                stats.retries += 1
                yield env.timeout(policy.backoff_s(
                    attempt, _jitter_draw(machine, policy)))
            except CopyTimeoutError:
                attempt += 1
                if not policy.retry_on_timeout or attempt > policy.max_retries:
                    raise
                stats.retries += 1
                yield env.timeout(policy.backoff_s(
                    attempt, _jitter_draw(machine, policy)))
            except BaseException:
                # Interrupt or any non-retryable failure: take the flow
                # out of the network before unwinding.
                if flow.active:
                    machine.net.abort_flow(flow)
                raise
    finally:
        for engine in reversed(acquired):
            engine.release()


def copy_all(machine: "Machine", pairs, phase: Optional[str] = None):
    """Process: run several copies concurrently; done when all finish.

    ``pairs`` is an iterable of ``(dst_span, src_span)``.
    """
    procs = [machine.env.process(copy_async(machine, dst, src, phase=phase))
             for dst, src in pairs]
    if procs:
        yield machine.env.all_of(procs)
    return None
