"""CUDA-stream-like serial work queues.

A :class:`Stream` serializes the operations submitted to it while
different streams proceed concurrently — the semantics the paper's
implementations rely on to overlap copies with compute (Sections 5.2,
5.3).  Implementation: each submission chains on the completion of the
previous one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.engine import Event, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine


class Stream:
    """A FIFO queue of simulation processes."""

    def __init__(self, machine: "Machine", name: str = ""):
        self.machine = machine
        self.name = name or f"stream{id(self):x}"
        self._tail: Optional[Event] = None
        self._depth = 0

    def submit(self, operation: Generator) -> Process:
        """Enqueue an operation; it starts when the previous one ends.

        Returns the process of the operation (an event; its value is
        the operation's return value).
        """
        previous = self._tail
        self._depth += 1
        obs = self.machine.obs
        if obs is not None:
            obs.stream_submitted(self.name, self._depth,
                                 self.machine.env.now)
        process = self.machine.env.process(
            self._run_after(previous, operation))
        self._tail = process
        return process

    def _run_after(self, previous: Optional[Event], operation: Generator):
        if previous is not None:
            yield previous
        try:
            result = yield from operation
        finally:
            self._depth -= 1
            obs = self.machine.obs
            if obs is not None:
                obs.stream_drained(self.name, self._depth)
        return result

    def synchronize(self) -> Event:
        """Event that succeeds when everything submitted so far is done."""
        if self._tail is not None:
            return self._tail
        done = self.machine.env.event()
        done.succeed()
        return done
