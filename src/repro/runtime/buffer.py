"""Host and device memory buffers.

Buffers pair a NumPy array (the functional payload) with placement
metadata the simulator needs (which NUMA node / GPU, pinned or not).
With a machine ``scale`` factor > 1, an array of ``n`` physical bytes
*represents* ``n * scale`` logical bytes; all timing and capacity
accounting uses logical bytes while correctness is verified on the
physical data (see DESIGN.md, "Reproduction strategy").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import RuntimeApiError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.device import Device


class HostBuffer:
    """A host-memory array living on one NUMA node.

    ``pinned`` buffers are page-locked: the CUDA driver DMA-copies them
    directly.  Pageable buffers pay the staging penalty of
    :data:`repro.hw.calibration.PAGEABLE_PENALTY` (Section 4.2).
    """

    def __init__(self, data: np.ndarray, numa: int = 0, pinned: bool = True):
        if data.ndim != 1:
            raise RuntimeApiError("buffers must wrap one-dimensional arrays")
        self.data = data
        self.numa = numa
        self.pinned = pinned

    @property
    def nbytes(self) -> int:
        """Physical payload size in bytes."""
        return self.data.nbytes

    @property
    def dtype(self) -> np.dtype:
        """Element type of the payload."""
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        kind = "pinned" if self.pinned else "pageable"
        return (f"<HostBuffer {len(self.data)} x {self.data.dtype} "
                f"on numa{self.numa} ({kind})>")


class DeviceBuffer:
    """A pre-allocated device-memory array on one GPU.

    Sorting implementations pre-allocate all device memory up front
    (Section 5.1: dynamic allocations are expensive — 150 ms for 8 GB on
    the AC922); the allocator in :class:`repro.runtime.device.Device`
    enforces the capacity limit in logical bytes.

    ``valid`` tracks how many leading elements currently hold meaningful
    data; slicing helpers hand out views for kernels and copies.
    """

    def __init__(self, device: "Device", data: np.ndarray, label: str = ""):
        if data.ndim != 1:
            raise RuntimeApiError("buffers must wrap one-dimensional arrays")
        self.device = device
        self._data = data
        self.label = label
        self.valid = 0
        self.released = False

    @property
    def data(self) -> np.ndarray:
        """The payload array; raises after :meth:`free` (use-after-free)."""
        if self.released:
            raise RuntimeApiError(
                f"use after free: {self.label or 'device buffer'} on "
                f"{self.device.name} was already released")
        return self._data

    @property
    def capacity(self) -> int:
        """Capacity in elements."""
        return len(self._data)

    @property
    def nbytes(self) -> int:
        """Physical capacity in bytes."""
        return self._data.nbytes

    @property
    def dtype(self) -> np.dtype:
        """Element type of the payload."""
        return self._data.dtype

    def view(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """A writable element-range view of the payload."""
        stop = self.capacity if stop is None else stop
        if not 0 <= start <= stop <= self.capacity:
            raise RuntimeApiError(
                f"view [{start}:{stop}) out of range for capacity "
                f"{self.capacity}")
        return self.data[start:stop]

    def valid_view(self) -> np.ndarray:
        """View of the currently valid prefix."""
        return self.data[:self.valid]

    def free(self) -> None:
        """Return this buffer's reservation to the device allocator."""
        self.device._release(self)
        self.released = True

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return (f"<DeviceBuffer {self.label or hex(id(self))} "
                f"{self.capacity} x {self.dtype} on {self.device.name}>")
