"""Host and device memory buffers, and the functional workspace pool.

Buffers pair a NumPy array (the functional payload) with placement
metadata the simulator needs (which NUMA node / GPU, pinned or not).
With a machine ``scale`` factor > 1, an array of ``n`` physical bytes
*represents* ``n * scale`` logical bytes; all timing and capacity
accounting uses logical bytes while correctness is verified on the
physical data (see DESIGN.md, "Reproduction strategy").

:class:`WorkspacePool` recycles the *host-side scratch arrays* of the
functional kernel layer (radix double buffers, merge-tree ping-pong
buffers, staging runs of the sorts).  It has no timing effect — pooled
arrays model the pre-allocated auxiliary memory the paper's
implementations hold anyway (Section 5.1: dynamic allocation is
expensive), so reusing them only cuts host wall-clock, never simulated
time.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

import numpy as np

from repro.errors import PoolError, QuotaExceededError, RuntimeApiError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.device import Device


@dataclass(frozen=True)
class PoolStats:
    """Snapshot of one :class:`WorkspacePool`'s memory accounting.

    ``borrowed_bytes``/``free_bytes`` break down by dtype string (the
    per-dtype free lists); the tenancy quotas of :mod:`repro.serve` and
    the service metrics read these without touching pool internals.
    """

    borrowed_bytes: Dict[str, int]
    free_bytes: Dict[str, int]
    hits: int
    misses: int
    quota_bytes: Optional[int]

    @property
    def total_borrowed(self) -> int:
        """Bytes currently out on loan, all dtypes."""
        return sum(self.borrowed_bytes.values())

    @property
    def total_free(self) -> int:
        """Bytes currently parked in the free lists, all dtypes."""
        return sum(self.free_bytes.values())


class WorkspacePool:
    """Recycler for one-dimensional NumPy scratch arrays.

    ``take(n, dtype)`` returns a length-``n`` view of a cached base
    array of at least ``n`` elements (allocating one on a miss);
    ``give`` returns the view's base to the pool.  :meth:`borrow` wraps
    the pair as a context manager.  Views are uninitialised on take —
    callers must fully write before reading, exactly like ``np.empty``.

    The pool is deliberately simple: per-dtype free lists kept sorted by
    size, capped at :data:`MAX_CACHED_PER_DTYPE` bases each so repeated
    large sorts cannot accumulate unbounded memory.  Single-threaded by
    design, like the simulator it serves.

    Ownership is tracked: giving a view back twice, or giving it to a
    pool it was not taken from, raises a typed :class:`PoolError`
    instead of silently corrupting the free list (the same base handed
    out to two borrowers).  ``quota_bytes`` optionally caps the bytes a
    pool may have out on loan — the per-tenant isolation mechanism of
    :mod:`repro.serve` — raising :class:`QuotaExceededError` on a take
    that would exceed it.
    """

    #: Free bases kept per dtype; the smallest are evicted beyond this.
    MAX_CACHED_PER_DTYPE = 8

    def __init__(self, quota_bytes: Optional[int] = None,
                 name: str = "") -> None:
        if quota_bytes is not None and quota_bytes < 0:
            raise RuntimeApiError(
                f"quota_bytes must be >= 0, got {quota_bytes}")
        self._free: Dict[str, List[np.ndarray]] = {}
        #: Bases currently out on loan, by ``id(base)``.
        self._out: Dict[int, np.ndarray] = {}
        self.quota_bytes = quota_bytes
        self.name = name
        self.hits = 0
        self.misses = 0

    @property
    def borrowed_bytes(self) -> int:
        """Bytes currently out on loan."""
        return sum(base.nbytes for base in self._out.values())

    def take(self, n: int, dtype) -> np.ndarray:
        """A writable, uninitialised length-``n`` view from the pool."""
        if n < 0:
            raise RuntimeApiError(f"cannot take {n} elements")
        dtype = np.dtype(dtype)
        need = max(n, 1) * dtype.itemsize
        if (self.quota_bytes is not None
                and self.borrowed_bytes + need > self.quota_bytes):
            label = f" {self.name!r}" if self.name else ""
            raise QuotaExceededError(
                f"workspace pool{label}: taking {need} bytes would put "
                f"{self.borrowed_bytes + need} bytes on loan, over the "
                f"{self.quota_bytes}-byte quota")
        bucket = self._free.get(dtype.str)
        if bucket:
            # Smallest sufficient base (list is sorted by size).
            for i, base in enumerate(bucket):
                if base.size >= n:
                    bucket.pop(i)
                    self.hits += 1
                    self._out[id(base)] = base
                    return base[:n]
        self.misses += 1
        base = np.empty(max(n, 1), dtype=dtype)
        self._out[id(base)] = base
        return base[:n]

    def give(self, view: np.ndarray) -> None:
        """Return an array obtained from :meth:`take` to the pool."""
        base = view if view.base is None else view.base
        if not isinstance(base, np.ndarray) or base.ndim != 1:
            raise RuntimeApiError(
                "workspace pool only recycles views of one-dimensional "
                "arrays")
        if self._out.pop(id(base), None) is None:
            label = f" {self.name!r}" if self.name else ""
            if any(cached is base for bucket in self._free.values()
                   for cached in bucket):
                raise PoolError(
                    f"double release: this {base.size} x {base.dtype} "
                    f"workspace is already back in pool{label}")
            raise PoolError(
                f"foreign release: this {base.size} x {base.dtype} array "
                f"was not taken from pool{label} (cross-pool give, or "
                "never borrowed)")
        bucket = self._free.setdefault(base.dtype.str, [])
        index = 0
        while index < len(bucket) and bucket[index].size < base.size:
            index += 1
        bucket.insert(index, base)
        if len(bucket) > self.MAX_CACHED_PER_DTYPE:
            # Drop the smallest base: large workspaces are the ones
            # worth keeping warm.
            bucket.pop(0)

    @contextmanager
    def borrow(self, n: int, dtype) -> Iterator[np.ndarray]:
        """``with pool.borrow(n, dtype) as scratch: ...``"""
        view = self.take(n, dtype)
        try:
            yield view
        finally:
            self.give(view)

    def stats(self) -> PoolStats:
        """Borrowed/free byte accounting (per dtype) plus hit counters."""
        borrowed: Dict[str, int] = {}
        for base in self._out.values():
            key = base.dtype.str
            borrowed[key] = borrowed.get(key, 0) + base.nbytes
        free = {key: sum(base.nbytes for base in bucket)
                for key, bucket in self._free.items() if bucket}
        return PoolStats(borrowed_bytes=borrowed, free_bytes=free,
                         hits=self.hits, misses=self.misses,
                         quota_bytes=self.quota_bytes)

    def clear(self) -> None:
        """Drop every cached base (tests and memory-pressure hooks).

        Outstanding loans stay tracked: views already taken can still be
        given back afterwards.
        """
        self._free.clear()

    @property
    def cached_bytes(self) -> int:
        """Total bytes currently parked in the pool."""
        return sum(base.nbytes for bucket in self._free.values()
                   for base in bucket)


#: Process-wide pool shared by the functional kernels and the sorts.
default_pool = WorkspacePool()


class HostBuffer:
    """A host-memory array living on one NUMA node.

    ``pinned`` buffers are page-locked: the CUDA driver DMA-copies them
    directly.  Pageable buffers pay the staging penalty of
    :data:`repro.hw.calibration.PAGEABLE_PENALTY` (Section 4.2).
    """

    def __init__(self, data: np.ndarray, numa: int = 0, pinned: bool = True):
        if data.ndim != 1:
            raise RuntimeApiError("buffers must wrap one-dimensional arrays")
        self.data = data
        self.numa = numa
        self.pinned = pinned

    @property
    def nbytes(self) -> int:
        """Physical payload size in bytes."""
        return self.data.nbytes

    @property
    def dtype(self) -> np.dtype:
        """Element type of the payload."""
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        kind = "pinned" if self.pinned else "pageable"
        return (f"<HostBuffer {len(self.data)} x {self.data.dtype} "
                f"on numa{self.numa} ({kind})>")


class DeviceBuffer:
    """A pre-allocated device-memory array on one GPU.

    Sorting implementations pre-allocate all device memory up front
    (Section 5.1: dynamic allocations are expensive — 150 ms for 8 GB on
    the AC922); the allocator in :class:`repro.runtime.device.Device`
    enforces the capacity limit in logical bytes.

    ``valid`` tracks how many leading elements currently hold meaningful
    data; slicing helpers hand out views for kernels and copies.
    """

    def __init__(self, device: "Device", data: np.ndarray, label: str = ""):
        if data.ndim != 1:
            raise RuntimeApiError("buffers must wrap one-dimensional arrays")
        self.device = device
        self._data = data
        self.label = label
        self.valid = 0
        self.released = False

    @property
    def data(self) -> np.ndarray:
        """The payload array; raises after :meth:`free` (use-after-free)."""
        if self.released:
            raise RuntimeApiError(
                f"use after free: {self.label or 'device buffer'} on "
                f"{self.device.name} was already released")
        return self._data

    @property
    def capacity(self) -> int:
        """Capacity in elements."""
        return len(self._data)

    @property
    def nbytes(self) -> int:
        """Physical capacity in bytes."""
        return self._data.nbytes

    @property
    def dtype(self) -> np.dtype:
        """Element type of the payload."""
        return self._data.dtype

    def view(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """A writable element-range view of the payload."""
        stop = self.capacity if stop is None else stop
        if not 0 <= start <= stop <= self.capacity:
            raise RuntimeApiError(
                f"view [{start}:{stop}) out of range for capacity "
                f"{self.capacity}")
        return self.data[start:stop]

    def valid_view(self) -> np.ndarray:
        """View of the currently valid prefix."""
        return self.data[:self.valid]

    def free(self) -> None:
        """Return this buffer's reservation to the device allocator."""
        self.device._release(self)
        self.released = True

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return (f"<DeviceBuffer {self.label or hex(id(self))} "
                f"{self.capacity} x {self.dtype} on {self.device.name}>")
