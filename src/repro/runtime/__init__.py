"""Virtual CUDA-like runtime on top of the simulated hardware.

The runtime exposes the programming model the paper's implementations
are written against — devices, streams, async copies, kernel launches —
with two effects per operation: the *functional* effect (NumPy data
really moves / gets sorted) and the *timing* effect (simulated time
advances according to the calibrated hardware model).

>>> from repro.hw import ibm_ac922
>>> from repro.runtime import Machine
>>> machine = Machine(ibm_ac922())
>>> machine.num_gpus
4
"""

from repro.runtime.buffer import DeviceBuffer, HostBuffer
from repro.runtime.context import Machine
from repro.runtime.device import Device
from repro.runtime.stream import Stream
from repro.runtime.sync import Semaphore

__all__ = [
    "Device",
    "DeviceBuffer",
    "HostBuffer",
    "Machine",
    "Semaphore",
    "Stream",
]
