"""The virtual GPU device: allocator and copy engines."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from repro.errors import AllocationError
from repro.hw.gpu import GpuSpec
from repro.runtime.buffer import DeviceBuffer
from repro.runtime.sync import Semaphore

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine


class Device:
    """One GPU of the machine.

    Tracks device-memory allocations against the GPU's capacity (in
    logical bytes, honoring the machine scale) and owns the two DMA
    copy engines — one per transfer direction — that modern GPUs
    provide (Section 5.3: "Modern GPUs are typically equipped with at
    least two copy engines").
    """

    def __init__(self, machine: "Machine", gpu_id: int, name: str,
                 spec: GpuSpec, numa: int):
        self.machine = machine
        self.id = gpu_id
        self.name = name
        self.spec = spec
        self.numa = numa
        self.allocated_logical = 0.0
        self._buffers: List[DeviceBuffer] = []
        #: Inbound (writes into this GPU) and outbound DMA engines.
        self.engine_in = Semaphore(machine.env, 1, label=f"{name}.dma_in")
        self.engine_out = Semaphore(machine.env, 1, label=f"{name}.dma_out")
        #: Kernel-duration multiplier (fault injection: straggler GPUs).
        #: Exactly 1.0 when healthy; kernel launches skip it then, so
        #: fault-free timing is untouched.
        self.compute_slowdown = 1.0

    # -- memory ------------------------------------------------------------
    @property
    def capacity_logical(self) -> float:
        """Device memory capacity in logical bytes."""
        return self.spec.memory_bytes

    @property
    def free_logical(self) -> float:
        """Unallocated device memory in logical bytes."""
        return self.capacity_logical - self.allocated_logical

    def max_elements(self, dtype: np.dtype, fraction: float = 1.0) -> int:
        """Physical element count fitting ``fraction`` of free memory."""
        logical = self.free_logical * fraction
        physical_bytes = logical / self.machine.scale
        return int(physical_bytes // np.dtype(dtype).itemsize)

    def alloc(self, n: int, dtype, label: str = "") -> DeviceBuffer:
        """Reserve a device buffer of ``n`` elements.

        Raises :class:`~repro.errors.AllocationError` when the request
        exceeds the remaining capacity.  Allocation is *accounted*, not
        timed; call :meth:`alloc_timed` from process code to also charge
        the cudaMalloc cost (the sorting algorithms pre-allocate, so the
        paper excludes this time — Section 6).
        """
        faults = self.machine.faults
        if faults is not None:
            faults.check_device(self)
        itemsize = np.dtype(dtype).itemsize
        logical = n * itemsize * self.machine.scale
        if logical > self.free_logical * (1 + 1e-9):
            raise AllocationError(
                f"{self.name}: allocation of {logical / 1e9:.2f} GB (logical) "
                f"exceeds free capacity {self.free_logical / 1e9:.2f} GB")
        data = np.empty(n, dtype=dtype)
        buffer = DeviceBuffer(self, data, label=label)
        self.allocated_logical += logical
        self._buffers.append(buffer)
        return buffer

    def alloc_timed(self, n: int, dtype, label: str = ""):
        """Process: allocate and charge the cudaMalloc duration."""
        buffer = self.alloc(n, dtype, label=label)
        logical = buffer.nbytes * self.machine.scale
        yield self.machine.env.timeout(self.spec.alloc_seconds(logical))
        return buffer

    def _release(self, buffer: DeviceBuffer) -> None:
        if buffer not in self._buffers:
            raise AllocationError(f"{buffer!r} was not allocated here")
        self._buffers.remove(buffer)
        self.allocated_logical -= buffer.nbytes * self.machine.scale
        if self.allocated_logical < 0:
            self.allocated_logical = 0.0

    def reset(self) -> None:
        """Free every allocation (e.g. between benchmark repetitions)."""
        self._buffers.clear()
        self.allocated_logical = 0.0

    def __repr__(self) -> str:
        return (f"<Device {self.name} ({self.spec.model}) "
                f"used={self.allocated_logical / 1e9:.2f} GB>")
