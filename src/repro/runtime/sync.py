"""Synchronization primitives for simulation processes."""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import RuntimeApiError
from repro.sim.engine import Environment, Event


class Semaphore:
    """A counting semaphore for simulation processes.

    Use from process code::

        yield semaphore.acquire()
        try:
            ...
        finally:
            semaphore.release()

    Waiters are served in FIFO order.
    """

    def __init__(self, env: Environment, capacity: int, label: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.label = label or f"sem{id(self):x}"
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: Observability recorder; ``None`` (the default) keeps the
        #: acquire/release hot path free of any instrumentation cost.
        self._obs = None

    @property
    def available(self) -> int:
        """Number of currently free slots."""
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Event that succeeds once a slot is held."""
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
            if self._obs is not None:
                self._obs.engine_acquired(self, self.env.now)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot; wakes the oldest waiter, if any."""
        if self._in_use <= 0:
            raise RuntimeApiError("release() without a matching acquire()")
        if self._waiters:
            # The slot passes straight to the oldest waiter: one
            # release plus one acquire at the same instant.
            self._waiters.popleft().succeed()
            if self._obs is not None:
                self._obs.engine_released(self, self.env.now)
                self._obs.engine_acquired(self, self.env.now)
        else:
            self._in_use -= 1
            if self._obs is not None:
                self._obs.engine_released(self, self.env.now)

    def cancel(self, ticket: Event) -> None:
        """Withdraw an :meth:`acquire` whose waiter will never resume.

        A still-queued ticket is simply forgotten; a ticket that was
        already granted (its event triggered, holding a slot) releases
        that slot.  Call this when an interrupt or failure hits a
        process between requesting and yielding on the ticket — without
        it the slot would leak forever.
        """
        try:
            self._waiters.remove(ticket)
            return
        except ValueError:
            pass
        if ticket.triggered:
            self.release()
