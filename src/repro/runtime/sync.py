"""Synchronization primitives for simulation processes."""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import RuntimeApiError
from repro.sim.engine import Environment, Event


class Semaphore:
    """A counting semaphore for simulation processes.

    Use from process code::

        yield semaphore.acquire()
        try:
            ...
        finally:
            semaphore.release()

    Waiters are served in FIFO order.
    """

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Number of currently free slots."""
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Event that succeeds once a slot is held."""
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot; wakes the oldest waiter, if any."""
        if self._in_use <= 0:
            raise RuntimeApiError("release() without a matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def cancel(self, ticket: Event) -> None:
        """Withdraw an :meth:`acquire` whose waiter will never resume.

        A still-queued ticket is simply forgotten; a ticket that was
        already granted (its event triggered, holding a slot) releases
        that slot.  Call this when an interrupt or failure hits a
        process between requesting and yielding on the ticket — without
        it the slot would leak forever.
        """
        try:
            self._waiters.remove(ticket)
            return
        except ValueError:
            pass
        if ticket.triggered:
            self.release()
