"""The :class:`Machine`: one simulated multi-GPU platform instance.

A machine binds a :class:`~repro.hw.systems.SystemSpec` to a fresh
simulation environment, flow network, trace, and per-GPU device state.
All higher-level code — the sorting algorithms, the interconnect
benchmarks — runs as processes inside a machine:

>>> from repro.hw import dgx_a100
>>> from repro.runtime import Machine
>>> machine = Machine(dgx_a100(), scale=1)
>>> machine.num_gpus
8
"""

from __future__ import annotations

from typing import Generator, List, Union

import numpy as np

from repro.errors import RuntimeApiError
from repro.faults.policy import ResiliencePolicy, ResilienceStats
from repro.hw.systems import SystemSpec
from repro.runtime.buffer import HostBuffer
from repro.runtime.device import Device
from repro.sim.engine import Environment, Process
from repro.sim.flows import FlowNetwork
from repro.sim.trace import Trace


class Machine:
    """One simulated run context over a platform.

    Parameters
    ----------
    spec:
        The platform (from :mod:`repro.hw.systems` or a custom builder).
    scale:
        Logical bytes represented per physical byte.  ``scale=1`` is a
        fully functional run; benchmarks reproduce the paper's
        multi-billion-key experiments with small physical arrays and a
        large scale (see DESIGN.md).
    fast_functional:
        Replace the from-scratch functional algorithms with NumPy's
        sort for the payload effect (timing is unchanged).  Intended
        for large benchmark runs.
    """

    def __init__(self, spec: SystemSpec, scale: float = 1.0,
                 fast_functional: bool = False):
        if scale < 1.0:
            raise RuntimeApiError(f"scale must be >= 1, got {scale}")
        self.spec = spec
        self.scale = float(scale)
        self.fast_functional = fast_functional
        self.env = Environment()
        self.net = FlowNetwork(self.env)
        self.trace = Trace(self.env)
        self.devices: List[Device] = [
            Device(self, gpu_id=i, name=name,
                   spec=spec.gpu_specs[name],
                   numa=spec.gpu_numa[name])
            for i, name in enumerate(spec.gpu_names)
        ]
        #: Fault injector, installed via :meth:`install_faults`; ``None``
        #: on a healthy machine (the common case — hot paths gate on it).
        self.faults = None
        #: Observability recorder, installed via
        #: :meth:`enable_observability`; ``None`` (the default) keeps
        #: every hot path free of instrumentation cost.
        self.obs = None
        #: Retry/backoff/re-route behavior of the resilient runtime.
        self.resilience = ResiliencePolicy()
        #: Machine-wide recovery counters (sorts snapshot/delta these).
        self.resilience_stats = ResilienceStats()

    def install_faults(self, plan):
        """Install a :class:`~repro.faults.plan.FaultPlan` on the machine.

        Returns the live :class:`~repro.faults.injector.FaultInjector`.
        At most one plan per machine; install before running workloads
        so every scheduled fault window can fire.
        """
        from repro.faults.injector import FaultInjector

        if self.faults is not None:
            raise RuntimeApiError(
                "a fault plan is already installed on this machine")
        self.faults = FaultInjector(self, plan)
        if self.obs is not None:
            self.faults.obs = self.obs
        return self.faults

    def enable_observability(self, recorder=None):
        """Attach an event recorder to every instrumented component.

        Wires the engine loop, the flow network, each device's DMA
        engines, and the fault injector (present or installed later) to
        one :class:`~repro.obs.recorder.Recorder`.  Pass ``recorder``
        to supply a configured one; by default a fresh recorder is
        created.  Returns the live recorder.

        Recording never alters simulated timing — the recorder is
        strictly read-only — so an observed run is bit-identical (in
        simulated time) to a blind one.
        """
        from repro.obs.recorder import Recorder

        if self.obs is not None:
            raise RuntimeApiError(
                "observability is already enabled on this machine")
        if recorder is None:
            recorder = Recorder()
        self.obs = recorder
        self.env.obs = recorder
        self.net.obs = recorder
        for device in self.devices:
            device.engine_in._obs = recorder
            device.engine_out._obs = recorder
        if self.faults is not None:
            self.faults.obs = recorder
        return recorder

    # -- devices -----------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        """Number of GPUs on the platform."""
        return len(self.devices)

    def device(self, gpu_id: int) -> Device:
        """Device by GPU id."""
        try:
            return self.devices[gpu_id]
        except IndexError:
            raise RuntimeApiError(
                f"no GPU {gpu_id} on {self.spec.name} "
                f"({self.num_gpus} GPUs)") from None

    # -- host memory ---------------------------------------------------------
    def host_buffer(self, data: Union[np.ndarray, int], dtype=None,
                    numa: int = 0, pinned: bool = True) -> HostBuffer:
        """Wrap an array (or allocate ``n`` elements) as a host buffer.

        The paper stores all input data in the host memory of NUMA node
        0 and pins every transfer buffer (Section 4.2) — the defaults
        here.
        """
        if isinstance(data, (int, np.integer)):
            if dtype is None:
                raise RuntimeApiError(
                    "allocating by element count requires a dtype")
            data = np.empty(int(data), dtype=dtype)
        else:
            data = np.ascontiguousarray(data)
        if not 0 <= numa < len(self.spec.numa):
            raise RuntimeApiError(f"no NUMA node {numa} on {self.spec.name}")
        return HostBuffer(data, numa=numa, pinned=pinned)

    # -- execution -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.env.now

    def run(self, process: Union[Generator, Process]):
        """Run a top-level process to completion; returns its value."""
        if not isinstance(process, Process):
            process = self.env.process(process)
        return self.env.run(until=process)

    def logical_bytes(self, physical_bytes: float) -> float:
        """Physical payload bytes to the logical bytes they represent."""
        return physical_bytes * self.scale

    def __repr__(self) -> str:
        return (f"<Machine {self.spec.name} x{self.scale:g} "
                f"t={self.env.now:.6f}s>")
