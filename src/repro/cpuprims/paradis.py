"""PARADIS: parallel in-place radix sort (Cho et al., VLDB 2015).

PARADIS is the paper's CPU baseline (Section 6).  It is an MSD radix
sort that partitions in place through two alternating phases per digit
level:

* **Speculative permutation** — the bucket destination regions are
  striped across ``p`` workers; each worker independently swaps
  elements from its stripes toward the stripe heads of their
  destination buckets.  Because a worker only writes within its own
  stripes, the phase is race-free, but a stripe may fill up before all
  of a worker's elements find a home — those stay misplaced.
* **Repair** — per bucket, the still-unresolved region is compacted:
  elements already carrying the bucket's digit move to the front, the
  active window shrinks to the misplaced remainder, and the next
  speculative round runs on the shrunken windows.

The two phases iterate until every element sits in its bucket; buckets
then recurse on the next digit.

Two functionally identical paths implement this contract:

* the **vectorized** default — each level's bucket windows are resolved
  in a single NumPy partition round (one stable counting scatter over
  the level, gathered through a pooled scratch buffer).  This is the
  one-worker speculative round of the original, whose stripes cover the
  whole windows and therefore always place every element: one round per
  level, no repair residue.
* the **reference** path (``paradis_sort_reference`` /
  ``vectorized=False``) — the element-at-a-time speculation/repair
  loop, faithful to the striping across ``workers`` and convergent over
  multiple rounds.  It is the property-test oracle and the "before"
  side of the ``kernels`` benchmark.

Both paths report their work through :data:`counters` (levels entered,
speculative rounds run), which is how the tests observe that striping
with many workers needs repair rounds while the vectorized round does
not.  The simulator charges time from the calibrated PARADIS rate, not
from host wall-clock, so the paths are interchangeable timing-wise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SortError
from repro.gpuprims.common import (
    SMALL_SORT_THRESHOLD,
    _digit_dtype,
    _stable_digit_order,
    from_radix_keys,
    small_sort,
    to_radix_keys,
)
from repro.runtime.buffer import default_pool

#: Buckets at or below this size are finished with the local sort.
_LOCAL_SORT_THRESHOLD = SMALL_SORT_THRESHOLD

#: Safety bound on permute/repair rounds per level; PARADIS converges in
#: a handful of rounds, so hitting this indicates a bug.
_MAX_ROUNDS = 64


@dataclass
class ParadisCounters:
    """Observable work counters of the most recent sorts.

    ``levels`` counts digit levels partitioned (buckets above the local
    sort threshold); ``rounds`` counts speculative-permutation rounds.
    The vectorized path runs exactly one round per level; the reference
    path with multiple workers may need several on duplicate-heavy
    data, which keeps the striping semantics observable.
    """

    levels: int = 0
    rounds: int = 0

    def reset(self) -> None:
        """Zero the counters (call before a sort you want to measure)."""
        self.levels = 0
        self.rounds = 0


#: Module-wide counters; reset explicitly when measuring a single sort.
counters = ParadisCounters()


def _digits_of(keys: np.ndarray, shift: int, mask: int) -> np.ndarray:
    return ((keys >> keys.dtype.type(shift))
            & keys.dtype.type(mask)).astype(np.int64)


def _speculative_permute(keys: np.ndarray, heads: np.ndarray,
                         tails: np.ndarray, shift: int, mask: int,
                         workers: int) -> None:
    """One parallel speculative permutation round, executed per worker.

    ``heads``/``tails`` bound each bucket's *active* (unresolved)
    window.  Each worker receives one contiguous stripe of every active
    window and runs the PARADIS swap loop on its stripes.
    """
    radix = mask + 1
    # Stripe bounds: worker w owns [stripe[w][v], stripe[w + 1][v]).
    stripe = np.empty((workers + 1, radix), dtype=np.int64)
    for v in range(radix):
        size = tails[v] - heads[v]
        base = heads[v]
        cuts = [base + (size * w) // workers for w in range(workers + 1)]
        stripe[:, v] = cuts

    key_type = keys.dtype.type
    for w in range(workers):
        ph = stripe[w].copy()        # stripe write heads per bucket
        pt = stripe[w + 1]           # stripe ends per bucket
        for v in range(radix):
            pos = int(stripe[w][v])
            while pos < pt[v]:
                value = keys[pos]
                d = int((value >> key_type(shift)) & key_type(mask))
                if d == v:
                    pos += 1
                    continue
                dest = int(ph[d])
                if dest >= pt[d]:
                    # Destination stripe is full: leave misplaced for
                    # the repair phase.
                    pos += 1
                    continue
                # Swap toward the destination stripe head, then
                # re-examine the element that came back to ``pos``.
                keys[pos] = keys[dest]
                keys[dest] = value
                ph[d] += 1


def _repair(keys: np.ndarray, heads: np.ndarray, tails: np.ndarray,
            shift: int, mask: int) -> int:
    """Compact each bucket's active window; returns remaining misplaced.

    Stable partition of the window into correctly-placed elements
    (front) and misplaced ones (back); the active head advances past
    the correct prefix.
    """
    radix = mask + 1
    misplaced_total = 0
    for v in range(radix):
        lo, hi = int(heads[v]), int(tails[v])
        if lo >= hi:
            continue
        window = keys[lo:hi]
        correct = _digits_of(window, shift, mask) == v
        n_correct = int(np.count_nonzero(correct))
        if 0 < n_correct < window.size:
            reordered = np.concatenate([window[correct], window[~correct]])
            window[:] = reordered
        heads[v] = lo + n_correct
        misplaced_total += window.size - n_correct
    return misplaced_total


def _paradis_level_reference(keys: np.ndarray, high_bit: int,
                             radix_bits: int, workers: int) -> None:
    """The element-wise speculation/repair level (reference oracle)."""
    if keys.size <= _LOCAL_SORT_THRESHOLD or high_bit <= 0:
        small_sort(keys)
        return
    counters.levels += 1
    bits = min(radix_bits, high_bit)
    shift = high_bit - bits
    radix = 1 << bits
    mask = radix - 1

    counts = np.bincount(_digits_of(keys, shift, mask), minlength=radix)
    boundaries = np.zeros(radix + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    heads = boundaries[:-1].copy()
    tails = boundaries[1:].copy()

    # The speculative rounds converge quickly for non-degenerate
    # distributions; if a round makes no progress (possible when active
    # windows get smaller than the worker count), fall back to a single
    # worker, whose stripes cover the whole windows — that round always
    # places every remaining element.
    round_workers = workers
    previous = keys.size + 1
    for _ in range(_MAX_ROUNDS):
        counters.rounds += 1
        _speculative_permute(keys, heads, tails, shift, mask, round_workers)
        misplaced = _repair(keys, heads, tails, shift, mask)
        if misplaced == 0:
            break
        if misplaced >= previous:
            round_workers = 1
        previous = misplaced
    else:  # pragma: no cover - convergence guard
        raise SortError("PARADIS permutation failed to converge")

    for v in range(radix):
        lo, hi = int(boundaries[v]), int(boundaries[v + 1])
        if hi - lo > 1:
            _paradis_level_reference(keys[lo:hi], shift, radix_bits,
                                     workers)


def _paradis_level_vectorized(keys: np.ndarray, scratch: np.ndarray,
                              high_bit: int, radix_bits: int) -> None:
    """One-round bucket-window partition of a level, vectorized.

    Equivalent to a speculative round whose single worker's stripes
    cover the whole bucket windows: every element reaches its window in
    one pass (so repair finds nothing to compact).  Implemented as a
    stable counting scatter through the sort-wide ``scratch`` buffer.
    """
    if keys.size <= _LOCAL_SORT_THRESHOLD or high_bit <= 0:
        small_sort(keys)
        return
    counters.levels += 1
    counters.rounds += 1
    bits = min(radix_bits, high_bit)
    shift = high_bit - bits
    radix = 1 << bits
    key_type = keys.dtype.type
    compact = ((keys >> key_type(shift))
               & key_type(radix - 1)).astype(_digit_dtype(radix),
                                             copy=False)
    counts = np.bincount(compact, minlength=radix)
    order = _stable_digit_order(compact)
    np.take(keys, order, out=scratch)
    keys[:] = scratch
    boundaries = np.zeros(radix + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    for value in range(radix):
        lo, hi = int(boundaries[value]), int(boundaries[value + 1])
        if hi - lo > 1:
            _paradis_level_vectorized(keys[lo:hi], scratch[lo:hi],
                                      shift, radix_bits)


def paradis_sort(values: np.ndarray, radix_bits: int = 8,
                 workers: int = 4, *,
                 vectorized: bool = True) -> np.ndarray:
    """Return ``values`` sorted ascending with PARADIS.

    ``workers`` controls the speculative-permutation striping of the
    reference path (the paper runs PARADIS with all hardware threads;
    functionally any worker count yields the same sorted result, which
    the tests verify).  The vectorized default resolves each level in
    one partition round and ignores the striping — ``workers`` is still
    validated so the two paths stay call-compatible.
    """
    if values.ndim != 1:
        raise SortError("PARADIS expects a one-dimensional array")
    if not 1 <= radix_bits <= 16:
        raise SortError(f"radix_bits must be in [1, 16], got {radix_bits}")
    if workers < 1:
        raise SortError(f"workers must be >= 1, got {workers}")
    if values.size <= 1:
        return values.copy()
    keys, dtype = to_radix_keys(values)
    if vectorized:
        with default_pool.borrow(keys.size, keys.dtype) as scratch:
            _paradis_level_vectorized(keys, scratch, dtype.itemsize * 8,
                                      radix_bits)
    else:
        _paradis_level_reference(keys, dtype.itemsize * 8, radix_bits,
                                 workers)
    return from_radix_keys(keys, dtype)


def paradis_sort_reference(values: np.ndarray, radix_bits: int = 8,
                           workers: int = 4) -> np.ndarray:
    """The element-wise speculation/repair PARADIS (oracle path)."""
    return paradis_sort(values, radix_bits, workers, vectorized=False)
