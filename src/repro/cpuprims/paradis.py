"""PARADIS: parallel in-place radix sort (Cho et al., VLDB 2015).

PARADIS is the paper's CPU baseline (Section 6).  It is an MSD radix
sort that partitions in place through two alternating phases per digit
level:

* **Speculative permutation** — the bucket destination regions are
  striped across ``p`` workers; each worker independently swaps
  elements from its stripes toward the stripe heads of their
  destination buckets.  Because a worker only writes within its own
  stripes, the phase is race-free, but a stripe may fill up before all
  of a worker's elements find a home — those stay misplaced.
* **Repair** — per bucket, the still-unresolved region is compacted:
  elements already carrying the bucket's digit move to the front, the
  active window shrinks to the misplaced remainder, and the next
  speculative round runs on the shrunken windows.

The two phases iterate until every element sits in its bucket; buckets
then recurse on the next digit.  This implementation is functionally
faithful (striping, speculation, repair, recursion, small-bucket
insertion sort) while executing the "parallel" workers sequentially —
the simulator charges time from the calibrated PARADIS rate, not from
host wall-clock.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SortError
from repro.gpuprims.common import (
    binary_insertion_sort,
    from_radix_keys,
    to_radix_keys,
)

#: Buckets at or below this size are finished with the local sort.
_LOCAL_SORT_THRESHOLD = 64

#: Safety bound on permute/repair rounds per level; PARADIS converges in
#: a handful of rounds, so hitting this indicates a bug.
_MAX_ROUNDS = 64


def _digits_of(keys: np.ndarray, shift: int, mask: int) -> np.ndarray:
    return ((keys >> keys.dtype.type(shift))
            & keys.dtype.type(mask)).astype(np.int64)


def _speculative_permute(keys: np.ndarray, heads: np.ndarray,
                         tails: np.ndarray, shift: int, mask: int,
                         workers: int) -> None:
    """One parallel speculative permutation round, executed per worker.

    ``heads``/``tails`` bound each bucket's *active* (unresolved)
    window.  Each worker receives one contiguous stripe of every active
    window and runs the PARADIS swap loop on its stripes.
    """
    radix = mask + 1
    # Stripe bounds: worker w owns [stripe[w][v], stripe[w + 1][v]).
    stripe = np.empty((workers + 1, radix), dtype=np.int64)
    for v in range(radix):
        size = tails[v] - heads[v]
        base = heads[v]
        cuts = [base + (size * w) // workers for w in range(workers + 1)]
        stripe[:, v] = cuts

    key_type = keys.dtype.type
    for w in range(workers):
        ph = stripe[w].copy()        # stripe write heads per bucket
        pt = stripe[w + 1]           # stripe ends per bucket
        for v in range(radix):
            pos = int(stripe[w][v])
            while pos < pt[v]:
                value = keys[pos]
                d = int((value >> key_type(shift)) & key_type(mask))
                if d == v:
                    pos += 1
                    continue
                dest = int(ph[d])
                if dest >= pt[d]:
                    # Destination stripe is full: leave misplaced for
                    # the repair phase.
                    pos += 1
                    continue
                # Swap toward the destination stripe head, then
                # re-examine the element that came back to ``pos``.
                keys[pos] = keys[dest]
                keys[dest] = value
                ph[d] += 1


def _repair(keys: np.ndarray, heads: np.ndarray, tails: np.ndarray,
            shift: int, mask: int) -> int:
    """Compact each bucket's active window; returns remaining misplaced.

    Stable partition of the window into correctly-placed elements
    (front) and misplaced ones (back); the active head advances past
    the correct prefix.
    """
    radix = mask + 1
    misplaced_total = 0
    for v in range(radix):
        lo, hi = int(heads[v]), int(tails[v])
        if lo >= hi:
            continue
        window = keys[lo:hi]
        correct = _digits_of(window, shift, mask) == v
        n_correct = int(np.count_nonzero(correct))
        if 0 < n_correct < window.size:
            reordered = np.concatenate([window[correct], window[~correct]])
            window[:] = reordered
        heads[v] = lo + n_correct
        misplaced_total += window.size - n_correct
    return misplaced_total


def _paradis_level(keys: np.ndarray, high_bit: int, radix_bits: int,
                   workers: int) -> None:
    if keys.size <= _LOCAL_SORT_THRESHOLD or high_bit <= 0:
        binary_insertion_sort(keys)
        return
    bits = min(radix_bits, high_bit)
    shift = high_bit - bits
    radix = 1 << bits
    mask = radix - 1

    counts = np.bincount(_digits_of(keys, shift, mask), minlength=radix)
    boundaries = np.zeros(radix + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    heads = boundaries[:-1].copy()
    tails = boundaries[1:].copy()

    # The speculative rounds converge quickly for non-degenerate
    # distributions; if a round makes no progress (possible when active
    # windows get smaller than the worker count), fall back to a single
    # worker, whose stripes cover the whole windows — that round always
    # places every remaining element.
    round_workers = workers
    previous = keys.size + 1
    for _ in range(_MAX_ROUNDS):
        _speculative_permute(keys, heads, tails, shift, mask, round_workers)
        misplaced = _repair(keys, heads, tails, shift, mask)
        if misplaced == 0:
            break
        if misplaced >= previous:
            round_workers = 1
        previous = misplaced
    else:  # pragma: no cover - convergence guard
        raise SortError("PARADIS permutation failed to converge")

    for v in range(radix):
        lo, hi = int(boundaries[v]), int(boundaries[v + 1])
        if hi - lo > 1:
            _paradis_level(keys[lo:hi], shift, radix_bits, workers)


def paradis_sort(values: np.ndarray, radix_bits: int = 8,
                 workers: int = 4) -> np.ndarray:
    """Return ``values`` sorted ascending with PARADIS.

    ``workers`` controls the speculative-permutation striping (the
    paper runs PARADIS with all hardware threads; functionally any
    worker count yields the same sorted result, which the tests
    verify).
    """
    if values.ndim != 1:
        raise SortError("PARADIS expects a one-dimensional array")
    if not 1 <= radix_bits <= 16:
        raise SortError(f"radix_bits must be in [1, 16], got {radix_bits}")
    if workers < 1:
        raise SortError(f"workers must be >= 1, got {workers}")
    if values.size <= 1:
        return values.copy()
    keys, dtype = to_radix_keys(values)
    _paradis_level(keys, dtype.itemsize * 8, radix_bits, workers)
    return from_radix_keys(keys, dtype)
