"""Buffered LSB radix sort (Polychroniou & Ross, SIGMOD 2014 model).

The SIMD rival to PARADIS in the paper's CPU baseline study
(Section 6): an out-of-place LSB radix sort whose partitioning writes
through small cache-resident software buffers, flushing one cache line
at a time to the output — the technique that makes the scatter
SIMD/cache-friendly.  The buffering is modelled functionally: elements
pass through per-bucket staging buffers of a fixed line size before
reaching the output, so flush boundaries are exercised by the tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SortError
from repro.gpuprims.common import from_radix_keys, to_radix_keys

#: Elements per software buffer line (64-byte cache line of 32-bit keys).
_LINE = 16


def _buffered_partition_pass(keys: np.ndarray, out: np.ndarray, shift: int,
                             radix_bits: int) -> None:
    """One stable partition pass through per-bucket staging buffers."""
    radix = 1 << radix_bits
    key_type = keys.dtype.type
    digits = ((keys >> key_type(shift))
              & key_type(radix - 1)).astype(np.int64)
    counts = np.bincount(digits, minlength=radix)
    write_pos = np.zeros(radix, dtype=np.int64)
    np.cumsum(counts[:-1], out=write_pos[1:])

    buffers = np.empty((radix, _LINE), dtype=keys.dtype)
    fill = np.zeros(radix, dtype=np.int64)
    for pos in range(keys.size):
        d = digits[pos]
        buffers[d, fill[d]] = keys[pos]
        fill[d] += 1
        if fill[d] == _LINE:
            out[write_pos[d]:write_pos[d] + _LINE] = buffers[d]
            write_pos[d] += _LINE
            fill[d] = 0
    for d in range(radix):
        if fill[d]:
            out[write_pos[d]:write_pos[d] + fill[d]] = buffers[d, :fill[d]]
            write_pos[d] += fill[d]


def radix_sort_buffered_lsb(values: np.ndarray,
                            radix_bits: int = 8) -> np.ndarray:
    """Return ``values`` sorted ascending with the buffered LSB radix sort."""
    if values.ndim != 1:
        raise SortError("radix sort expects a one-dimensional array")
    if not 1 <= radix_bits <= 16:
        raise SortError(f"radix_bits must be in [1, 16], got {radix_bits}")
    if values.size <= 1:
        return values.copy()
    keys, dtype = to_radix_keys(values)
    scratch = np.empty_like(keys)
    key_bits = dtype.itemsize * 8
    for shift in range(0, key_bits, radix_bits):
        _buffered_partition_pass(keys, scratch, shift,
                                 min(radix_bits, key_bits - shift))
        keys, scratch = scratch, keys
    return from_radix_keys(keys, dtype)
