"""Library-sort stand-ins and the CPU functional dispatch.

The paper benchmarks PARADIS against gnu_parallel's sort, Intel TBB's
``parallel_sort`` and the parallel C++17 ``std::sort`` (Section 6).
Functionally these are comparison sorts; their merge-sort /
quicksort-flavoured behaviour is represented here by stable and
unstable NumPy sorts, while the *performance* distinction lives
entirely in the calibrated rates of :class:`repro.hw.host.CpuSpec`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.cpuprims.paradis import paradis_sort
from repro.cpuprims.radix_simd import radix_sort_buffered_lsb
from repro.errors import SortError


def library_sort(values: np.ndarray, flavour: str = "gnu_parallel") -> np.ndarray:
    """Sorted copy via a library-sort stand-in.

    ``gnu_parallel`` is a stable multiway mergesort; ``tbb`` and
    ``std_par`` are unstable quicksort-family sorts.
    """
    if flavour == "gnu_parallel":
        return np.sort(values, kind="stable")
    if flavour in ("tbb", "std_par"):
        return np.sort(values, kind="quicksort")
    raise SortError(f"unknown library sort flavour {flavour!r}")


_DISPATCH: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "paradis": paradis_sort,
    "simd_lsb": radix_sort_buffered_lsb,
    "gnu_parallel": lambda values: library_sort(values, "gnu_parallel"),
    "tbb": lambda values: library_sort(values, "tbb"),
    "std_par": lambda values: library_sort(values, "std_par"),
}


def available_cpu_primitives() -> List[str]:
    """Names of the registered CPU sort primitives."""
    return sorted(_DISPATCH)


def cpu_functional_sort(primitive: str) -> Callable[[np.ndarray], np.ndarray]:
    """The functional implementation behind a CPU primitive name."""
    try:
        return _DISPATCH[primitive]
    except KeyError:
        known = ", ".join(available_cpu_primitives())
        raise SortError(
            f"unknown CPU sort primitive {primitive!r} (known: {known})"
        ) from None
