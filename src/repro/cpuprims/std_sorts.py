"""Library-sort stand-ins and the CPU functional dispatch.

The paper benchmarks PARADIS against gnu_parallel's sort, Intel TBB's
``parallel_sort`` and the parallel C++17 ``std::sort`` (Section 6).
Functionally these are comparison sorts; their merge-sort /
quicksort-flavoured behaviour is represented here by stable and
unstable NumPy sorts, while the *performance* distinction lives
entirely in the calibrated rates of :class:`repro.hw.host.CpuSpec`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cpuprims.paradis import paradis_sort
from repro.cpuprims.radix_simd import radix_sort_buffered_lsb
from repro.errors import SortError


def _into(sorted_values: np.ndarray,
          out: Optional[np.ndarray]) -> np.ndarray:
    """Deliver a sort result into ``out`` when one was provided."""
    if out is None:
        return sorted_values
    out[:] = sorted_values
    return out


def library_sort(values: np.ndarray, flavour: str = "gnu_parallel", *,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """Sorted copy via a library-sort stand-in.

    ``gnu_parallel`` is a stable multiway mergesort; ``tbb`` and
    ``std_par`` are unstable quicksort-family sorts.  When ``out`` is
    the input array itself the sort happens in place with no copy — the
    path :func:`repro.runtime.cpu_ops.cpu_sort` uses.
    """
    if flavour == "gnu_parallel":
        kind = "stable"
    elif flavour in ("tbb", "std_par"):
        kind = "quicksort"
    else:
        raise SortError(f"unknown library sort flavour {flavour!r}")
    if out is values:
        out.sort(kind=kind)
        return out
    return _into(np.sort(values, kind=kind), out)


_DISPATCH: Dict[str, Callable[..., np.ndarray]] = {
    "paradis": lambda values, *, out=None: _into(paradis_sort(values), out),
    "simd_lsb": lambda values, *, out=None: _into(
        radix_sort_buffered_lsb(values), out),
    "gnu_parallel": lambda values, *, out=None: library_sort(
        values, "gnu_parallel", out=out),
    "tbb": lambda values, *, out=None: library_sort(values, "tbb", out=out),
    "std_par": lambda values, *, out=None: library_sort(
        values, "std_par", out=out),
}


def available_cpu_primitives() -> List[str]:
    """Names of the registered CPU sort primitives."""
    return sorted(_DISPATCH)


def cpu_functional_sort(primitive: str) -> Callable[..., np.ndarray]:
    """The functional implementation behind a CPU primitive name.

    Every registered callable accepts ``(values, *, out=None)``; with
    ``out`` the sorted keys land in the given array (``out`` may be
    ``values`` itself, which the library flavours sort in place).
    """
    try:
        return _DISPATCH[primitive]
    except KeyError:
        known = ", ".join(available_cpu_primitives())
        raise SortError(
            f"unknown CPU sort primitive {primitive!r} (known: {known})"
        ) from None
