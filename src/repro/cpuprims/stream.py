"""STREAM-style sustainable memory bandwidth estimation.

Section 5.3 calibrates the CPU merge against the STREAM benchmark
adapted to the NUMA architectures: modern DRAM sustains 75-80% of its
theoretical rate [37], and gnu_parallel's multiway merge then reaches
71-94% of that STREAM number.  This module provides both the model
(:func:`stream_bandwidth`) and an actual measurement kernel
(:func:`measure_stream_triad`) that runs the triad ``a = b + s * c`` on
the host, used by the Section 5.3 benchmark to report real saturation
ratios alongside the modelled ones.
"""

from __future__ import annotations

import time

import numpy as np

from repro.hw.host import CpuSpec

#: DRAM sustains this fraction of its theoretical rate (Li et al. [37]).
DRAM_EFFICIENCY = 0.78

#: Observed saturation band of gnu_parallel::multiway_merge (Section 5.3).
MERGE_SATURATION_LOW = 0.71
MERGE_SATURATION_HIGH = 0.94


def stream_bandwidth(theoretical_bw: float,
                     efficiency: float = DRAM_EFFICIENCY) -> float:
    """Sustainable STREAM bandwidth from a theoretical rate, bytes/s."""
    return theoretical_bw * efficiency


def merge_saturation(cpu: CpuSpec) -> float:
    """Fraction of STREAM bandwidth the calibrated merge rate uses.

    The multiway merge reads and writes each byte once, so its memory
    traffic is twice its output rate.
    """
    return 2.0 * cpu.multiway_merge_rate / cpu.stream_bw


def measure_stream_triad(n: int = 4_000_000, repetitions: int = 3) -> float:
    """Measured triad bandwidth of the *host running the simulation*.

    Returns bytes/s moved (3 arrays per iteration).  This is a
    diagnostic of the simulation host, not of the modelled platforms.
    """
    a = np.zeros(n)
    b = np.random.default_rng(0).random(n)
    c = np.random.default_rng(1).random(n)
    scalar = 3.0
    best = 0.0
    for _ in range(repetitions):
        start = time.perf_counter()
        np.add(b, scalar * c, out=a)
        elapsed = time.perf_counter() - start
        best = max(best, 3 * a.nbytes / elapsed)
    return best
