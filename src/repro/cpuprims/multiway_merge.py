"""K-way merging of sorted runs (gnu_parallel::multiway_merge model).

Two implementations of the same contract:

* :func:`multiway_merge_losertree` — the reference: a loser tree over
  the run heads, ``log2(k)`` comparisons per output element, exactly
  the algorithm gnu_parallel uses (Section 5.3).  Element-at-a-time, so
  it is the one to read and to property-test.
* :func:`multiway_merge` — a vectorized binary merge tree delivering the
  same output fast enough for large functional runs.  The runs are laid
  out contiguously in a workspace borrowed from the pool and the tree's
  levels ping-pong between two such workspaces — two fixed buffers for
  the whole merge, no per-level concatenation.  gnu_parallel's parallel
  splitting is orthogonal to the merge order, so both produce the
  identical stable result.

Both work out-of-place: the paper favours out-of-place merging because
in-place approaches have worse complexity and perform poorly in
practice (Section 5.3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cpuprims.losertree import LoserTree
from repro.errors import SortError
from repro.gpuprims.merge_path import merge_sorted, merge_sorted_with_values
from repro.runtime.buffer import default_pool


def _check_runs(runs: Sequence[np.ndarray]) -> None:
    if not runs:
        raise SortError("multiway merge needs at least one run")
    dtype = runs[0].dtype
    for run in runs:
        if run.ndim != 1:
            raise SortError("runs must be one-dimensional")
        if run.dtype != dtype:
            raise SortError(f"dtype mismatch: {run.dtype} vs {dtype}")


def _check_out(out: Optional[np.ndarray], total: int, label: str) -> None:
    if out is not None and out.size != total:
        raise SortError(
            f"{label} needs {total} elements, got {out.size}")


def multiway_merge_losertree(runs: Sequence[np.ndarray]) -> np.ndarray:
    """Merge sorted runs with a loser tree (reference implementation)."""
    _check_runs(runs)
    total = sum(run.size for run in runs)
    out = np.empty(total, dtype=runs[0].dtype)
    positions = [0] * len(runs)

    def head(run_index: int):
        run = runs[run_index]
        pos = positions[run_index]
        return run[pos] if pos < run.size else LoserTree._SENTINEL

    tree = LoserTree([head(i) for i in range(len(runs))])
    for out_pos in range(total):
        run_index = tree.winner
        out[out_pos] = runs[run_index][positions[run_index]]
        positions[run_index] += 1
        tree.replace_winner(head(run_index))
    return out


def multiway_merge(runs: Sequence[np.ndarray], *,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
    """Merge sorted runs via a binary merge tree (vectorized fast path).

    Pass ``out`` (``sum(len(run))`` elements, not overlapping the runs)
    to receive the merged output in a preallocated array.
    """
    _check_runs(runs)
    total = sum(run.size for run in runs)
    _check_out(out, total, "multiway merge output")
    if len(runs) == 1:
        if out is None:
            return np.asarray(runs[0]).copy()
        out[:] = runs[0]
        return out
    dtype = runs[0].dtype
    with default_pool.borrow(total, dtype) as ping, \
            default_pool.borrow(total, dtype) as pong:
        sizes: List[int] = []
        offset = 0
        for run in runs:
            ping[offset:offset + run.size] = run
            sizes.append(run.size)
            offset += run.size
        src, dst = ping, pong
        while len(sizes) > 1:
            merged_sizes: List[int] = []
            offset = 0
            for i in range(0, len(sizes) - 1, 2):
                n1, n2 = sizes[i], sizes[i + 1]
                merge_sorted(src[offset:offset + n1],
                             src[offset + n1:offset + n1 + n2],
                             out=dst[offset:offset + n1 + n2])
                merged_sizes.append(n1 + n2)
                offset += n1 + n2
            if len(sizes) % 2:
                # Odd run out: carry it into the level's buffer so
                # every level lives in exactly one workspace.
                tail = sizes[-1]
                dst[offset:offset + tail] = src[offset:offset + tail]
                merged_sizes.append(tail)
            sizes = merged_sizes
            src, dst = dst, src
        if out is None:
            return src.copy()
        out[:] = src
        return out


def multiway_merge_with_values(runs: Sequence[np.ndarray],
                               value_runs: Sequence[np.ndarray], *,
                               out: Optional[np.ndarray] = None,
                               values_out: Optional[np.ndarray] = None
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """Key-value k-way merge: payloads travel with their keys.

    ``out`` / ``values_out`` are optional preallocated destinations for
    the merged keys and payloads.
    """
    _check_runs(runs)
    if len(value_runs) != len(runs):
        raise SortError("one value run per key run is required")
    for keys, values in zip(runs, value_runs):
        if len(keys) != len(values):
            raise SortError("keys and values must have equal lengths")
    total = sum(run.size for run in runs)
    if (out is None) != (values_out is None):
        raise SortError(
            "provide both out and values_out, or neither")
    _check_out(out, total, "multiway merge key output")
    _check_out(values_out, total, "multiway merge value output")
    if len(runs) == 1:
        keys = np.asarray(runs[0])
        values = np.asarray(value_runs[0])
        if out is None:
            return keys.copy(), values.copy()
        out[:] = keys
        values_out[:] = values
        return out, values_out
    key_dtype = runs[0].dtype
    value_dtype = np.asarray(value_runs[0]).dtype
    with default_pool.borrow(total, key_dtype) as key_ping, \
            default_pool.borrow(total, key_dtype) as key_pong, \
            default_pool.borrow(total, value_dtype) as val_ping, \
            default_pool.borrow(total, value_dtype) as val_pong:
        sizes: List[int] = []
        offset = 0
        for keys, values in zip(runs, value_runs):
            key_ping[offset:offset + keys.size] = keys
            val_ping[offset:offset + keys.size] = values
            sizes.append(keys.size)
            offset += keys.size
        src_k, dst_k = key_ping, key_pong
        src_v, dst_v = val_ping, val_pong
        while len(sizes) > 1:
            merged_sizes: List[int] = []
            offset = 0
            for i in range(0, len(sizes) - 1, 2):
                n1, n2 = sizes[i], sizes[i + 1]
                lo, mid, hi = offset, offset + n1, offset + n1 + n2
                merge_sorted_with_values(
                    src_k[lo:mid], src_k[mid:hi],
                    src_v[lo:mid], src_v[mid:hi],
                    out_keys=dst_k[lo:hi], out_values=dst_v[lo:hi])
                merged_sizes.append(n1 + n2)
                offset = hi
            if len(sizes) % 2:
                tail = sizes[-1]
                dst_k[offset:offset + tail] = src_k[offset:offset + tail]
                dst_v[offset:offset + tail] = src_v[offset:offset + tail]
                merged_sizes.append(tail)
            sizes = merged_sizes
            src_k, dst_k = dst_k, src_k
            src_v, dst_v = dst_v, src_v
        if out is None:
            return src_k.copy(), src_v.copy()
        out[:] = src_k
        values_out[:] = src_v
        return out, values_out
