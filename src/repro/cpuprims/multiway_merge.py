"""K-way merging of sorted runs (gnu_parallel::multiway_merge model).

Two implementations of the same contract:

* :func:`multiway_merge_losertree` — the reference: a loser tree over
  the run heads, ``log2(k)`` comparisons per output element, exactly
  the algorithm gnu_parallel uses (Section 5.3).  Element-at-a-time, so
  it is the one to read and to property-test.
* :func:`multiway_merge` — a vectorized binary merge tree delivering the
  same output fast enough for large functional runs.  gnu_parallel's
  parallel splitting is orthogonal to the merge order, so both produce
  the identical stable result.

Both work out-of-place: the paper favours out-of-place merging because
in-place approaches have worse complexity and perform poorly in
practice (Section 5.3).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from typing import Tuple

from repro.cpuprims.losertree import LoserTree
from repro.errors import SortError
from repro.gpuprims.merge_path import merge_sorted, merge_sorted_with_values


def _check_runs(runs: Sequence[np.ndarray]) -> None:
    if not runs:
        raise SortError("multiway merge needs at least one run")
    dtype = runs[0].dtype
    for run in runs:
        if run.ndim != 1:
            raise SortError("runs must be one-dimensional")
        if run.dtype != dtype:
            raise SortError(f"dtype mismatch: {run.dtype} vs {dtype}")


def multiway_merge_losertree(runs: Sequence[np.ndarray]) -> np.ndarray:
    """Merge sorted runs with a loser tree (reference implementation)."""
    _check_runs(runs)
    total = sum(run.size for run in runs)
    out = np.empty(total, dtype=runs[0].dtype)
    positions = [0] * len(runs)

    def head(run_index: int):
        run = runs[run_index]
        pos = positions[run_index]
        return run[pos] if pos < run.size else LoserTree._SENTINEL

    tree = LoserTree([head(i) for i in range(len(runs))])
    for out_pos in range(total):
        run_index = tree.winner
        out[out_pos] = runs[run_index][positions[run_index]]
        positions[run_index] += 1
        tree.replace_winner(head(run_index))
    return out


def multiway_merge(runs: Sequence[np.ndarray]) -> np.ndarray:
    """Merge sorted runs via a binary merge tree (vectorized fast path)."""
    _check_runs(runs)
    level: List[np.ndarray] = [np.asarray(run) for run in runs]
    while len(level) > 1:
        merged: List[np.ndarray] = []
        for i in range(0, len(level) - 1, 2):
            merged.append(merge_sorted(level[i], level[i + 1]))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0].copy()


def multiway_merge_with_values(runs: Sequence[np.ndarray],
                               value_runs: Sequence[np.ndarray]
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """Key-value k-way merge: payloads travel with their keys."""
    _check_runs(runs)
    if len(value_runs) != len(runs):
        raise SortError("one value run per key run is required")
    for keys, values in zip(runs, value_runs):
        if len(keys) != len(values):
            raise SortError("keys and values must have equal lengths")
    level = [(np.asarray(k), np.asarray(v))
             for k, v in zip(runs, value_runs)]
    while len(level) > 1:
        merged = []
        for i in range(0, len(level) - 1, 2):
            (ka, va), (kb, vb) = level[i], level[i + 1]
            merged.append(merge_sorted_with_values(ka, kb, va, vb))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    keys, values = level[0]
    return keys.copy(), values.copy()
