"""Tournament loser tree for k-way merging.

The loser tree keeps the *losers* of a knockout tournament in its inner
nodes and the overall winner at the root.  Replacing the winner and
replaying only its root-to-leaf path costs exactly ``log2(k)``
comparisons per extracted element — the property that makes
``gnu_parallel::multiway_merge`` optimal and the reason the paper picks
it for HET sort's merge phase (Section 5.3: heap-based merges need
``2 * log(k)`` comparisons, the loser tree exactly ``log(k)``).
"""

from __future__ import annotations

from typing import Any, List, Sequence


class LoserTree:
    """A loser tree over ``k`` input runs.

    Drive it through :meth:`winner` and :meth:`replace_winner`; or use
    :func:`repro.cpuprims.multiway_merge.multiway_merge_losertree` for
    whole-array merging.

    Exhausted runs are represented by an internal sentinel that loses
    against every key, so the tree needs no special-casing as runs dry
    up.
    """

    _SENTINEL = object()

    def __init__(self, first_keys: Sequence[Any]):
        if not first_keys:
            raise ValueError("a loser tree needs at least one run")
        self.k = len(first_keys)
        # Leaves hold the current head key of each run.
        self._leaves: List[Any] = list(first_keys)
        # Inner nodes hold run indices of path losers; node 0 the winner.
        self._nodes: List[int] = [-1] * self.k
        self._build()

    # -- comparisons with the exhausted sentinel ---------------------------
    @classmethod
    def _beats(cls, a: Any, b: Any) -> bool:
        """Whether key ``a`` wins (is merged before) key ``b``."""
        if a is cls._SENTINEL:
            return False
        if b is cls._SENTINEL:
            return True
        return a <= b

    def _build(self) -> None:
        """Play the full tournament once, storing losers in inner nodes.

        Leaf ``i`` sits at tree position ``k + i``; inner nodes occupy
        positions ``1 .. k-1``; position 0 holds the overall winner.
        """
        if self.k == 1:
            self._nodes[0] = 0
            return

        def play(node: int) -> int:
            if node >= self.k:
                return node - self.k
            left = play(2 * node)
            right = play(2 * node + 1)
            if self._beats(self._leaves[left], self._leaves[right]):
                winner, loser = left, right
            else:
                winner, loser = right, left
            self._nodes[node] = loser
            return winner

        self._nodes[0] = play(1)

    @property
    def winner(self) -> int:
        """Index of the run whose head key is currently smallest."""
        return self._nodes[0]

    @property
    def winner_key(self) -> Any:
        """The smallest current head key (undefined when exhausted)."""
        return self._leaves[self._nodes[0]]

    @property
    def exhausted(self) -> bool:
        """Whether every run has run dry."""
        return self._leaves[self._nodes[0]] is self._SENTINEL

    def replace_winner(self, key: Any) -> None:
        """Replace the winner's key with its run's next key and replay.

        Exactly ``ceil(log2(k))`` comparisons.
        """
        run = self._nodes[0]
        self._leaves[run] = key
        node = (run + self.k) // 2
        winner = run
        while node > 0:
            loser = self._nodes[node]
            if self._beats(self._leaves[loser], self._leaves[winner]):
                self._nodes[node] = winner
                winner = loser
            node //= 2
        self._nodes[0] = winner

    def exhaust_winner(self) -> None:
        """Mark the winner's run as dry and replay."""
        self.replace_winner(self._SENTINEL)
