"""Functional CPU sorting and merging primitives.

The paper's host side rests on three workhorses, all re-implemented
here from scratch:

* :mod:`repro.cpuprims.paradis` — PARADIS, the in-place parallel radix
  sort of Cho et al. (VLDB 2015), the paper's CPU baseline,
* :mod:`repro.cpuprims.multiway_merge` — a gnu_parallel-style k-way
  merge on the loser-tree of :mod:`repro.cpuprims.losertree`,
* :mod:`repro.cpuprims.radix_simd` — Polychroniou & Ross' buffered LSB
  radix sort (the SIMD rival baseline of Section 6),

plus library-sort stand-ins (:mod:`repro.cpuprims.std_sorts`) and a
STREAM-style sustainable-bandwidth model (:mod:`repro.cpuprims.stream`).
"""

from repro.cpuprims.losertree import LoserTree
from repro.cpuprims.multiway_merge import (
    multiway_merge,
    multiway_merge_losertree,
    multiway_merge_with_values,
)
from repro.cpuprims.paradis import paradis_sort
from repro.cpuprims.radix_simd import radix_sort_buffered_lsb
from repro.cpuprims.std_sorts import cpu_functional_sort, library_sort

__all__ = [
    "LoserTree",
    "cpu_functional_sort",
    "library_sort",
    "multiway_merge",
    "multiway_merge_losertree",
    "multiway_merge_with_values",
    "paradis_sort",
    "radix_sort_buffered_lsb",
]
