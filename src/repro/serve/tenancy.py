"""Per-tenant state: workspace isolation and accounting.

Each tenant owns a quota-limited
:class:`~repro.runtime.buffer.WorkspacePool`; every job the service
runs for the tenant borrows its host scratch from that pool (the
supervisor's ``pool`` config), so one tenant's oversized jobs hit a
typed :class:`~repro.errors.QuotaExceededError` instead of growing the
shared host's memory — and never touch another tenant's pool.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.runtime.buffer import WorkspacePool


class Tenant:
    """One tenant of the sort service."""

    def __init__(self, name: str, quota_bytes: Optional[int] = None):
        self.name = name
        self.pool = WorkspacePool(quota_bytes=quota_bytes,
                                  name=f"tenant:{name}")
        self.submitted = 0
        self.admitted = 0
        #: Rejections by :class:`~repro.errors.AdmissionRejected` reason.
        self.rejected: Dict[str, int] = {}
        self.completed = 0
        #: GPU-seconds consumed (job wall time x GPUs) — the fair-share
        #: scheduler's currency.
        self.gpu_seconds = 0.0

    @property
    def quota_bytes(self) -> Optional[int]:
        """The pool's byte quota (``None`` = unlimited)."""
        return self.pool.quota_bytes

    def note_rejection(self, reason: str) -> None:
        """Count one typed admission rejection."""
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable accounting snapshot."""
        stats = self.pool.stats()
        return {
            "name": self.name,
            "quota_bytes": self.quota_bytes,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": dict(self.rejected),
            "completed": self.completed,
            "gpu_seconds": self.gpu_seconds,
            "pool_borrowed_bytes": stats.total_borrowed,
            "pool_free_bytes": stats.total_free,
        }

    def __repr__(self) -> str:
        quota = (f"{self.quota_bytes}B quota" if self.quota_bytes
                 is not None else "no quota")
        return f"<Tenant {self.name} ({quota})>"
