"""A multi-tenant sort service over one simulated machine.

:mod:`repro.serve` turns the single-shot sorting stack into a service
that *degrades gracefully instead of falling over*:

* a **bounded job queue** fed by a seeded workload generator
  (:mod:`repro.serve.workload`);
* an **admission controller** that sheds load with typed
  :class:`~repro.errors.AdmissionRejected` reasons — ``queue-full``,
  ``deadline-infeasible``, ``quota-exceeded``, ``draining`` — rather
  than queueing unboundedly (:mod:`repro.serve.admission`);
* a **gang scheduler** that partitions the platform's GPUs between
  concurrent jobs (fair-share and shortest-job-first policies, with
  small-job batching onto shared GPUs; :mod:`repro.serve.scheduler`);
* per-tenant :class:`~repro.runtime.buffer.WorkspacePool` isolation
  with byte quotas (:mod:`repro.serve.tenancy`);
* a **circuit breaker** quarantining GPUs that fault in consecutive
  jobs (:mod:`repro.serve.breaker`);
* graceful **drain/shutdown** that completes in-flight jobs or returns
  typed partial results.

Each admitted job runs under its own
:class:`~repro.recovery.SortSupervisor` (via :meth:`sort_async
<repro.recovery.supervisor.SortSupervisor.sort_async>`), so per-job
deadlines, replanning around dead GPUs, and checkpoint recovery all
compose with service-level scheduling.  See ``docs/SERVICE.md``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.job import JobResult, JobSpec
from repro.serve.queue import BoundedJobQueue
from repro.serve.scheduler import GangScheduler, Placement
from repro.serve.service import ServiceConfig, ServiceReport, SortService
from repro.serve.tenancy import Tenant
from repro.serve.workload import WorkloadSpec, generate_jobs

__all__ = [
    "AdmissionController",
    "BoundedJobQueue",
    "CircuitBreaker",
    "GangScheduler",
    "JobResult",
    "JobSpec",
    "Placement",
    "ServiceConfig",
    "ServiceReport",
    "SortService",
    "Tenant",
    "WorkloadSpec",
    "generate_jobs",
]
