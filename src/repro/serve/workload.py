"""Seeded workload generation for the sort service.

A :class:`WorkloadSpec` describes an arrival process (Poisson, rate
expressed as a multiple of the platform's estimated capacity) over a
mix of job size classes; :func:`generate_jobs` expands it into a
deterministic list of :class:`~repro.serve.job.JobSpec` — equal specs
and seeds always give equal workloads, so overload experiments replay
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ServiceError
from repro.serve.job import JobSpec

#: ``(name, keys_fraction, gpus, algorithm, weight)`` rows of the
#: default job mix.  ``keys_fraction`` scales the spec's base key
#: count; single-GPU jobs use the heterogeneous sort (no exchange),
#: multi-GPU jobs the P2P sort (power-of-two GPU counts).
DEFAULT_MIX: Tuple[Tuple[str, float, int, str, float], ...] = (
    ("small", 0.125, 1, "het", 0.5),
    ("medium", 0.5, 2, "p2p", 0.3),
    ("large", 1.0, 4, "p2p", 0.2),
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One reproducible stream of sort jobs."""

    #: Number of jobs to generate.
    jobs: int
    #: Mean arrivals per simulated second (Poisson process).  Express
    #: overload as a multiple of measured capacity — the service
    #: benchmark calibrates this from a reference run.
    arrival_rate: float
    #: Base physical key count the mix's fractions scale.
    base_keys: int
    #: Tenants, assigned round-robin-free (seeded draw) per job.
    tenants: Tuple[str, ...] = ("acme", "globex", "initech")
    #: Job mix rows; see :data:`DEFAULT_MIX`.
    mix: Tuple[Tuple[str, float, int, str, float], ...] = DEFAULT_MIX
    #: Deadline = ``deadline_slack`` x the job's estimated service time
    #: (at :attr:`est_service_s` per base-keys GPU-second); ``None``
    #: generates best-effort jobs with no deadlines.
    deadline_slack: float = 8.0
    #: Estimated service seconds of a ``base_keys`` job on one GPU —
    #: the scale for deadlines; calibrate from a reference run.
    est_service_s: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.jobs <= 0:
            raise ServiceError(f"workload needs >= 1 job, got {self.jobs}")
        if self.arrival_rate <= 0:
            raise ServiceError(
                f"arrival rate must be positive, got {self.arrival_rate}")
        if self.base_keys <= 0:
            raise ServiceError(
                f"base_keys must be positive, got {self.base_keys}")
        if not self.tenants:
            raise ServiceError("workload needs at least one tenant")
        if not self.mix:
            raise ServiceError("workload needs at least one mix row")


def generate_jobs(spec: WorkloadSpec) -> List[JobSpec]:
    """Expand a workload spec into a deterministic job list.

    All randomness comes from one stream seeded by ``spec.seed``;
    per-job data seeds are derived so every job sorts distinct keys
    while the whole workload stays replayable.
    """
    rng = np.random.default_rng(spec.seed)
    weights = np.array([row[4] for row in spec.mix], dtype=float)
    weights /= weights.sum()
    jobs: List[JobSpec] = []
    now = 0.0
    for job_id in range(spec.jobs):
        now += float(rng.exponential(1.0 / spec.arrival_rate))
        row = spec.mix[int(rng.choice(len(spec.mix), p=weights))]
        _, fraction, gpus, algorithm, _ = row
        keys = max(1, int(spec.base_keys * fraction))
        tenant = spec.tenants[int(rng.integers(len(spec.tenants)))]
        deadline = None
        if spec.deadline_slack is not None:
            # Service estimate scales with keys and shrinks with GPUs;
            # the slack covers queueing under healthy load.
            est = spec.est_service_s * (keys / spec.base_keys) / gpus
            deadline = spec.deadline_slack * est
        jobs.append(JobSpec(
            job_id=job_id, tenant=tenant, arrival_s=now, keys=keys,
            dtype="int32", gpus=gpus, deadline_s=deadline,
            algorithm=algorithm, seed=spec.seed * 100_003 + job_id))
    return jobs
