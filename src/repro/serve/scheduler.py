"""The gang scheduler: partition one machine's GPUs between jobs.

Jobs get *gangs* — all their GPUs at once, for their whole run — so a
job's supervisor owns its GPU set exactly like a single-shot sort.
Large jobs hold their GPUs exclusively; small jobs (at most
:attr:`GangScheduler.small_job_keys` keys) may be batched onto shared
GPUs, up to :attr:`GangScheduler.slots_per_gpu` per device, trading a
little contention for much better small-job latency under load.

Two ready policies:

``fair``
    Fair share by tenant: among placeable queued jobs, run the one
    whose tenant has consumed the fewest GPU-seconds (ties by age).
``sjf``
    Shortest job first by estimated service time (ties by age) —
    minimizes mean latency, at the cost of large-job starvation under
    sustained overload (which admission bounds anyway).

Both policies *backfill*: when the head job cannot be placed, a later
job that fits runs immediately.  Quarantined (circuit breaker) and
hard-failed GPUs are never allocated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import ServiceError
from repro.serve.breaker import CircuitBreaker
from repro.serve.job import JobSpec
from repro.serve.queue import BoundedJobQueue
from repro.serve.tenancy import Tenant

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine

POLICIES = ("fair", "sjf")


@dataclass(frozen=True)
class Placement:
    """GPUs granted to one job for its whole run."""

    gpu_ids: Tuple[int, ...]
    #: Whether the job holds its GPUs exclusively (large jobs) or
    #: shares slots with other small jobs.
    exclusive: bool


class GangScheduler:
    """Allocates GPU gangs to queued jobs under one policy."""

    def __init__(self, machine: "Machine", policy: str = "fair",
                 slots_per_gpu: int = 2, small_job_keys: int = 0,
                 breaker: Optional[CircuitBreaker] = None,
                 estimate_service_s: Optional[
                     Callable[[JobSpec], float]] = None):
        if policy not in POLICIES:
            raise ServiceError(f"unknown scheduling policy {policy!r} "
                               f"(expected one of {POLICIES})")
        if slots_per_gpu < 1:
            raise ServiceError(
                f"slots_per_gpu must be >= 1, got {slots_per_gpu}")
        self.machine = machine
        self.policy = policy
        self.slots_per_gpu = slots_per_gpu
        #: Jobs with at most this many physical keys may share GPUs;
        #: 0 disables batching entirely.
        self.small_job_keys = small_job_keys
        self.breaker = breaker
        self.estimate_service_s = estimate_service_s or (lambda spec: 0.0)
        #: Allocation priority: the platform's preferred GPU ordering.
        self._order: Tuple[int, ...] = machine.spec.preferred_gpu_set(
            machine.num_gpus)
        #: Small-job slots taken per GPU.
        self._occupancy: Dict[int, int] = {gpu: 0 for gpu in self._order}
        #: GPUs held exclusively by a running large job.
        self._exclusive: Set[int] = set()

    # -- health ------------------------------------------------------------
    def healthy_gpus(self) -> List[int]:
        """Usable GPUs (not quarantined, not hard-failed), in priority
        order."""
        faults = self.machine.faults
        gpus = []
        for gpu in self._order:
            if self.breaker is not None and self.breaker.is_quarantined(gpu):
                continue
            if faults is not None and faults.is_failed(gpu):
                continue
            gpus.append(gpu)
        return gpus

    # -- placement ---------------------------------------------------------
    def _shareable(self, spec: JobSpec) -> bool:
        return 0 < spec.keys <= self.small_job_keys

    def candidate(self, spec: JobSpec) -> Optional[Placement]:
        """The gang ``spec`` would get right now, without committing."""
        healthy = self.healthy_gpus()
        if self._shareable(spec):
            free = [gpu for gpu in healthy
                    if gpu not in self._exclusive
                    and self._occupancy[gpu] < self.slots_per_gpu]
            # Least-loaded slots first so batched jobs spread out; the
            # priority order breaks ties deterministically.
            free.sort(key=lambda gpu: self._occupancy[gpu])
            if len(free) >= spec.gpus:
                return Placement(gpu_ids=tuple(sorted(free[:spec.gpus])),
                                 exclusive=False)
            return None
        free = [gpu for gpu in healthy
                if gpu not in self._exclusive
                and self._occupancy[gpu] == 0]
        if len(free) >= spec.gpus:
            return Placement(gpu_ids=tuple(sorted(free[:spec.gpus])),
                             exclusive=True)
        return None

    def place(self, spec: JobSpec) -> Optional[Placement]:
        """Commit a gang for ``spec``; ``None`` when nothing fits."""
        placement = self.candidate(spec)
        if placement is None:
            return None
        for gpu in placement.gpu_ids:
            if placement.exclusive:
                self._exclusive.add(gpu)
            else:
                self._occupancy[gpu] += 1
        return placement

    def release(self, placement: Placement) -> None:
        """Return a finished job's gang to the free pool."""
        for gpu in placement.gpu_ids:
            if placement.exclusive:
                self._exclusive.discard(gpu)
            else:
                self._occupancy[gpu] = max(0, self._occupancy[gpu] - 1)

    # -- policy ------------------------------------------------------------
    def pick(self, queue: BoundedJobQueue,
             tenants: Dict[str, Tenant]) -> Optional[int]:
        """Index of the next queued job to dispatch, or ``None``.

        Only placeable jobs are candidates (backfill); the policy
        orders them.
        """
        candidates = [index for index, pending in enumerate(queue)
                      if self.candidate(pending.spec) is not None]
        if not candidates:
            return None
        if self.policy == "sjf":
            return min(candidates, key=lambda index: (
                self.estimate_service_s(queue[index].spec), index))
        return min(candidates, key=lambda index: (
            tenants[queue[index].spec.tenant].gpu_seconds, index))
