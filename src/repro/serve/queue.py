"""The bounded job queue: backpressure made structural.

The queue is the service's only buffer, and it is *bounded by
construction* — admission control rejects (typed) before ever pushing
into a full queue, so overload shows up as rejection-rate curves, never
as unbounded memory growth or runaway latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.errors import ServiceError
from repro.serve.job import JobSpec


@dataclass
class PendingJob:
    """A queued, admitted job waiting for GPUs."""

    spec: JobSpec
    #: The job's input keys (generated at submission).
    data: np.ndarray
    #: When admission accepted the job.
    submitted_s: float


class BoundedJobQueue:
    """FIFO of admitted jobs with a hard capacity.

    The scheduler may pop out of order (backfill, SJF); arrival order
    is preserved for iteration so fairness policies can break ties by
    age.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ServiceError(
                f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: List[PendingJob] = []

    @property
    def full(self) -> bool:
        """Whether another push would exceed capacity."""
        return len(self._entries) >= self.capacity

    def push(self, entry: PendingJob) -> None:
        """Append an admitted job; admission must have checked bounds."""
        if self.full:
            raise ServiceError(
                f"push into a full queue ({self.capacity} jobs) — "
                "admission control must reject first")
        self._entries.append(entry)

    def pop_at(self, index: int) -> PendingJob:
        """Remove and return the entry at ``index`` (scheduler's pick)."""
        return self._entries.pop(index)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PendingJob]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> PendingJob:
        return self._entries[index]
