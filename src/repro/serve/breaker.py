"""The GPU circuit breaker: quarantine repeat offenders across jobs.

The fault injector already records every fault occurrence on its
timeline; the breaker folds that *cross-job* signal into scheduling.
After each job, every GPU the job used is judged: a fault window on
the GPU overlapping the job's run increments its consecutive-fault
count, a clean run resets it, and at :attr:`threshold` consecutive
faulted jobs the GPU is quarantined — the gang scheduler stops
allocating it, so a flapping device degrades capacity instead of
failing every job scheduled onto it.  Hard GPU failures quarantine
immediately.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine


class CircuitBreaker:
    """Per-GPU consecutive-fault counting with quarantine."""

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        #: Consecutive faulted jobs per GPU id.
        self.consecutive: Dict[int, int] = {}
        self.quarantined: Set[int] = set()
        #: ``(gpu, simulated time)`` of every trip, in order.
        self.trips: List[Tuple[int, float]] = []

    def is_quarantined(self, gpu: int) -> bool:
        """Whether the scheduler must avoid ``gpu``."""
        return gpu in self.quarantined

    def observe_job(self, machine: "Machine", gpu_ids: Sequence[int],
                    start: float, end: float) -> Set[int]:
        """Judge one finished job's GPUs; returns newly quarantined ids.

        ``start``/``end`` bound the job's run in simulated time; a
        fault-timeline window on a used GPU overlapping that interval
        counts against the GPU.
        """
        faults = machine.faults
        newly: Set[int] = set()
        for gpu in gpu_ids:
            if gpu in self.quarantined:
                continue
            if faults is None:
                self.consecutive[gpu] = 0
                continue
            if faults.is_failed(gpu):
                # A corpse needs no three strikes.
                self.quarantined.add(gpu)
                self.trips.append((gpu, end))
                newly.add(gpu)
                continue
            name = machine.device(gpu).name
            hit = any(
                record.target == name and record.start <= end
                and (record.end is None or record.end >= start)
                for record in faults.timeline)
            if not hit:
                self.consecutive[gpu] = 0
                continue
            count = self.consecutive.get(gpu, 0) + 1
            self.consecutive[gpu] = count
            if count >= self.threshold:
                self.quarantined.add(gpu)
                self.trips.append((gpu, end))
                newly.add(gpu)
        return newly

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable breaker state."""
        return {
            "threshold": self.threshold,
            "quarantined": sorted(self.quarantined),
            "trips": [{"gpu": gpu, "at_s": at} for gpu, at in self.trips],
        }
