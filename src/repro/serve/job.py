"""Job descriptions and outcomes of the sort service."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.sort.result import SortResult

#: Terminal states a job can reach.  ``rejected`` jobs never entered
#: the queue; ``deadline`` covers both typed partial results from the
#: supervisor and jobs whose deadline expired while still queued.
STATUSES = ("completed", "deadline", "failed", "cancelled", "rejected")


@dataclass(frozen=True)
class JobSpec:
    """One sort request, as generated or submitted by a tenant."""

    job_id: int
    tenant: str
    #: Absolute simulated arrival time.
    arrival_s: float
    #: Physical keys to sort (the machine's ``scale`` supplies the
    #: logical multiplier, exactly like the single-shot sorts).
    keys: int
    dtype: str = "int32"
    #: GPUs the job wants; the gang scheduler allocates exactly this
    #: many healthy GPUs (power of two for ``p2p``).
    gpus: int = 1
    #: Latency budget in simulated seconds, relative to arrival;
    #: ``None`` means best-effort.
    deadline_s: Optional[float] = None
    algorithm: str = "p2p"
    #: Seed of the job's input data (mixed with ``job_id`` by the
    #: workload generator so every job sorts distinct keys).
    seed: int = 0

    @property
    def bytes(self) -> int:
        """Physical payload size in bytes."""
        return self.keys * np.dtype(self.dtype).itemsize

    @property
    def label(self) -> str:
        """Trace/span label: ``<tenant>/<job_id>``."""
        return f"{self.tenant}/{self.job_id}"


@dataclass
class JobResult:
    """Terminal record of one job (admitted or not)."""

    spec: JobSpec
    status: str
    #: Rejection reason, exception type name, or ``None`` for clean
    #: completions.
    reason: Optional[str] = None
    #: When the service saw the request (== arrival for generated load).
    submitted_s: float = 0.0
    #: Dispatch time; ``None`` for jobs that never ran.
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    gpu_ids: Tuple[int, ...] = ()
    #: The supervisor's result for jobs that ran (including typed
    #: partial results); ``None`` otherwise.
    sort: Optional[SortResult] = field(default=None, repr=False)

    def __post_init__(self):
        if self.status not in STATUSES:
            raise ValueError(f"unknown job status {self.status!r} "
                             f"(expected one of {STATUSES})")

    @property
    def admitted(self) -> bool:
        """Whether the job made it past admission control."""
        return self.status != "rejected"

    @property
    def latency_s(self) -> Optional[float]:
        """Submission-to-finish latency; ``None`` if the job never
        finished (rejected at admission)."""
        if self.finished_s is None:
            return None
        return self.finished_s - self.submitted_s

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Time spent queued before dispatch; ``None`` if never ran."""
        if self.started_s is None:
            return None
        return self.started_s - self.submitted_s

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable summary (omits the sorted payload)."""
        return {
            "job_id": self.spec.job_id,
            "tenant": self.spec.tenant,
            "keys": self.spec.keys,
            "gpus": self.spec.gpus,
            "algorithm": self.spec.algorithm,
            "status": self.status,
            "reason": self.reason,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "latency_s": self.latency_s,
            "queue_wait_s": self.queue_wait_s,
            "gpu_ids": list(self.gpu_ids),
        }
