"""The sort service: admission, scheduling, execution, drain.

One :class:`SortService` owns one :class:`~repro.runtime.context.
Machine` and runs many supervised sorts *concurrently* inside its
simulation: arrivals are a simulated process, each dispatched job runs
:meth:`~repro.recovery.supervisor.SortSupervisor.sort_async` under its
own process on the gang scheduler's GPU set, and the whole episode is
driven by one ``env.run``.  Overload never crashes the service — it
surfaces as typed :class:`~repro.errors.AdmissionRejected` results,
bounded queue waits, and (under drain) typed partial results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data import generate
from repro.errors import AdmissionRejected, ReproError, ServiceError
from repro.obs.metrics import MetricsRegistry
from repro.recovery.supervisor import SortSupervisor, SupervisorConfig
from repro.runtime.context import Machine
from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.job import JobResult, JobSpec
from repro.serve.queue import BoundedJobQueue, PendingJob
from repro.serve.scheduler import GangScheduler, Placement
from repro.serve.tenancy import Tenant
from repro.sim.engine import Interrupt


@dataclass
class ServiceConfig:
    """Tunables of the sort service."""

    #: Admission queue bound; fuller arrivals are rejected
    #: ``queue-full``.
    queue_capacity: int = 8
    #: ``fair`` (per-tenant GPU-seconds) or ``sjf``.
    policy: str = "fair"
    #: Small jobs batched per GPU (1 disables sharing-induced overlap).
    slots_per_gpu: int = 2
    #: Jobs at most this many physical keys may share GPUs; 0 disables
    #: small-job batching.
    small_job_keys: int = 0
    #: Consecutive faulted jobs before a GPU is quarantined.
    breaker_threshold: int = 3
    #: Estimated sorting rate in *logical* keys per second per GPU —
    #: the admission controller's and SJF's service-time model.
    #: Calibrate from a reference run for tight deadline checks.
    gpu_rate_keys_per_s: float = 5e8
    #: Supervisor template for every job; the service fills in the
    #: per-job ``deadline_s``, ``pool`` and ``job_label``.
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    #: Start draining (reject new work, finish queued + running jobs)
    #: at this simulated time; ``None`` never drains.
    drain_at_s: Optional[float] = None
    #: After draining, give in-flight work this long before cancelling
    #: it with typed ``cancelled`` results; ``None`` waits forever.
    shutdown_grace_s: Optional[float] = None
    #: Data distribution of generated job inputs.
    distribution: str = "uniform"
    #: Directory for post-mortem bundles: passed through to every job's
    #: supervisor (terminal job failures dump there) and used by the
    #: service itself when the circuit breaker quarantines GPUs.
    postmortem_dir: Optional[str] = None


class SortService:
    """Multi-tenant sort service over one machine."""

    def __init__(self, machine: Machine,
                 tenants: Optional[Sequence[Tenant]] = None,
                 config: Optional[ServiceConfig] = None):
        self.machine = machine
        self.config = config or ServiceConfig()
        self.tenants: Dict[str, Tenant] = {
            tenant.name: tenant for tenant in (tenants or ())}
        self.queue = BoundedJobQueue(self.config.queue_capacity)
        self.breaker = CircuitBreaker(self.config.breaker_threshold)
        self.scheduler = GangScheduler(
            machine, policy=self.config.policy,
            slots_per_gpu=self.config.slots_per_gpu,
            small_job_keys=self.config.small_job_keys,
            breaker=self.breaker,
            estimate_service_s=self.estimate_service_s)
        self.admission = AdmissionController(
            self.queue, self.estimate_service_s)
        self.results: List[JobResult] = []
        #: Paths of post-mortem bundles dumped during the episode.
        self.postmortems: List[str] = []
        #: job_id -> the job's running process.
        self._running: Dict[int, object] = {}
        self._arrivals_done = False
        self._done = None
        self.peak_queue = 0

    # -- estimation --------------------------------------------------------
    def estimate_service_s(self, spec: JobSpec) -> float:
        """Modelled service time of ``spec`` on its requested gang."""
        logical = spec.keys * self.machine.scale
        rate = self.config.gpu_rate_keys_per_s * max(1, spec.gpus)
        return logical / rate

    def tenant(self, name: str) -> Tenant:
        """The named tenant, auto-registered without a quota."""
        found = self.tenants.get(name)
        if found is None:
            found = self.tenants[name] = Tenant(name)
        return found

    # -- the episode -------------------------------------------------------
    def run(self, jobs: Sequence[JobSpec]) -> "ServiceReport":
        """Play a workload to completion; returns the episode report.

        Drives the machine's environment until every job reached a
        terminal state (or was cancelled by shutdown).  One episode per
        service instance.
        """
        if self._done is not None:
            raise ServiceError("a service instance runs one episode; "
                               "create a fresh one")
        if not jobs:
            raise ServiceError("the workload is empty")
        env = self.machine.env
        self._done = env.event()
        start = env.now
        env.process(self._arrivals(sorted(jobs,
                                          key=lambda j: j.arrival_s)))
        if self.config.drain_at_s is not None:
            env.process(self._drain_driver())
        env.run(until=self._done)
        return self._report(start, env.now)

    def _arrivals(self, jobs: Sequence[JobSpec]):
        env = self.machine.env
        for spec in jobs:
            delay = spec.arrival_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            self.submit(spec)
        self._arrivals_done = True
        self._check_done()

    def submit(self, spec: JobSpec,
               data: Optional[np.ndarray] = None) -> bool:
        """Admit (and queue) or reject one job at the current time.

        Returns whether the job was admitted; either way a terminal or
        queued record exists afterwards.  ``data`` overrides the
        generated input (tests pin exact keys).
        """
        now = self.machine.env.now
        tenant = self.tenant(spec.tenant)
        tenant.submitted += 1
        try:
            self.admission.admit(spec, tenant)
        except AdmissionRejected as exc:
            tenant.note_rejection(exc.reason)
            self.results.append(JobResult(
                spec=spec, status="rejected", reason=exc.reason,
                submitted_s=now))
            self._check_done()
            return False
        tenant.admitted += 1
        if data is None:
            data = generate(spec.keys, self.config.distribution,
                            np.dtype(spec.dtype), seed=spec.seed)
        self.queue.push(PendingJob(spec=spec, data=data, submitted_s=now))
        self.peak_queue = max(self.peak_queue, len(self.queue))
        self._dispatch()
        return True

    # -- scheduling --------------------------------------------------------
    def _dispatch(self) -> None:
        """Start every queued job the scheduler can place right now."""
        while len(self.queue):
            index = self.scheduler.pick(self.queue, self.tenants)
            if index is None:
                self._fail_stranded()
                return
            pending = self.queue.pop_at(index)
            now = self.machine.env.now
            spec = pending.spec
            if (spec.deadline_s is not None
                    and now - pending.submitted_s >= spec.deadline_s):
                # Stale while queued: shed it typed instead of burning
                # GPUs on a result nobody is waiting for.
                self.results.append(JobResult(
                    spec=spec, status="deadline",
                    reason="expired-in-queue",
                    submitted_s=pending.submitted_s, finished_s=now))
                continue
            placement = self.scheduler.place(spec)
            if placement is None:  # pragma: no cover - pick guarantees
                self.queue.push(pending)
                return
            process = self.machine.env.process(
                self._run_job(pending, placement))
            self._running[spec.job_id] = process
        self._check_done()

    def _fail_stranded(self) -> None:
        """Fail queued jobs that can never run (gang > healthy GPUs).

        Only decidable when the machine is otherwise idle: with nothing
        running, an unplaceable job is unplaceable forever (quarantine
        never lifts within an episode).
        """
        if self._running:
            return
        survivors: List[PendingJob] = []
        stranded: List[PendingJob] = []
        for pending in list(self.queue):
            if self.scheduler.candidate(pending.spec) is None:
                stranded.append(pending)
            else:
                survivors.append(pending)
        if not stranded:
            self._check_done()
            return
        now = self.machine.env.now
        while len(self.queue):
            self.queue.pop_at(0)
        for pending in survivors:
            self.queue.push(pending)
        for pending in stranded:
            self.results.append(JobResult(
                spec=pending.spec, status="failed",
                reason="unschedulable",
                submitted_s=pending.submitted_s, finished_s=now))
        if survivors:
            self._dispatch()
        else:
            self._check_done()

    # -- execution ---------------------------------------------------------
    def _run_job(self, pending: PendingJob, placement: Placement):
        env = self.machine.env
        spec = pending.spec
        tenant = self.tenant(spec.tenant)
        started = env.now
        remaining = None
        if spec.deadline_s is not None:
            remaining = spec.deadline_s - (started - pending.submitted_s)
        supervisor = SortSupervisor(self.machine, replace(
            self.config.supervisor, deadline_s=remaining,
            pool=tenant.pool, job_label=spec.label,
            postmortem_dir=self.config.postmortem_dir))
        status, reason, sort_result = "completed", None, None
        try:
            sort_result = yield from supervisor.sort_async(
                pending.data, algorithm=spec.algorithm,
                gpu_ids=placement.gpu_ids)
            if sort_result.deadline_exceeded:
                status, reason = "deadline", "deadline-budget"
        except Interrupt:
            status, reason = "cancelled", "shutdown"
        except ReproError as exc:
            status, reason = "failed", type(exc).__name__
        finished = env.now
        self.postmortems.extend(supervisor.postmortems)
        self.scheduler.release(placement)
        newly_quarantined = self.breaker.observe_job(
            self.machine, placement.gpu_ids, started, finished)
        if newly_quarantined:
            self._dump_quarantine(newly_quarantined, spec, status, reason)
        tenant.gpu_seconds += (finished - started) * len(placement.gpu_ids)
        if status == "completed":
            tenant.completed += 1
        self.results.append(JobResult(
            spec=spec, status=status, reason=reason,
            submitted_s=pending.submitted_s, started_s=started,
            finished_s=finished, gpu_ids=placement.gpu_ids,
            sort=sort_result))
        self._running.pop(spec.job_id, None)
        self._dispatch()

    def _dump_quarantine(self, gpu_ids, spec: JobSpec,
                         status: str, reason: Optional[str]) -> None:
        """Freeze a quarantine bundle when the breaker trips.

        Never raises: quarantine is a degraded-but-alive state and a
        reporting failure must not take the service down with it.
        """
        if self.config.postmortem_dir is None:
            return
        from repro.obs.postmortem import build_bundle, write_bundle
        error = ServiceError(
            f"circuit breaker quarantined GPUs {sorted(gpu_ids)} after "
            f"job {spec.label} finished {status}"
            + (f" ({reason})" if reason else ""))
        try:
            bundle = build_bundle(self.machine, error, label=spec.label,
                                  kind="quarantine")
            self.postmortems.append(
                write_bundle(bundle, self.config.postmortem_dir))
        except Exception:  # noqa: BLE001 - reporting must not hurt serving
            pass

    # -- drain / shutdown --------------------------------------------------
    def _drain_driver(self):
        env = self.machine.env
        delay = self.config.drain_at_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        self.drain()
        if self.config.shutdown_grace_s is None:
            return
        yield env.timeout(self.config.shutdown_grace_s)
        self.shutdown_now()

    def drain(self) -> None:
        """Stop admitting; queued and running jobs still complete."""
        self.admission.draining = True

    def shutdown_now(self) -> None:
        """Cancel all remaining work with typed ``cancelled`` results.

        Queued jobs terminate immediately; running jobs are
        interrupted, unwind through the supervisor's quiesce/cleanup
        path, and record their own ``cancelled`` results.
        """
        self.admission.draining = True
        now = self.machine.env.now
        while len(self.queue):
            pending = self.queue.pop_at(0)
            self.results.append(JobResult(
                spec=pending.spec, status="cancelled", reason="shutdown",
                submitted_s=pending.submitted_s, finished_s=now))
        for process in list(self._running.values()):
            if process.is_alive:
                process.interrupt("shutdown")
        self._check_done()

    # -- bookkeeping -------------------------------------------------------
    def _check_done(self) -> None:
        if (self._done is not None and not self._done.triggered
                and self._arrivals_done and not len(self.queue)
                and not self._running):
            self._done.succeed()

    def _report(self, start: float, end: float) -> "ServiceReport":
        report = ServiceReport.build(
            results=list(self.results), start_s=start, end_s=end,
            peak_queue=self.peak_queue,
            quarantined=tuple(sorted(self.breaker.quarantined)),
            tenants={name: tenant.snapshot()
                     for name, tenant in sorted(self.tenants.items())})
        # Per-tenant latency/rejection metrics land both in a local
        # registry (embedded in the report, and from there in BENCH
        # records) and, when observability is on, in the recorder's
        # registry so ``repro.obs metrics`` exports them too.
        local = MetricsRegistry()
        report.populate_metrics(local)
        if self.machine.obs is not None:
            report.populate_metrics(self.machine.obs.metrics)
        report.metrics = local.snapshot()
        return report


@dataclass
class ServiceReport:
    """Aggregate outcome of one service episode."""

    results: List[JobResult]
    start_s: float
    end_s: float
    peak_queue: int
    quarantined: Tuple[int, ...]
    tenants: Dict[str, Dict[str, object]]
    offered: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)
    rejections: Dict[str, int] = field(default_factory=dict)
    jobs_per_s: float = 0.0
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    mean_queue_wait_s: float = 0.0
    #: Snapshot of the episode's service metrics (per-tenant latency
    #: histograms, rejection counters — see :meth:`populate_metrics`).
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @classmethod
    def build(cls, results, start_s, end_s, peak_queue, quarantined,
              tenants) -> "ServiceReport":
        """Derive the aggregate metrics from the raw results."""
        by_status: Dict[str, int] = {}
        rejections: Dict[str, int] = {}
        for result in results:
            by_status[result.status] = by_status.get(result.status, 0) + 1
            if result.status == "rejected":
                rejections[result.reason] = \
                    rejections.get(result.reason, 0) + 1
        completed = [r for r in results if r.status == "completed"]
        latencies = [r.latency_s for r in completed]
        waits = [r.queue_wait_s for r in completed]
        span = max(end_s - start_s, 1e-12)
        return cls(
            results=results, start_s=start_s, end_s=end_s,
            peak_queue=peak_queue, quarantined=quarantined,
            tenants=tenants, offered=len(results), by_status=by_status,
            rejections=rejections,
            jobs_per_s=len(completed) / span,
            p50_latency_s=(float(np.percentile(latencies, 50))
                           if latencies else 0.0),
            p99_latency_s=(float(np.percentile(latencies, 99))
                           if latencies else 0.0),
            mean_queue_wait_s=(float(np.mean(waits)) if waits else 0.0))

    def populate_metrics(self, registry: "MetricsRegistry") -> None:
        """Feed the episode's outcomes into a metrics registry.

        Per job: a ``service.jobs.<status>`` counter; per tenant:
        latency and queue-wait histograms over completed jobs and one
        rejection counter per typed reason.  Episode-level gauges carry
        the peak queue depth and quarantine count.
        """
        for result in self.results:
            tenant = result.spec.tenant
            registry.counter(f"service.jobs.{result.status}").inc()
            if result.status == "rejected":
                registry.counter(
                    f"service.tenant.{tenant}.rejections."
                    f"{result.reason}").inc()
            elif result.status == "completed":
                registry.histogram(
                    f"service.tenant.{tenant}.latency_s").observe(
                        result.latency_s)
                registry.histogram(
                    f"service.tenant.{tenant}.queue_wait_s").observe(
                        result.queue_wait_s)
        registry.gauge("service.peak_queue").set(self.peak_queue)
        registry.gauge("service.quarantined_gpus").set(
            len(self.quarantined))

    @property
    def completed(self) -> int:
        """Jobs that finished with a full sorted result."""
        return self.by_status.get("completed", 0)

    @property
    def rejected(self) -> int:
        """Jobs shed at admission (all typed reasons)."""
        return self.by_status.get("rejected", 0)

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered jobs shed at admission."""
        return self.rejected / self.offered if self.offered else 0.0

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable record (summary + per-job rows)."""
        return {
            "duration_s": self.end_s - self.start_s,
            "offered": self.offered,
            "by_status": dict(self.by_status),
            "rejections": dict(self.rejections),
            "rejection_rate": self.rejection_rate,
            "jobs_per_s": self.jobs_per_s,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "peak_queue": self.peak_queue,
            "quarantined": list(self.quarantined),
            "tenants": self.tenants,
            "metrics": self.metrics,
            "jobs": [result.to_json() for result in self.results],
        }
