"""Admission control: shed load with typed reasons, never queue blind.

Checks run in a fixed order — draining, queue-full, quota-exceeded,
deadline-infeasible — and failure raises
:class:`~repro.errors.AdmissionRejected` with the matching reason, so
callers (and the benchmark's rejection-rate curves) can react per
cause.  Admission is *pessimistic about statics only*: it rejects jobs
that could never succeed (scratch over quota, deadline shorter than
the bare service time) and sheds the rest purely on queue bounds,
leaving transient judgement calls to the scheduler and supervisor.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import AdmissionRejected
from repro.serve.job import JobSpec
from repro.serve.queue import BoundedJobQueue
from repro.serve.tenancy import Tenant


def scratch_bytes(spec: JobSpec) -> int:
    """Host scratch the supervisor will borrow for ``spec``.

    The P2P driver stages a padded copy of the input (padded to a
    multiple of the GPU count); the HET driver borrows one run per
    chunk totalling the input size.  Either way the dominant term is
    one input-sized scratch array.
    """
    itemsize = np.dtype(spec.dtype).itemsize
    if spec.algorithm == "p2p":
        chunk = -(-spec.keys // max(1, spec.gpus))
        return chunk * max(1, spec.gpus) * itemsize
    return spec.keys * itemsize


class AdmissionController:
    """Decides, synchronously at submission, whether a job may queue."""

    def __init__(self, queue: BoundedJobQueue,
                 estimate_service_s: Callable[[JobSpec], float]):
        self.queue = queue
        self.estimate_service_s = estimate_service_s
        #: Set by the service's drain/shutdown path.
        self.draining = False

    def admit(self, spec: JobSpec, tenant: Tenant) -> None:
        """Raise :class:`~repro.errors.AdmissionRejected` or return."""
        if self.draining:
            raise AdmissionRejected(
                "draining", f"job {spec.label}: the service is draining "
                "and accepts no new work")
        if self.queue.full:
            raise AdmissionRejected(
                "queue-full", f"job {spec.label}: the admission queue "
                f"holds {self.queue.capacity} jobs already")
        if tenant.quota_bytes is not None:
            needed = scratch_bytes(spec)
            if needed > tenant.quota_bytes:
                raise AdmissionRejected(
                    "quota-exceeded", f"job {spec.label} needs ~{needed} "
                    f"bytes of workspace but tenant {tenant.name!r} is "
                    f"capped at {tenant.quota_bytes} bytes")
        if spec.deadline_s is not None:
            estimate = self.estimate_service_s(spec)
            if estimate > spec.deadline_s:
                raise AdmissionRejected(
                    "deadline-infeasible", f"job {spec.label} asks for a "
                    f"{spec.deadline_s:.3f}s deadline but needs an "
                    f"estimated {estimate:.3f}s even starting now")
