"""Run provenance for benchmark records.

Every ``BENCH_*.json`` the harness writes embeds a ``provenance``
block so a number can always be traced back to the exact code, config,
and host that produced it: git commit (and dirty flag), a SHA-256 over
the canonicalized benchmark configuration, the RNG seed, a UTC
timestamp, and coarse host facts.  Two records are comparable exactly
when their ``config_hash`` values match — ``repro.obs diff`` uses that
to refuse apples-to-oranges comparisons unless forced.

Everything degrades gracefully: outside a git checkout (tarball
installs, CI artifact re-runs) the git fields come back ``None``
instead of raising.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Dict, Optional


def git_revision(cwd: Optional[str] = None) -> Dict[str, object]:
    """Current git commit SHA and dirty flag (``None``s outside a repo)."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True).stdout
        return {"commit": sha, "dirty": bool(status.strip())}
    except (OSError, subprocess.SubprocessError):
        return {"commit": None, "dirty": None}


def config_hash(config: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form of ``config``.

    Canonical means sorted keys and no incidental whitespace, so two
    configs hash equal iff they are value-equal.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def host_info() -> Dict[str, object]:
    """Coarse facts about the machine running the benchmark."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "node": platform.node(),
    }


def provenance(config: Dict[str, object], seed: Optional[int] = None,
               cwd: Optional[str] = None,
               topology: Optional[Dict[str, int]] = None) -> Dict[str, object]:
    """The full provenance block for one benchmark record.

    ``topology`` carries the size counters of the largest simulated
    graph (node/GPU/vertex/link counts — see
    :meth:`repro.hw.cluster.ClusterSpec.counts`).  Cluster records
    stamp them so a throughput regression is attributable to a changed
    topology size, not just an opaque config-hash mismatch.
    """
    block: Dict[str, object] = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "seed": seed,
        "config_hash": config_hash(config),
        "host": host_info(),
    }
    if topology is not None:
        block["topology"] = dict(topology)
    block.update(git_revision(cwd))
    return block
