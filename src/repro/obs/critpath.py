"""Critical-path attribution: *which* work determined the wall time.

The paper's core question — which phase and which interconnect gates a
multi-GPU sort — has so far been answered by eyeballing timelines.
This module answers it mechanically: walk the completed span tree
backwards from the finish and extract the **blocking chain**, the
sequence of activities that had to complete, one after another, for the
run to end when it did.  Every instant of wall time lands in exactly
one :class:`Segment`, so the segments *partition* the window — their
durations sum to the wall time, which makes the rollups ("62% of this
sort was the inter-node fabric") trustworthy rather than impressionistic.

The walk is purely temporal, which is exact for the barrier-phased
sorts this repo runs: at any time ``t`` the blocking activity is the
longest-running span still active at ``t`` (the *long pole*); its start
is the next decision point.  Where no work span covers ``t`` the chain
records a wait, classified as ``queue-wait`` (top level), ``engine-wait``
(inside a copy span with no flow moving — DMA-slot contention, retry
backoff, parked on a down link) or ``fault`` (overlapping an injected
fault window).

Attribution of each critical segment:

==============  ========================================================
category        meaning / ``detail``
==============  ========================================================
``kernel``      a compute span on a GPU blocked the run; detail = phase
``host``        a CPU-side span (NUMA merge, host sort) blocked the run
``link``        a flow under a copy span blocked it; detail = the
                flow's bottleneck link, ``tier`` = intra/inter when a
                ``tier_of`` mapping is supplied
``engine-wait``  a copy span was blocking but no child flow was moving
``fault``       a wait overlapping an injected fault window; detail =
                ``kind@target``
``queue-wait``  wall time with no work span at all (scheduler gaps,
                per-job queueing)
==============  ========================================================

Everything here is post-processing over an immutable trace — it can
run mid-simulation (post-mortem bundles snapshot the chain up to the
failure instant) or after the run completed.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import Span, Trace

#: Span actors that mark orchestration, not resource work: the root
#: sort markers and supervisor/job bookkeeping spans.
_MARKER_ACTORS = ("sort", "supervisor")

#: Tolerance for "covers this instant" comparisons, in simulated
#: seconds; well below any modeled latency.
_EPS = 1e-15


@dataclass(frozen=True)
class InFlight:
    """A phase still executing at the end of the window.

    Spans are recorded on *completion*, so when a run dies mid-phase
    the dying phase has no span yet — passing its name and start time
    here puts it on the critical path anyway, refined by the live
    (unretired) flows the recorder still tracks: flow-covered stretches
    become ``link`` segments, uncovered stretches ``engine-wait``.
    """

    phase: str
    start: float
    actor: str = ""


@dataclass(frozen=True)
class Segment:
    """One critical-path interval with its attribution."""

    start: float
    end: float
    #: ``kernel`` / ``host`` / ``link`` / ``engine-wait`` / ``fault`` /
    #: ``queue-wait``.
    category: str
    #: Phase of the blocking span ("" for top-level waits).
    phase: str
    #: Actor of the blocking span (GPU/CPU name; "" for top-level waits).
    actor: str
    #: Category-specific refinement: link name, fault ``kind@target``...
    detail: str = ""
    #: Fabric tier of a ``link`` segment (``intra``/``inter``) when the
    #: caller supplied a tier mapping.
    tier: Optional[str] = None

    @property
    def duration(self) -> float:
        """Length of the segment in simulated seconds."""
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view."""
        return {"start": self.start, "end": self.end,
                "duration": self.duration, "category": self.category,
                "phase": self.phase, "actor": self.actor,
                "detail": self.detail, "tier": self.tier}


@dataclass
class CriticalPath:
    """The blocking chain of one run (or one job inside a run).

    ``segments`` are time-ascending and partition ``[start, end]``
    exactly: every instant belongs to one segment, so
    ``sum(s.duration) == end - start`` up to float associativity.
    """

    start: float
    end: float
    segments: List[Segment]
    label: str = ""

    @property
    def wall(self) -> float:
        """Wall time of the window the chain explains."""
        return self.end - self.start

    @property
    def covered(self) -> float:
        """Sum of segment durations (== wall, by construction)."""
        return sum(s.duration for s in self.segments)

    def validate(self, rel_tol: float = 1e-9) -> None:
        """Assert the partition invariant; raises ``ValueError`` if
        segments do not sum to the wall time or are not contiguous."""
        if not self.segments:
            if self.wall > rel_tol:
                raise ValueError(f"empty chain over {self.wall}s window")
            return
        tol = max(abs(self.wall), 1.0) * rel_tol
        if abs(self.covered - self.wall) > tol:
            raise ValueError(
                f"critical path covers {self.covered}s of a "
                f"{self.wall}s window")
        cursor = self.start
        for seg in self.segments:
            if abs(seg.start - cursor) > tol:
                raise ValueError(
                    f"chain gap/overlap at {cursor}s: next segment "
                    f"starts at {seg.start}s")
            cursor = seg.end
        if abs(cursor - self.end) > tol:
            raise ValueError(f"chain ends at {cursor}s, window at "
                             f"{self.end}s")

    # -- rollups -----------------------------------------------------------
    def _rollup(self, key) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for seg in self.segments:
            name = key(seg)
            if name is None:
                continue
            totals[name] = totals.get(name, 0.0) + seg.duration
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def by_category(self) -> Dict[str, float]:
        """Critical seconds per category, largest first."""
        return self._rollup(lambda s: s.category)

    def by_phase(self) -> Dict[str, float]:
        """Critical seconds per phase (waits land under ``(wait)``)."""
        return self._rollup(lambda s: s.phase or "(wait)")

    def by_actor(self) -> Dict[str, float]:
        """Critical seconds per actor (GPU/CPU), largest first."""
        return self._rollup(lambda s: s.actor or None)

    def by_tier(self) -> Dict[str, float]:
        """Critical seconds per fabric tier (``link`` segments only)."""
        return self._rollup(lambda s: s.tier)

    def by_detail(self) -> Dict[str, float]:
        """Critical seconds per detail (links, fault kinds)."""
        return self._rollup(lambda s: s.detail or None)

    @property
    def dominant(self) -> Optional[Segment]:
        """The single longest critical segment."""
        return max(self.segments, key=lambda s: s.duration, default=None)

    def dominant_phase(self) -> Optional[str]:
        """The phase holding the most critical seconds."""
        phases = self.by_phase()
        return next(iter(phases)) if phases else None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view (bundles, ``--json`` exports)."""
        return {
            "label": self.label,
            "start": self.start,
            "end": self.end,
            "wall_s": self.wall,
            "segments": [seg.to_dict() for seg in self.segments],
            "by_category": self.by_category(),
            "by_phase": self.by_phase(),
            "by_tier": self.by_tier(),
            "by_actor": self.by_actor(),
        }


def _blocking_chain(items: Sequence[Tuple[float, float, object]],
                    t0: float, t1: float
                    ) -> List[Tuple[float, float, object]]:
    """The backward blocking walk over ``(start, end, payload)`` items.

    Returns time-ascending ``(start, end, payload-or-None)`` triples
    partitioning ``[t0, t1]``; ``None`` marks a wait (no item active).
    At each cursor the blocker is the *earliest-started* item still
    active — the long pole — found in O(log n) via a prefix-max-end
    index over the items sorted by start.
    """
    clipped = []
    for start, end, payload in items:
        lo, hi = max(start, t0), min(end, t1)
        if hi > lo:
            clipped.append((lo, hi, payload))
    if t1 <= t0:
        return []
    if not clipped:
        return [(t0, t1, None)]
    clipped.sort(key=lambda item: (item[0], item[1]))
    starts = [item[0] for item in clipped]
    prefix_max_end: List[float] = []
    best = float("-inf")
    for _start, end, _payload in clipped:
        if end > best:
            best = end
        prefix_max_end.append(best)

    chain: List[Tuple[float, float, object]] = []
    t = t1
    while t > t0 + _EPS:
        idx = bisect_left(starts, t)        # items with start < t
        if idx == 0:
            chain.append((t0, t, None))
            break
        i = bisect_left(prefix_max_end, t, 0, idx)
        if i >= idx:
            # Nothing started-before-t is still running: a wait back to
            # the latest completion.
            gap_to = max(prefix_max_end[idx - 1], t0)
            chain.append((gap_to, t, None))
            t = gap_to
            continue
        start, _end, payload = clipped[i]
        cut = max(start, t0)
        chain.append((cut, t, payload))
        t = cut
    chain.reverse()
    return chain


def _work_spans(trace: Trace) -> List[Span]:
    """Spans representing resource work (no roots/markers/faults)."""
    work = []
    for span in trace.spans:
        if span.end <= span.start:
            continue
        if span.phase == "Replan" or span.phase.startswith("Fault:"):
            continue
        actor = span.actor
        if actor in _MARKER_ACTORS or actor.startswith("job:"):
            continue
        work.append(span)
    return work


def fault_windows_of(machine, end: Optional[float] = None
                     ) -> List[Tuple[str, str, float, float]]:
    """``(kind, target, start, end)`` windows from the fault timeline.

    Still-open windows are clipped to ``end`` (default: now).
    """
    if machine.faults is None:
        return []
    horizon = end if end is not None else machine.env.now
    windows = []
    for record in machine.faults.timeline:
        close = record.end if record.end is not None else horizon
        # Keep zero-width windows: a kill that opened at the horizon
        # (i.e. at the death instant) is exactly what a post-mortem
        # needs to show, and the wait-splitting midpoint test never
        # matches an empty interval.
        if close >= record.start:
            windows.append((record.kind, record.target, record.start,
                            close))
    return windows


def _wait_segments(start: float, end: float, category: str, phase: str,
                   actor: str,
                   faults: Sequence[Tuple[str, str, float, float]]
                   ) -> List[Segment]:
    """A wait interval, split where injected fault windows overlap it."""
    cuts = {start, end}
    for _kind, _target, lo, hi in faults:
        if lo < end and hi > start:
            cuts.add(max(lo, start))
            cuts.add(min(hi, end))
    edges = sorted(cuts)
    segments = []
    for lo, hi in zip(edges, edges[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        hit = next(((kind, target) for kind, target, flo, fhi in faults
                    if flo <= mid < fhi), None)
        if hit is not None:
            segments.append(Segment(lo, hi, "fault", phase, actor,
                                    detail=f"{hit[0]}@{hit[1]}"))
        else:
            segments.append(Segment(lo, hi, category, phase, actor))
    return segments


def _coalesce(segments: List[Segment]) -> List[Segment]:
    """Merge adjacent segments with identical attribution."""
    merged: List[Segment] = []
    for seg in segments:
        if (merged
                and merged[-1].category == seg.category
                and merged[-1].phase == seg.phase
                and merged[-1].actor == seg.actor
                and merged[-1].detail == seg.detail
                and merged[-1].tier == seg.tier
                and abs(merged[-1].end - seg.start) <= _EPS):
            merged[-1] = Segment(merged[-1].start, seg.end, seg.category,
                                 seg.phase, seg.actor, seg.detail,
                                 seg.tier)
        else:
            merged.append(seg)
    return merged


def _link_capacities(recorder) -> Dict[str, float]:
    """Last-known capacity per link name (max over directions)."""
    if recorder is None:
        return {}
    capacities: Dict[str, float] = {}
    for (name, _direction), total in recorder.link_totals().items():
        capacity = total["capacity"]
        if capacity > capacities.get(name, 0.0):
            capacities[name] = capacity
    return capacities


def _bottleneck_link(links: Sequence[str],
                     capacities: Dict[str, float]) -> str:
    """The route's lowest-capacity link (first hop wins ties)."""
    best = None
    best_cap = float("inf")
    for name in links:
        cap = capacities.get(name, float("inf"))
        if cap < best_cap:
            best, best_cap = name, cap
    return best if best is not None else (links[0] if links else "")


def _flow_actor(label: str) -> str:
    """Destination actor of a flow from its ``phase:src->dst`` label."""
    if "->" in label:
        return label.rsplit("->", 1)[-1]
    return ""


def critical_path(trace: Trace, recorder=None, *,
                  start: Optional[float] = None,
                  end: Optional[float] = None,
                  tier_of: Optional[Callable[[str], str]] = None,
                  fault_windows: Optional[Sequence[Tuple[str, str, float,
                                                         float]]] = None,
                  label: str = "",
                  in_flight: Optional[InFlight] = None) -> CriticalPath:
    """Extract the blocking chain of a completed (or failing) run.

    ``trace`` supplies the span tree; ``recorder`` (optional) refines
    copy spans into per-link flow segments and engine waits.  ``start``
    and ``end`` bound the window (default: the work spans' extent).
    ``tier_of`` maps link names to fabric tiers for the per-tier
    rollup; ``fault_windows`` (see :func:`fault_windows_of`) classifies
    waits overlapping injected faults.  ``in_flight`` (needs an
    explicit ``end``) marks a phase still executing at the window's
    end — see :class:`InFlight`.

    The returned path's segments partition ``[start, end]`` exactly —
    see :meth:`CriticalPath.validate`.
    """
    work = _work_spans(trace)
    faults = list(fault_windows or ())
    items: List[Tuple[float, float, object]] = \
        [(s.start, s.end, s) for s in work]
    if (in_flight is not None and end is not None
            and end > in_flight.start):
        items.append((in_flight.start, end, in_flight))
    if not items:
        t0 = start if start is not None else 0.0
        t1 = end if end is not None else t0
        waits = (_wait_segments(t0, t1, "queue-wait", "", "", faults)
                 if t1 > t0 else [])
        return CriticalPath(t0, t1, waits, label=label)
    t0 = start if start is not None else min(lo for lo, _hi, _p in items)
    t1 = end if end is not None else max(hi for _lo, hi, _p in items)

    flows_by_span: Dict[int, List[object]] = {}
    all_flow_items: List[Tuple[float, float, object]] = []
    if recorder is not None:
        for record in recorder.flows:
            if record.parent_span is not None:
                flows_by_span.setdefault(record.parent_span,
                                         []).append(record)
            flow_end = record.end if record.end is not None else t1
            if flow_end > record.start:
                all_flow_items.append((record.start, flow_end, record))
    capacities = _link_capacities(recorder)

    segments: List[Segment] = []
    chain = _blocking_chain(items, t0, t1)
    for seg_start, seg_end, span in chain:
        if span is None:
            segments.extend(_wait_segments(seg_start, seg_end,
                                           "queue-wait", "", "", faults))
            continue
        if isinstance(span, InFlight):
            # The dying phase: its spans never closed, so refine by the
            # flows that moved during it (live, retired or aborted).
            for flo, fhi, record in _blocking_chain(all_flow_items,
                                                    seg_start, seg_end):
                if record is None:
                    segments.extend(_wait_segments(
                        flo, fhi, "engine-wait", span.phase, span.actor,
                        faults))
                else:
                    link = _bottleneck_link(record.links, capacities)
                    tier = tier_of(link) if (tier_of and link) else None
                    segments.append(Segment(
                        flo, fhi, "link", span.phase,
                        _flow_actor(record.label) or span.actor,
                        detail=link, tier=tier))
            continue
        child_flows = flows_by_span.get(span.id, ()) if span.id else ()
        if child_flows:
            flow_items = []
            for record in child_flows:
                flow_end = (record.end if record.end is not None
                            else t1)
                flow_items.append((record.start, flow_end, record))
            for flo, fhi, record in _blocking_chain(flow_items,
                                                    seg_start, seg_end):
                if record is None:
                    segments.extend(_wait_segments(
                        flo, fhi, "engine-wait", span.phase, span.actor,
                        faults))
                else:
                    link = _bottleneck_link(record.links, capacities)
                    tier = tier_of(link) if (tier_of and link) else None
                    segments.append(Segment(flo, fhi, "link", span.phase,
                                            span.actor, detail=link,
                                            tier=tier))
        else:
            category = "host" if "cpu" in span.actor else "kernel"
            segments.append(Segment(seg_start, seg_end, category,
                                    span.phase, span.actor,
                                    detail=span.phase))
    path = CriticalPath(t0, t1, _coalesce(segments), label=label)
    path.validate()
    return path


def job_critical_path(trace: Trace, recorder, job_result, *,
                      tier_of: Optional[Callable[[str], str]] = None,
                      fault_windows: Optional[Sequence] = None
                      ) -> CriticalPath:
    """The blocking chain of one service job, queue wait included.

    ``job_result`` is the job's :class:`~repro.serve.job.JobResult`;
    its spans are recovered with :func:`repro.obs.jobs.job_trace` and
    the window starts at submission, so queueing shows up as a leading
    ``queue-wait`` segment and the wall equals the job's latency.
    """
    from repro.errors import ServiceError
    from repro.obs.jobs import job_trace

    label = job_result.spec.label
    if job_result.started_s is None:
        raise ServiceError(
            f"job {label!r} never ran ({job_result.status}); no "
            "critical path to extract")
    filtered, root = job_trace(trace, label, job_result.gpu_ids)
    path = critical_path(filtered, recorder, start=root.start,
                         end=root.end, tier_of=tier_of,
                         fault_windows=fault_windows,
                         label=label)
    submitted = job_result.submitted_s
    if submitted is not None and root.start > submitted + _EPS:
        waits = _wait_segments(submitted, root.start, "queue-wait", "",
                               f"job:{label}",
                               list(fault_windows or ()))
        path = CriticalPath(submitted, path.end,
                            waits + path.segments, label=label)
        path.validate()
    return path


def tenant_rollup(paths: Sequence[CriticalPath]
                  ) -> Dict[str, Dict[str, float]]:
    """Per-tenant critical seconds by category, over per-job paths.

    Job labels are ``tenant/id``; each path contributes its rollup to
    its tenant's totals (plus a ``total`` key).
    """
    tenants: Dict[str, Dict[str, float]] = {}
    for path in paths:
        tenant = path.label.split("/", 1)[0] if path.label else "(none)"
        entry = tenants.setdefault(tenant, {"total": 0.0})
        entry["total"] += path.wall
        for category, seconds in path.by_category().items():
            entry[category] = entry.get(category, 0.0) + seconds
    return dict(sorted(tenants.items()))
