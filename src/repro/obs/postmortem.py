"""Post-mortem bundles: a provenance-stamped snapshot of a failing run.

When a supervised sort gives up (:class:`~repro.errors.RecoveryError`
after exhausting replans, or a terminal
:class:`~repro.errors.SortError`) or the service's circuit breaker
quarantines hardware, the interesting state — the recent event stream,
the fault timeline, the blocking chain up to the failure instant — is
about to become unreachable.  This module freezes it into a single
JSON *bundle* that ``python -m repro.obs postmortem`` can render later,
on a different machine, with no access to the original run.

A bundle is self-contained and versioned:

* ``provenance`` — commit/dirty flag, config hash over the failure
  context, host facts (same block BENCH records carry);
* ``error`` — exception type and message, plus the phase that was
  executing when the run died;
* ``critical_path`` — the blocking chain up to the failure instant
  (see :mod:`repro.obs.critpath`), so the first question — *what was
  the run doing, and what was it waiting on* — is answered offline;
* ``fault_timeline`` — every injected fault window, closed or still
  open at failure time;
* ``recent_events`` — the tail of the (possibly ring-bounded) event
  stream, newest last;
* ``metrics`` / ``link_totals`` / ``engine_busy`` / ``ring`` — the
  aggregate rollups, which survive flight-recorder eviction even when
  the raw events did not.

Writing a bundle never raises into the failing run: the dump happens
while the original exception is propagating, and a post-mortem that
dies while reporting a death helps nobody — failures are swallowed
(the path is simply not produced).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.obs.critpath import InFlight, critical_path, fault_windows_of
from repro.obs.provenance import provenance

#: Schema version stamped into every bundle.
BUNDLE_VERSION = 1

#: Default tail length of the event stream embedded in a bundle.
DEFAULT_MAX_EVENTS = 400


def build_bundle(machine, error: BaseException, *,
                 phase: Optional[str] = None,
                 phase_started: Optional[float] = None,
                 label: Optional[str] = None,
                 kind: str = "failure",
                 max_events: int = DEFAULT_MAX_EVENTS) -> Dict[str, object]:
    """Snapshot ``machine``'s observable state around ``error``.

    ``phase`` names the phase executing at failure time (with
    ``phase_started``, its start time — that puts the dying phase on
    the critical path even though its spans never closed); ``label``
    the failing job (service runs); ``kind`` distinguishes
    ``"failure"`` bundles from ``"quarantine"`` ones.  Works with or
    without an attached recorder — the critical path only needs the
    span trace.
    """
    now = machine.env.now
    recorder = machine.obs
    faults = fault_windows_of(machine, end=now)
    context = {
        "kind": kind,
        "error": type(error).__name__,
        "phase": phase,
        "label": label,
    }
    bundle: Dict[str, object] = {
        "bundle_version": BUNDLE_VERSION,
        "kind": kind,
        "at_s": now,
        "system": machine.spec.name,
        "label": label,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "phase": phase,
        },
        "provenance": provenance(context),
        "fault_timeline": [
            {"kind": fk, "target": target, "start": start, "end": end}
            for fk, target, start, end in faults],
    }
    in_flight = (InFlight(phase=phase, start=phase_started)
                 if phase is not None and phase_started is not None
                 else None)
    tier_of = getattr(machine.spec.topology, "tier_of", None)
    try:
        path = critical_path(machine.trace, recorder, end=now,
                             tier_of=tier_of,
                             fault_windows=faults,
                             label=label or "",
                             in_flight=in_flight)
        bundle["critical_path"] = path.to_dict()
    except (ReproError, ValueError):
        bundle["critical_path"] = None
    if recorder is not None:
        events = recorder.events[-max_events:] if max_events > 0 else []
        bundle["recent_events"] = [event.to_dict() for event in events]
        bundle["metrics"] = recorder.metrics.snapshot()
        bundle["ring"] = recorder.ring_stats()
        bundle["link_totals"] = {
            f"{link}:{direction}": totals
            for (link, direction), totals
            in sorted(recorder.link_totals(end=now).items())}
        bundle["engine_busy"] = recorder.engine_busy(end=now)
    else:
        bundle["recent_events"] = []
        bundle["metrics"] = {}
        bundle["ring"] = {"enabled": False}
        bundle["link_totals"] = {}
        bundle["engine_busy"] = {}
    return bundle


def _slug(text: str) -> str:
    """Filesystem-safe slug of a label."""
    return "".join(c if c.isalnum() or c in "-_" else "-"
                   for c in text) or "run"


def write_bundle(bundle: Dict[str, object], directory: str) -> str:
    """Write ``bundle`` under ``directory`` and return its path.

    The name is deterministic given the bundle — kind, label slug and
    the failure's simulated time — so re-running a seeded scenario
    overwrites rather than accumulates.
    """
    os.makedirs(directory, exist_ok=True)
    label = _slug(str(bundle.get("label") or "run"))
    at_ms = int(round(float(bundle.get("at_s", 0.0)) * 1e3))
    name = f"postmortem-{bundle.get('kind', 'failure')}-{label}-{at_ms}ms.json"
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def load_bundle(path: str) -> Dict[str, object]:
    """Read a bundle back; raises :class:`ReproError` on malformed input."""
    try:
        with open(path, encoding="utf-8") as handle:
            bundle = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read post-mortem bundle {path}: {exc}") \
            from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed post-mortem bundle {path}: {exc}") \
            from exc
    if not isinstance(bundle, dict) or "bundle_version" not in bundle:
        raise ReproError(f"{path} is not a post-mortem bundle "
                         "(missing bundle_version)")
    return bundle


def render_bundle(bundle: Dict[str, object], top: int = 10) -> str:
    """Human-readable report of a bundle for the terminal."""
    lines: List[str] = []
    error = bundle.get("error") or {}
    lines.append(f"post-mortem [{bundle.get('kind', 'failure')}] on "
                 f"{bundle.get('system', '?')} at "
                 f"t={float(bundle.get('at_s', 0.0)):.6f}s")
    if bundle.get("label"):
        lines.append(f"  job: {bundle['label']}")
    lines.append(f"  error: {error.get('type', '?')}: "
                 f"{error.get('message', '')}")
    if error.get("phase"):
        lines.append(f"  failing phase: {error['phase']}")
    prov = bundle.get("provenance") or {}
    commit = prov.get("commit")
    if commit:
        dirty = " (dirty)" if prov.get("dirty") else ""
        lines.append(f"  commit: {str(commit)[:12]}{dirty}")

    faults = bundle.get("fault_timeline") or []
    if faults:
        lines.append("")
        lines.append(f"fault timeline ({len(faults)} windows):")
        for window in faults[-top:]:
            lines.append(
                f"  {window['kind']:<16} {window['target']:<14} "
                f"[{window['start']:.6f}s .. {window['end']:.6f}s]")

    path = bundle.get("critical_path")
    if path:
        lines.append("")
        lines.append(f"critical path ({path['wall_s']:.6f}s wall, "
                     f"{len(path['segments'])} segments):")
        by_category = path.get("by_category") or {}
        for category, seconds in by_category.items():
            share = seconds / path["wall_s"] if path["wall_s"] else 0.0
            lines.append(f"  {category:<12} {seconds:>12.6f}s  "
                         f"{share:>6.1%}")
        lines.append("  hottest segments:")
        segments = sorted(path.get("segments") or [],
                          key=lambda s: -s["duration"])[:top]
        for seg in segments:
            what = seg["phase"] or seg["category"]
            where = seg["actor"] or "-"
            detail = f" via {seg['detail']}" if seg.get("detail") else ""
            lines.append(
                f"    {seg['duration']:>10.6f}s  {seg['category']:<12} "
                f"{what:<16} on {where}{detail}")
        by_phase = path.get("by_phase") or {}
        if by_phase:
            dominant = next(iter(by_phase))
            lines.append(f"  dominant phase: {dominant} "
                         f"({by_phase[dominant]:.6f}s critical)")

    ring = bundle.get("ring") or {}
    if ring.get("enabled"):
        lines.append("")
        lines.append(
            f"flight recorder: {ring.get('events_retained', 0)} events "
            f"retained, {ring.get('evicted_total', 0)} evicted")
    events = bundle.get("recent_events") or []
    if events:
        counts: Dict[str, int] = {}
        for event in events:
            counts[event.get("kind", "?")] = \
                counts.get(event.get("kind", "?"), 0) + 1
        summary = ", ".join(f"{kind}={count}" for kind, count
                            in sorted(counts.items()))
        lines.append("")
        lines.append(f"recent events ({len(events)}): {summary}")
    return "\n".join(lines)
