"""Benchmark record comparison: ``repro.obs diff old.json new.json``.

Loads two ``BENCH_*.json`` records, matches their scenarios by name,
and compares every shared numeric metric.  Metrics have a *direction*:
``wall_s`` going up is a regression, ``events_per_sec`` going up is an
improvement, and metrics with no known direction (counters like
``events`` or ``keys``) are reported as informational drift only.

A comparison **regresses** when any directed metric moves the wrong
way by more than ``threshold`` (relative, default 10%).  The CLI maps
that onto the exit code so CI can gate on it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: Metric-name suffixes where a *decrease* is an improvement.
LOWER_IS_BETTER = ("wall_s", "clean_s", "faulted_s", "sim_s",
                   "fault_downtime_s", "link_wait_s", "overhead_pct",
                   "ref_wall_s", "latency_s", "queue_wait_s")
#: Metric-name suffixes where an *increase* is an improvement.
HIGHER_IS_BETTER = ("_per_sec", "_per_s", "speedup", "speedup_vs_seed")


def metric_direction(name: str) -> Optional[int]:
    """``-1`` if lower is better, ``+1`` if higher is better, else None."""
    for suffix in LOWER_IS_BETTER:
        if name == suffix or name.endswith("_" + suffix):
            return -1
    for suffix in HIGHER_IS_BETTER:
        if name.endswith(suffix):
            return +1
    return None


@dataclass
class MetricDelta:
    """One metric's movement between two records."""

    scenario: str
    metric: str
    old: float
    new: float
    #: Relative change, (new - old) / |old|; inf when old == 0.
    change: float
    #: -1 lower-better, +1 higher-better, None undirected.
    direction: Optional[int]
    regressed: bool
    improved: bool

    @property
    def change_pct(self) -> float:
        """The relative change as a percentage."""
        return self.change * 100.0


@dataclass
class DiffResult:
    """Full comparison of two benchmark records."""

    benchmark: str
    deltas: List[MetricDelta]
    only_old: List[str]
    only_new: List[str]
    comparable: bool
    threshold: float
    #: Per-scenario diagnostics for entries that could not be compared
    #: (e.g. a scenario value that is not a metrics mapping).  These are
    #: reported, not fatal: the rest of the record still diffs.
    problems: List[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.problems is None:
            self.problems = []

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        """True when no directed metric regressed past the threshold."""
        return not self.regressions


def load_bench(path: str) -> Dict[str, object]:
    """Load one benchmark record, validating the minimal shape.

    Every malformed input — missing file, invalid JSON, a legacy
    schema-less record without a ``scenarios`` mapping — raises
    :class:`~repro.errors.ReproError` with a diagnostic naming what was
    actually found, so the CLI can report it and exit cleanly instead
    of surfacing a raw ``KeyError`` or traceback.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read benchmark record {path}: "
                         f"{exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise ReproError(
            f"{path} is not a benchmark record: expected a JSON object, "
            f"got {type(record).__name__}")
    if "scenarios" not in record:
        keys = ", ".join(sorted(map(str, record))) or "(empty)"
        raise ReproError(
            f"{path} is not a benchmark record (no 'scenarios' key; "
            f"top-level keys: {keys}).  Legacy schema-less BENCH files "
            f"need re-generating with the current bench harness.")
    if not isinstance(record["scenarios"], dict):
        raise ReproError(
            f"{path}: 'scenarios' must be an object mapping scenario "
            f"names to metrics, got "
            f"{type(record['scenarios']).__name__}")
    return record


def _numeric_metrics(scenario: Dict[str, object]) -> Dict[str, float]:
    out = {}
    for name, value in scenario.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and math.isfinite(value):
            out[name] = float(value)
    return out


def diff_records(old: Dict[str, object], new: Dict[str, object],
                 threshold: float = 0.10) -> DiffResult:
    """Compare two loaded benchmark records.

    ``threshold`` is the relative movement beyond which a directed
    metric counts as a regression (or an improvement).
    """
    if threshold < 0:
        raise ReproError(f"threshold must be >= 0, got {threshold}")
    old_scenarios = old.get("scenarios", {})
    new_scenarios = new.get("scenarios", {})
    old_prov = old.get("provenance")
    new_prov = new.get("provenance")
    comparable = True
    if (isinstance(old_prov, dict) and isinstance(new_prov, dict)
            and old_prov.get("config_hash") and new_prov.get("config_hash")):
        comparable = old_prov["config_hash"] == new_prov["config_hash"]
    deltas: List[MetricDelta] = []
    problems: List[str] = []
    for name in sorted(set(old_scenarios) & set(new_scenarios)):
        bad = False
        for side, scenarios in (("old", old_scenarios),
                                ("new", new_scenarios)):
            entry = scenarios[name]
            if not isinstance(entry, dict):
                problems.append(
                    f"scenario '{name}' in the {side} record is "
                    f"{type(entry).__name__}, not a metrics mapping — "
                    f"skipped")
                bad = True
        if bad:
            continue
        before = _numeric_metrics(old_scenarios[name])
        after = _numeric_metrics(new_scenarios[name])
        for metric in sorted(set(before) & set(after)):
            a, b = before[metric], after[metric]
            if a == b:
                continue
            change = (b - a) / abs(a) if a != 0 else math.inf
            direction = metric_direction(metric)
            moved = abs(change) > threshold
            worse = (direction == -1 and b > a) or (direction == +1 and b < a)
            better = direction is not None and not worse
            deltas.append(MetricDelta(
                scenario=name, metric=metric, old=a, new=b, change=change,
                direction=direction,
                regressed=moved and worse,
                improved=moved and better))
    return DiffResult(
        benchmark=str(new.get("benchmark", old.get("benchmark", "?"))),
        deltas=deltas,
        only_old=sorted(set(old_scenarios) - set(new_scenarios)),
        only_new=sorted(set(new_scenarios) - set(old_scenarios)),
        comparable=comparable,
        threshold=threshold,
        problems=problems)


def diff_files(old_path: str, new_path: str,
               threshold: float = 0.10) -> DiffResult:
    """Load and compare two benchmark record files."""
    return diff_records(load_bench(old_path), load_bench(new_path),
                        threshold=threshold)


def format_diff(result: DiffResult, verbose: bool = False) -> str:
    """Human-readable report; regressions first."""
    lines = [f"benchmark: {result.benchmark}  "
             f"(threshold {result.threshold * 100:.0f}%)"]
    if not result.comparable:
        lines.append("WARNING: config hashes differ — records were made "
                     "from different configurations")
    for problem in result.problems:
        lines.append(f"WARNING: {problem}")
    for label, scenarios in (("only in old", result.only_old),
                             ("only in new", result.only_new)):
        if scenarios:
            lines.append(f"{label}: {', '.join(scenarios)}")

    def _row(delta: MetricDelta, tag: str) -> str:
        arrow = "+" if delta.change >= 0 else ""
        return (f"  {tag:>10}  {delta.scenario}.{delta.metric}: "
                f"{delta.old:.6g} -> {delta.new:.6g} "
                f"({arrow}{delta.change_pct:.1f}%)")

    for delta in result.regressions:
        lines.append(_row(delta, "REGRESSED"))
    for delta in result.improvements:
        lines.append(_row(delta, "improved"))
    if verbose:
        for delta in result.deltas:
            if not delta.regressed and not delta.improved:
                lines.append(_row(delta, "drift"))
    if result.ok:
        lines.append(f"OK: no regressions beyond "
                     f"{result.threshold * 100:.0f}% "
                     f"({len(result.improvements)} improvement(s), "
                     f"{len(result.deltas)} metric(s) moved)")
    else:
        lines.append(f"FAIL: {len(result.regressions)} metric(s) regressed "
                     f"beyond {result.threshold * 100:.0f}%")
    return "\n".join(lines)
