"""Derived time-series telemetry over a recorded event stream.

Where :mod:`repro.obs.recorder` captures *transitions*, this module
turns them into the views an operator actually reads: per-link
bandwidth/utilization step series, saturation windows, copy-engine
occupancy, flow-count gauges, and ASCII sparklines for terminal
reports.  Everything here is pure post-processing — it can run on a
live recorder mid-simulation or after the run completed.

The flow model is fluid and piecewise constant, so the step series are
*exact*, not sampled: between two :class:`~repro.obs.events.LinkRate`
events the link's allocated bandwidth really is the recorded value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import (
    EngineAcquire,
    EngineRelease,
    LinkRate,
)
from repro.obs.recorder import Recorder

#: Unicode eighth-block ramp for sparklines.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 40,
              peak: Optional[float] = None) -> str:
    """Render ``values`` as a fixed-width ASCII sparkline.

    The series is resampled to ``width`` columns (max over each bin, so
    short saturation spikes stay visible); ``peak`` overrides the
    normalization maximum.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not values:
        return " " * width
    top = peak if peak is not None else max(values)
    if top <= 0:
        return _BLOCKS[0] * width
    columns = []
    n = len(values)
    for col in range(width):
        lo = col * n // width
        hi = max(lo + 1, (col + 1) * n // width)
        level = max(values[lo:hi]) / top
        columns.append(_BLOCKS[min(8, int(round(level * 8)))])
    return "".join(columns)


@dataclass
class LinkSeries:
    """Step series of one link direction's allocated bandwidth."""

    link: str
    direction: str
    #: (time, rate B/s) change points, in time order.
    points: List[Tuple[float, float]]
    #: Saturation reference (raw capacity x fault factor) at last change.
    capacity: float

    def rate_at(self, t: float) -> float:
        """Allocated bandwidth at time ``t`` (0 before the first point)."""
        rate = 0.0
        for when, value in self.points:
            if when > t:
                break
            rate = value
        return rate

    def integrate(self, start: float, end: float) -> float:
        """Bytes carried in ``[start, end]`` (exact under the fluid model)."""
        if end <= start:
            return 0.0
        total = 0.0
        rate = 0.0
        cursor = start
        for when, value in self.points:
            if when >= end:
                break
            if when > cursor:
                total += rate * (when - cursor)
                cursor = when
            rate = value
        total += rate * (end - cursor)
        return total

    def mean_rate(self, start: float, end: float) -> float:
        """Time-weighted mean bandwidth over ``[start, end]``."""
        if end <= start:
            return 0.0
        return self.integrate(start, end) / (end - start)

    @property
    def peak(self) -> float:
        """Highest allocated bandwidth ever seen on this direction."""
        return max((rate for _t, rate in self.points), default=0.0)

    def peak_in(self, start: float, end: float) -> float:
        """Highest allocated bandwidth inside ``[start, end]``."""
        if end <= start:
            return 0.0
        peak = self.rate_at(start)
        for when, value in self.points:
            if start <= when < end and value > peak:
                peak = value
        return peak

    def busy_windows(self, threshold: float) -> List[Tuple[float, float]]:
        """Maximal intervals with rate >= ``threshold`` (absolute B/s)."""
        windows: List[Tuple[float, float]] = []
        open_at: Optional[float] = None
        for when, value in self.points:
            if open_at is None:
                if value >= threshold:
                    open_at = when
            elif value < threshold:
                windows.append((open_at, when))
                open_at = None
        if open_at is not None:
            end = max(self.points[-1][0], open_at)
            windows.append((open_at, end))
        return windows

    def saturation_windows(self, fraction: float = 0.95
                           ) -> List[Tuple[float, float]]:
        """Maximal intervals at >= ``fraction`` of the link capacity."""
        if self.capacity <= 0:
            return []
        return self.busy_windows(fraction * self.capacity)

    def samples(self, buckets: int = 40, start: float = 0.0,
                end: Optional[float] = None) -> List[float]:
        """Mean rate per bucket — the sparkline input."""
        if end is None:
            end = self.points[-1][0] if self.points else 0.0
        if end <= start or buckets < 1:
            return []
        width = (end - start) / buckets
        return [self.mean_rate(start + i * width, start + (i + 1) * width)
                for i in range(buckets)]


def link_series(recorder: Recorder) -> Dict[Tuple[str, str], LinkSeries]:
    """Per-``(link, direction)`` bandwidth step series from the stream."""
    series: Dict[Tuple[str, str], LinkSeries] = {}
    for event in recorder.events:
        if not isinstance(event, LinkRate):
            continue
        key = (event.link, event.direction)
        entry = series.get(key)
        if entry is None:
            entry = LinkSeries(link=event.link, direction=event.direction,
                               points=[], capacity=event.capacity)
            series[key] = entry
        entry.points.append((event.t, event.rate))
        entry.capacity = event.capacity
    return series


@dataclass
class LinkReport:
    """Rollup of one link direction over a window."""

    link: str
    direction: str
    #: Highest allocated bandwidth inside the window.
    peak: float
    mean: float
    capacity: float
    bytes: float
    saturated_s: float
    windows: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def peak_utilization(self) -> float:
        """Peak allocated share of the capacity (within the window)."""
        return self.peak / self.capacity if self.capacity > 0 else 0.0

    @property
    def mean_utilization(self) -> float:
        """Time-weighted mean share of the capacity over the window."""
        return self.mean / self.capacity if self.capacity > 0 else 0.0


def link_report(recorder: Recorder, start: float = 0.0,
                end: Optional[float] = None,
                saturation_fraction: float = 0.95) -> List[LinkReport]:
    """Per-link rollups sorted hottest-first.

    "Hottest" is the *time-weighted mean utilization* over the window —
    a link briefly touching 100% ranks below one pinned at 80% for the
    whole window, which is what makes phase-scoped queries (the AC922
    X-Bus during the exchange, say) come out right.

    ``start``/``end`` bound the averaging window (e.g. one phase's
    window); ``end`` defaults to the last event time the recorder saw.
    Peak and saturation windows are clipped to the bounds.
    """
    horizon = end if end is not None else recorder.last_time
    reports = []
    for (link, direction), series in link_series(recorder).items():
        windows = []
        for lo, hi in series.saturation_windows(saturation_fraction):
            lo, hi = max(lo, start), min(hi, horizon)
            if hi > lo:
                windows.append((lo, hi))
        reports.append(LinkReport(
            link=link, direction=direction,
            peak=series.peak_in(start, horizon),
            mean=(series.mean_rate(start, horizon)
                  if horizon > start else 0.0),
            capacity=series.capacity,
            bytes=series.integrate(start, horizon),
            saturated_s=sum(hi - lo for lo, hi in windows),
            windows=windows))
    reports.sort(key=lambda r: (-r.mean_utilization, -r.peak_utilization,
                                -r.bytes, r.link, r.direction))
    return reports


def tier_summary(reports: List[LinkReport],
                 tier_of) -> Dict[str, Dict[str, float]]:
    """Aggregate link rollups per fabric tier.

    ``tier_of`` maps a link resource name to its tier (see
    :meth:`repro.hw.topology.Topology.tier_of` — ``"intra"`` for
    in-machine links, ``"inter"`` for cluster-fabric links).  Per tier:
    link-direction count, total GB moved, the byte-weighted mean
    utilization and the hottest single direction's peak utilization —
    the at-a-glance answer to "is the fabric or the machine the
    bottleneck" on a cluster run.
    """
    tiers: Dict[str, Dict[str, float]] = {}
    for report in reports:
        entry = tiers.setdefault(tier_of(report.link), {
            "links": 0.0, "bytes": 0.0, "mean_x_bytes": 0.0,
            "peak_utilization": 0.0})
        entry["links"] += 1
        entry["bytes"] += report.bytes
        entry["mean_x_bytes"] += report.mean_utilization * report.bytes
        entry["peak_utilization"] = max(entry["peak_utilization"],
                                        report.peak_utilization)
    for entry in tiers.values():
        entry["mean_utilization"] = (entry.pop("mean_x_bytes")
                                     / entry["bytes"]
                                     if entry["bytes"] else 0.0)
    return tiers


def engine_occupancy(recorder: Recorder, end: Optional[float] = None
                     ) -> Dict[str, float]:
    """Busy fraction per copy engine (slot held / window length)."""
    horizon = end if end is not None else recorder.last_time
    if horizon <= 0:
        return {}
    busy: Dict[str, float] = {}
    held_since: Dict[str, float] = {}
    depth: Dict[str, int] = {}
    for event in recorder.events:
        if isinstance(event, EngineAcquire):
            name = event.engine
            if depth.get(name, 0) == 0:
                held_since[name] = event.t
            depth[name] = depth.get(name, 0) + 1
        elif isinstance(event, EngineRelease):
            name = event.engine
            count = depth.get(name, 0)
            if count == 1:
                busy[name] = (busy.get(name, 0.0)
                              + event.t - held_since.pop(name))
            depth[name] = max(0, count - 1)
    for name, since in held_since.items():
        if depth.get(name, 0) > 0:
            busy[name] = busy.get(name, 0.0) + max(0.0, horizon - since)
    return {name: total / horizon for name, total in sorted(busy.items())}


def flow_count_series(recorder: Recorder) -> List[Tuple[float, int]]:
    """(time, active flow count) step series from the flow lifecycles."""
    deltas: List[Tuple[float, int]] = []
    for record in recorder.flows:
        deltas.append((record.start, 1))
        if record.end is not None:
            deltas.append((record.end, -1))
    deltas.sort()
    series: List[Tuple[float, int]] = []
    count = 0
    for when, delta in deltas:
        count += delta
        if series and series[-1][0] == when:
            series[-1] = (when, count)
        else:
            series.append((when, count))
    return series
