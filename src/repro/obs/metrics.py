"""Counter / gauge / histogram primitives and their registry.

The metric model follows the conventions of fleet telemetry systems
(Prometheus, DCGM): monotonically increasing **counters**, last-value
**gauges** that remember their extremes, and fixed-bucket
**histograms**.  A :class:`MetricsRegistry` names and owns them; the
observability recorder updates the registry as events arrive, and
:meth:`MetricsRegistry.snapshot` renders everything as plain dicts for
reports and JSON export.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ReproError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value metric that tracks its minimum and maximum."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        """Record a new current value."""
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta``."""
        self.set(self.value + delta)

    def to_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value,
                "min": self.min if self.updates else None,
                "max": self.max if self.updates else None,
                "updates": self.updates}


class Histogram:
    """Fixed-boundary bucketed distribution (upper-inclusive buckets).

    ``bounds`` are the finite upper bounds; one overflow bucket catches
    everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds:
            raise ReproError(f"histogram {name!r} needs bounds")
        ordered = list(bounds)
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ReproError(
                f"histogram {name!r} bounds must be strictly increasing")
        self.name = name
        self.bounds: List[float] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket boundaries.

        Returns the upper bound of the bucket containing the quantile,
        clamped into ``[min, max]`` so the estimate never leaves the
        observed range — coarse, but monotone and allocation-free,
        which is all a progress report needs.  Edge cases: an empty
        histogram answers 0.0 for every quantile; ``q=0.0`` is the
        observed minimum and ``q=1.0`` the observed maximum exactly.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= target and count:
                if index < len(self.bounds):
                    return min(self.bounds[index], self.max)
                return self.max
        return self.max

    def to_dict(self) -> Dict[str, object]:
        return {"type": "histogram", "count": self.count,
                "mean": self.mean,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "buckets": {("inf" if i == len(self.bounds)
                             else repr(self.bounds[i])): c
                            for i, c in enumerate(self.counts)}}


class MetricsRegistry:
    """Named home of every metric of one run."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter ``name``."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get (or create) the gauge ``name``."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        """Get (or create) the histogram ``name``."""
        return self._get(
            name, Histogram,
            lambda: Histogram(name, bounds if bounds is not None
                              else DEFAULT_BOUNDS))

    def _get(self, name: str, expected: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, expected):
            raise ReproError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {expected.__name__}")
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.items())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as plain dicts, sorted by name."""
        return {name: metric.to_dict()
                for name, metric in sorted(self._metrics.items())}


#: Default histogram bounds: decades from 1 us to 1000 s, sized for
#: durations in simulated seconds; metrics in other units (bytes,
#: counts) should pass explicit bounds.
DEFAULT_BOUNDS = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
                  1000.0]


def _prom_name(name: str) -> str:
    """Mangle a registry name into the Prometheus charset.

    Legal metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; everything
    else (dots, dashes, slashes) becomes an underscore.
    """
    mangled = "".join(c if (c.isascii() and (c.isalnum() or c in "_:"))
                      else "_" for c in name)
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def prometheus_text(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text
    exposition format.

    Counters get a ``_total`` suffix, histograms expand to cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``, and gauge
    extremes are exported as companion ``_min``/``_max`` gauges.  The
    output ends with a newline, as the format requires.
    """
    lines: List[str] = []
    for name, metric in sorted(snapshot.items()):
        kind = metric.get("type")
        prom = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(f"{prom}_total {metric['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {metric['value']}")
            if metric.get("min") is not None:
                lines.append(f"{prom}_min {metric['min']}")
            if metric.get("max") is not None:
                lines.append(f"{prom}_max {metric['max']}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in metric.get("buckets", {}).items():
                cumulative += count
                le = "+Inf" if bound == "inf" else bound
                lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
            count = metric.get("count", 0)
            mean = metric.get("mean", 0.0)
            lines.append(f"{prom}_sum {mean * count}")
            lines.append(f"{prom}_count {count}")
    return "\n".join(lines) + "\n" if lines else ""
