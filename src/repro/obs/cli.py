"""The ``python -m repro.obs`` command line: profile a simulated run.

Subcommands over one instrumented-workload runner:

``timeline``
    Run a sort with observability on and write the full Perfetto /
    Chrome trace JSON — nested phase→flow slices, per-link bandwidth
    counter tracks, fault markers.

``timeline``, ``summary`` and ``critical-path`` also run whole
*service episodes*: ``--service N`` offers N jobs through
:class:`~repro.serve.SortService` at estimated capacity, and
``--job tenant/id`` narrows the output to one job's spans (see
:mod:`repro.obs.jobs`).
``links``
    Top-N hottest links (peak utilization), with time-weighted mean
    bandwidth, saturation windows and an ASCII sparkline per link.
``summary``
    Phase × actor × link rollup plus engine occupancy and the key
    counters of the run.
``critical-path``
    The blocking chain that determined the run's wall time (see
    :mod:`repro.obs.critpath`): every critical segment attributed to
    {kernel, link+tier, host, engine-wait, fault, queue-wait} with
    rollups per category/phase/tier — and per tenant on ``--service``
    episodes.
``metrics``
    Run a workload and print the recorder's metrics registry in
    Prometheus text exposition format.
``postmortem``
    Render a saved post-mortem bundle (see
    :mod:`repro.obs.postmortem`) — no simulation, pure reading.
``diff``
    Compare two ``BENCH_*.json`` records and flag regressions beyond a
    threshold; exits non-zero when any directed metric regressed.

Every workload verb accepts ``--flight-recorder`` (bounded ring
buffers instead of unbounded event lists), ``--max-replans`` and
``--postmortem-dir`` (dump a bundle when a supervised run or service
job dies, or the breaker quarantines GPUs).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Optional, Tuple

from repro.bench.report import Table
from repro.data import DISTRIBUTIONS, generate, key_dtype
from repro.errors import ReproError
from repro.hw import FABRICS, make_cluster, system_by_name
from repro.obs.diff import diff_files, format_diff
from repro.obs.telemetry import (
    engine_occupancy,
    link_report,
    link_series,
    sparkline,
    tier_summary,
)
from repro.runtime import Machine
from repro.sort import het_sort, hier_sort, p2p_sort, rp_sort

#: Physical keys simulated per run; --keys scales them logically.
PHYSICAL_KEYS = 500_000
#: Physical keys with --quick (CI smoke: seconds, not minutes).
QUICK_PHYSICAL_KEYS = 50_000

_ALGORITHMS = {"p2p": p2p_sort, "het": het_sort, "rp": rp_sort,
               "hier": hier_sort}
_SYSTEMS = ("ibm-ac922", "delta-d22x", "dgx-a100")


def _parse_gpu_ids(text: str) -> Tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"GPU ids must be comma-separated integers, got {text!r}")


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--system", choices=_SYSTEMS, default="dgx-a100")
    parser.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                        default="p2p")
    parser.add_argument("--keys", default="2e9",
                        help="logical key count (default 2e9)")
    parser.add_argument("--distribution", choices=sorted(DISTRIBUTIONS),
                        default="uniform")
    parser.add_argument("--gpus", type=_parse_gpu_ids, default=None,
                        help="comma-separated GPU ids, e.g. 0,2,4,6")
    parser.add_argument("--nodes", type=int, default=1, metavar="N",
                        help="cluster size: N > 1 builds an N-node "
                             "cluster of --system and runs the "
                             "hierarchical sort over its fabric")
    parser.add_argument("--fabric", choices=FABRICS, default="fat-tree",
                        help="cluster fabric generator with --nodes > 1 "
                             "(default fat-tree)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--quick", action="store_true",
                        help="small physical arrays (CI smoke; simulated "
                             "timing is unchanged)")
    parser.add_argument("--faults", type=float, default=0.0, metavar="I",
                        help="install a generated fault plan of this "
                             "intensity (0 = none)")
    parser.add_argument("--fault-horizon", type=float, default=0.4,
                        help="simulated-seconds span the fault windows "
                             "land in")
    parser.add_argument("--supervised", action="store_true",
                        help="run under the self-healing SortSupervisor "
                             "(checkpoints, replanning, speculation)")
    parser.add_argument("--kill-gpu", type=int, default=None,
                        metavar="GPU",
                        help="hard-fail this GPU mid-run (pair with "
                             "--supervised to trace a replanned run)")
    parser.add_argument("--kill-at", type=float, default=0.5,
                        metavar="T",
                        help="simulated time of the --kill-gpu / "
                             "--kill-node failure (default 0.5)")
    parser.add_argument("--kill-node", type=int, default=None,
                        metavar="NODE",
                        help="kill this whole cluster node mid-run "
                             "(all GPUs + NIC links; needs --nodes > 1)")
    parser.add_argument("--service", type=int, default=None, metavar="N",
                        help="instead of one sort, run a service episode "
                             "offering N jobs at estimated capacity")
    parser.add_argument("--flight-recorder", action="store_true",
                        help="bound the recorder with ring buffers "
                             "(always-on mode: capped per-kind event "
                             "retention, running aggregates)")
    parser.add_argument("--max-replans", type=int, default=None,
                        metavar="N",
                        help="override the supervisor's replan budget "
                             "(0 = first mid-phase failure is terminal)")
    parser.add_argument("--postmortem-dir", default=None, metavar="DIR",
                        help="dump post-mortem bundles here on terminal "
                             "failures / breaker quarantine")


def _install_faults(machine, spec, args) -> None:
    fault_events = []
    if getattr(args, "kill_gpu", None) is not None:
        from repro.faults.events import GpuFail

        fault_events.append(GpuFail(at=args.kill_at, gpu=args.kill_gpu))
    if getattr(args, "kill_node", None) is not None:
        from repro.faults.events import NodeDown

        fault_events.append(NodeDown(at=args.kill_at, node=args.kill_node))
    if args.faults > 0 or fault_events:
        from repro.faults.plan import FaultPlan

        if args.faults > 0:
            base = FaultPlan.generate(
                spec, seed=args.seed, intensity=args.faults,
                horizon=args.fault_horizon)
            fault_events.extend(base.events)
            plan = FaultPlan(events=tuple(fault_events),
                             transient_failure_prob=
                             base.transient_failure_prob,
                             seed=args.seed)
        else:
            plan = FaultPlan(events=tuple(fault_events))
        machine.install_faults(plan)


class _FailedRun(Exception):
    """A supervised workload died terminally; carries the run context.

    ``critical-path`` still renders the blocking chain up to the
    failure; other verbs report the error (and any bundle paths) and
    exit non-zero.
    """

    def __init__(self, machine, recorder, error: BaseException,
                 postmortems, failed_phase=None, failed_phase_started=None):
        super().__init__(str(error))
        self.machine = machine
        self.recorder = recorder
        self.error = error
        self.postmortems = list(postmortems)
        #: Phase executing at death (and its start), when known.
        self.failed_phase = failed_phase
        self.failed_phase_started = failed_phase_started


def _make_recorder(args):
    """A configured recorder when --flight-recorder asks for one."""
    if getattr(args, "flight_recorder", False):
        from repro.obs.recorder import Recorder, RingConfig

        return Recorder(ring=RingConfig())
    return None


def _supervisor_config(args):
    """The supervisor template honouring the CLI failure knobs."""
    from repro.recovery import SupervisorConfig

    config = SupervisorConfig(
        postmortem_dir=getattr(args, "postmortem_dir", None))
    if getattr(args, "max_replans", None) is not None:
        config.max_replans = args.max_replans
    return config


def _run_instrumented(args):
    """Run the requested sort with observability on.

    Returns ``(machine, recorder, result)``; a terminal supervised
    failure raises :class:`_FailedRun` with the same context.
    """
    algorithm = "hier" if args.nodes > 1 else args.algorithm
    if args.nodes > 1:
        spec = make_cluster(args.system, args.nodes, fabric=args.fabric)
    else:
        spec = system_by_name(args.system)
    logical = float(args.keys)
    budget = QUICK_PHYSICAL_KEYS if args.quick else PHYSICAL_KEYS
    physical = max(1, min(budget, int(logical)))
    scale = max(1.0, logical / physical)
    machine = Machine(spec, scale=scale, fast_functional=True)
    recorder = machine.enable_observability(_make_recorder(args))
    _install_faults(machine, spec, args)
    keys = generate(physical, args.distribution, key_dtype("int"),
                    seed=args.seed)
    if algorithm == "hier":
        from repro.errors import SortError
        from repro.sort import HierConfig

        config = HierConfig(
            postmortem_dir=getattr(args, "postmortem_dir", None))
        if getattr(args, "max_replans", None) is not None:
            config.max_node_replans = args.max_replans
        try:
            result = hier_sort(machine, keys, config=config)
        except SortError as exc:
            raise _FailedRun(
                machine, recorder, exc,
                getattr(exc, "postmortems", ()) or (),
                failed_phase=getattr(exc, "failing_phase", None),
                failed_phase_started=getattr(
                    exc, "failing_phase_started", None)) from exc
        return machine, recorder, result
    gpu_ids = args.gpus
    if gpu_ids is None and algorithm == "p2p":
        count = 1
        while count * 2 <= spec.num_gpus:
            count *= 2
        gpu_ids = spec.preferred_gpu_set(count)
    if getattr(args, "supervised", False):
        from repro.errors import SortError
        from repro.recovery import SortSupervisor

        supervisor = SortSupervisor(machine, _supervisor_config(args))
        try:
            result = supervisor.sort(keys, algorithm=algorithm,
                                     gpu_ids=gpu_ids)
        except SortError as exc:
            raise _FailedRun(machine, recorder, exc,
                             supervisor.postmortems,
                             failed_phase=supervisor.failed_phase,
                             failed_phase_started=(
                                 supervisor.failed_phase_started)) from exc
    else:
        result = _ALGORITHMS[algorithm](machine, keys,
                                        gpu_ids=gpu_ids)
    return machine, recorder, result


def _run_service(args):
    """Run a ``--service N`` episode with observability on.

    Returns ``(machine, recorder, report)``.  A reference sort on a
    throwaway machine calibrates the platform's sorting rate first, so
    the admission controller's estimates agree with the executor and
    the episode is not dominated by deadline rejections.
    """
    from repro.recovery import SortSupervisor
    from repro.serve import (
        ServiceConfig,
        SortService,
        Tenant,
        WorkloadSpec,
        generate_jobs,
    )

    spec = system_by_name(args.system)
    logical = float(args.keys)
    budget = QUICK_PHYSICAL_KEYS if args.quick else PHYSICAL_KEYS
    physical = max(1, min(budget, int(logical)))
    scale = max(1.0, logical / physical)

    probe = Machine(spec, scale=scale, fast_functional=True)
    reference = SortSupervisor(probe).sort(
        generate(physical, args.distribution, key_dtype("int"),
                 seed=args.seed))
    rate = (reference.logical_keys
            / (reference.duration * len(reference.gpu_ids)))

    machine = Machine(spec, scale=scale, fast_functional=True)
    recorder = machine.enable_observability(_make_recorder(args))
    _install_faults(machine, spec, args)
    workload = WorkloadSpec(
        jobs=args.service,
        arrival_rate=spec.num_gpus * rate / (_mix_mean_fraction()
                                             * physical * scale),
        base_keys=physical,
        est_service_s=physical * scale / rate,
        seed=args.seed)
    service = SortService(
        machine,
        tenants=[Tenant(name) for name in workload.tenants],
        config=ServiceConfig(gpu_rate_keys_per_s=rate,
                             distribution=args.distribution,
                             supervisor=_supervisor_config(args),
                             postmortem_dir=getattr(args,
                                                    "postmortem_dir",
                                                    None)))
    report = service.run(generate_jobs(workload))
    if service.postmortems:
        for path in service.postmortems:
            print(f"  post-mortem bundle: {path}", file=sys.stderr)
    return machine, recorder, report


def _mix_mean_fraction() -> float:
    """Expected keys-fraction of one job under the default mix."""
    from repro.serve.workload import DEFAULT_MIX

    return sum(fraction * weight
               for _, fraction, _, _, weight in DEFAULT_MIX)


def _job_result(report, label):
    """The :class:`~repro.serve.job.JobResult` with ``label``."""
    for result in report.results:
        if result.spec.label == label:
            return result
    return None


def _describe_run(machine, result) -> str:
    return (f"{result.algorithm} sort on {machine.spec.display_name}, "
            f"GPUs {result.gpu_ids}: "
            f"{result.logical_keys / 1e9:.2f}B keys in "
            f"{result.duration:.3f} s")


def _describe_service(machine, report) -> str:
    return (f"service episode on {machine.spec.display_name}: "
            f"{report.offered} offered, {report.completed} completed, "
            f"{report.rejected} rejected, {report.jobs_per_s:.1f} jobs/s, "
            f"p99 latency {report.p99_latency_s:.3f} s")


def cmd_timeline(args) -> int:
    from repro.analysis.timeline import write_chrome_trace

    if args.service is not None:
        machine, recorder, report = _run_service(args)
        trace, label = machine.trace, f"service@{args.system}"
        if args.job:
            from repro.obs.jobs import job_trace

            job = _job_result(report, args.job)
            try:
                trace, _ = job_trace(machine.trace, args.job,
                                     job.gpu_ids if job else ())
            except ReproError as exc:
                print(str(exc), file=sys.stderr)
                return 1
            # Counter tracks are machine-wide; a per-job timeline keeps
            # only the job's own spans.
            recorder = None
            label = f"job {args.job}@{args.system}"
        path = write_chrome_trace(trace, args.output, label=label,
                                  recorder=recorder)
        print(_describe_service(machine, report))
        print(f"  {len(trace.spans)} spans"
              + (f", {len(recorder.events)} events, "
                 f"{len(recorder.flows)} flows" if recorder else
                 f" (job {args.job})"))
        print(f"  timeline written to {path} "
              f"(open in https://ui.perfetto.dev)")
        return 0
    machine, recorder, result = _run_instrumented(args)
    path = write_chrome_trace(machine.trace, args.output,
                              label=f"{result.algorithm}@{args.system}",
                              recorder=recorder)
    print(_describe_run(machine, result))
    print(f"  {len(machine.trace.spans)} spans, "
          f"{len(recorder.events)} events, {len(recorder.flows)} flows")
    print(f"  timeline written to {path} "
          f"(open in https://ui.perfetto.dev)")
    return 0


def cmd_links(args) -> int:
    if args.service is not None:
        machine, recorder, report = _run_service(args)
        described = _describe_service(machine, report)
    else:
        machine, recorder, result = _run_instrumented(args)
        described = _describe_run(machine, result)
    start, end = 0.0, None
    scope = ""
    if args.phase:
        window = machine.trace.phase_window(args.phase)
        if window is None:
            known = ", ".join(machine.trace.phases())
            print(f"no phase {args.phase!r} in this run (phases: {known})",
                  file=sys.stderr)
            return 1
        start, end = window
        scope = f" during {args.phase} [{start:.3f}s, {end:.3f}s]"
    print(described)
    tier_of = machine.spec.topology.tier_of
    reports = link_report(recorder, start=start, end=end,
                          saturation_fraction=args.saturation)
    tiers = tier_summary(reports, tier_of)
    if args.tier:
        reports = [r for r in reports if tier_of(r.link) == args.tier]
        scope += f" ({args.tier}-node tier)"
        if not reports:
            print(f"no {args.tier}-tier link carried traffic in this "
                  "window", file=sys.stderr)
            return 1
    if len(tiers) > 1:
        # Cluster run: lead with the per-tier rollup so "fabric or
        # machine?" is answered before the per-link table.
        for tier, entry in sorted(tiers.items()):
            print(f"  {tier}-node tier: {int(entry['links'])} link dirs, "
                  f"{entry['bytes'] / 1e9:.1f} GB moved, "
                  f"{entry['mean_utilization']:.1%} mean / "
                  f"{entry['peak_utilization']:.1%} peak utilization")
    print(f"hottest links{scope}:")
    series = link_series(recorder)
    horizon = end if end is not None else recorder.last_time
    table = Table(["link", "dir", "mean util", "peak util", "mean GB/s",
                   "cap GB/s", "GB moved", "sat s",
                   "bandwidth over time"])
    for report in reports[:args.top]:
        entry = series[(report.link, report.direction)]
        samples = entry.samples(buckets=args.width, start=start,
                                end=horizon)
        table.add_row(
            report.link, report.direction,
            f"{report.mean_utilization:5.1%}",
            f"{report.peak_utilization:5.1%}",
            f"{report.mean / 1e9:.1f}",
            f"{report.capacity / 1e9:.1f}",
            f"{report.bytes / 1e9:.1f}",
            f"{report.saturated_s:.3f}",
            sparkline(samples, width=args.width, peak=entry.capacity))
    table.print()
    if reports:
        worst = reports[0]
        line = (f"hottest: {worst.link}.{worst.direction} at "
                f"{worst.mean_utilization:.1%} mean / "
                f"{worst.peak_utilization:.1%} peak utilization")
        if worst.saturated_s > 0:
            windows = ", ".join(f"[{lo:.3f}s, {hi:.3f}s]"
                                for lo, hi in worst.windows[:4])
            line += (f", saturated for {worst.saturated_s:.3f} s "
                     f"({windows})")
        print(line)
    return 0


def cmd_summary(args) -> int:
    from repro.analysis.utilization import utilization_report

    if args.service is not None:
        return _cmd_summary_service(args)
    machine, recorder, result = _run_instrumented(args)
    print(_describe_run(machine, result))
    print()

    trace = machine.trace
    phase_table = Table(["phase", "wall s", "spans", "GB"],
                        title="phases (wall = last end - first start)")
    for phase, duration in trace.phase_durations().items():
        spans = trace.phase_spans(phase)
        phase_table.add_row(phase, f"{duration:.3f}", len(spans),
                            f"{trace.total_bytes(phase) / 1e9:.1f}")
    phase_table.print()

    phases = [p for p in trace.phases() if not p.startswith("Fault:")]
    actor_table = Table(["actor", *phases, "busy s"],
                        title="actor busy seconds by phase")
    for actor_report in utilization_report(trace):
        cells = [f"{actor_report.by_phase.get(p, 0.0):.3f}"
                 for p in phases]
        actor_table.add_row(actor_report.actor, *cells,
                            f"{actor_report.busy:.3f}")
    actor_table.print()

    link_table = Table(["link", "dir", "GB moved", "mean GB/s",
                        "peak util", "sat s"],
                       title="links (whole run)")
    for report in link_report(recorder)[:args.top]:
        link_table.add_row(report.link, report.direction,
                           f"{report.bytes / 1e9:.1f}",
                           f"{report.mean / 1e9:.1f}",
                           f"{report.peak_utilization:5.1%}",
                           f"{report.saturated_s:.3f}")
    link_table.print()

    occupancy = engine_occupancy(recorder)
    if occupancy:
        engine_table = Table(["engine", "busy"],
                             title="copy-engine occupancy")
        for name, fraction in occupancy.items():
            engine_table.add_row(name, f"{fraction:5.1%}")
        engine_table.print()

    counters = {name: metric for name, metric in recorder.metrics
                if name in ("flows.started", "flows.retired",
                            "flows.aborted", "kernels.launched")}
    if counters:
        print("counters: " + "  ".join(
            f"{name}={int(metric.value)}"
            for name, metric in sorted(counters.items())))
    return 0


def _cmd_summary_service(args) -> int:
    from repro.analysis.utilization import utilization_report
    from repro.obs.jobs import job_trace

    machine, recorder, report = _run_service(args)
    print(_describe_service(machine, report))
    print()

    if args.job is None:
        jobs_table = Table(
            ["job", "size", "gpus", "status", "reason", "wait s",
             "latency s"],
            title="jobs (filter with --job tenant/id)")
        for result in report.results:
            jobs_table.add_row(
                result.spec.label,
                f"{result.spec.keys * machine.scale / 1e9:.2f}B",
                ",".join(map(str, result.gpu_ids)) or "-",
                result.status, result.reason or "-",
                ("-" if result.queue_wait_s is None
                 else f"{result.queue_wait_s:.3f}"),
                ("-" if result.latency_s is None
                 else f"{result.latency_s:.3f}"))
        jobs_table.print()
        return 0

    job = _job_result(report, args.job)
    try:
        trace, root = job_trace(machine.trace, args.job,
                                job.gpu_ids if job else ())
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"job {args.job}: {job.status} on GPUs {list(job.gpu_ids)}, "
          f"queued {job.queue_wait_s:.3f} s, "
          f"ran [{root.start:.3f} s, {root.end:.3f} s]")
    print()

    phase_table = Table(["phase", "wall s", "spans", "GB"],
                        title=f"phases of job {args.job}")
    for phase, duration in trace.phase_durations().items():
        spans = trace.phase_spans(phase)
        phase_table.add_row(phase, f"{duration:.3f}", len(spans),
                            f"{trace.total_bytes(phase) / 1e9:.1f}")
    phase_table.print()

    phases = [p for p in trace.phases() if not p.startswith("Fault:")]
    actor_table = Table(["actor", *phases, "busy s"],
                        title="actor busy seconds by phase")
    for actor_report in utilization_report(trace):
        cells = [f"{actor_report.by_phase.get(p, 0.0):.3f}"
                 for p in phases]
        actor_table.add_row(actor_report.actor, *cells,
                            f"{actor_report.busy:.3f}")
    actor_table.print()

    link_table = Table(["link", "dir", "GB moved", "mean GB/s",
                        "peak util", "sat s"],
                       title="links during the job's window (machine-"
                             "wide: concurrent jobs share links)")
    for link in link_report(recorder, start=root.start,
                            end=root.end)[:args.top]:
        link_table.add_row(link.link, link.direction,
                           f"{link.bytes / 1e9:.1f}",
                           f"{link.mean / 1e9:.1f}",
                           f"{link.peak_utilization:5.1%}",
                           f"{link.saturated_s:.3f}")
    link_table.print()
    return 0


def _print_critical_path(path, top: int, tiers: bool = True) -> None:
    """Terminal rendering of one :class:`~repro.obs.critpath.CriticalPath`."""
    label = f" of {path.label}" if path.label else ""
    print(f"critical path{label}: {path.wall:.6f} s wall over "
          f"[{path.start:.6f} s, {path.end:.6f} s], "
          f"{len(path.segments)} segments summing {path.covered:.6f} s")
    table = Table(["dur s", "share", "category", "phase", "actor",
                   "detail", "window"],
                  title=f"longest critical segments (top {top})")
    for seg in sorted(path.segments, key=lambda s: -s.duration)[:top]:
        share = seg.duration / path.wall if path.wall else 0.0
        table.add_row(
            f"{seg.duration:.6f}", f"{share:5.1%}", seg.category,
            seg.phase or "-", seg.actor or "-",
            (seg.detail + (f" [{seg.tier}]" if seg.tier else ""))
            or "-",
            f"[{seg.start:.4f}, {seg.end:.4f}]")
    table.print()
    rollups = [("category", path.by_category()),
               ("phase", path.by_phase())]
    if tiers and path.by_tier():
        rollups.append(("tier", path.by_tier()))
    for name, totals in rollups:
        parts = ", ".join(
            f"{key}={seconds:.6f}s ({seconds / path.wall:.1%})"
            for key, seconds in totals.items()) or "-"
        print(f"  by {name}: {parts}")
    dominant = path.dominant_phase()
    if dominant:
        print(f"  dominant phase: {dominant}")


def cmd_critical_path(args) -> int:
    import json

    from repro.obs.critpath import (
        critical_path,
        fault_windows_of,
        job_critical_path,
        tenant_rollup,
    )

    if args.service is not None:
        machine, recorder, report = _run_service(args)
        print(_describe_service(machine, report))
        print()
        tier_of = machine.spec.topology.tier_of
        faults = fault_windows_of(machine)
        if args.job:
            job = _job_result(report, args.job)
            if job is None:
                known = ", ".join(sorted(r.spec.label
                                         for r in report.results))
                print(f"no job {args.job!r} in this episode "
                      f"(jobs: {known})", file=sys.stderr)
                return 1
            try:
                path = job_critical_path(machine.trace, recorder, job,
                                         tier_of=tier_of,
                                         fault_windows=faults)
            except ReproError as exc:
                print(str(exc), file=sys.stderr)
                return 1
            _print_critical_path(path, args.top)
            if args.json:
                with open(args.json, "w", encoding="utf-8") as handle:
                    json.dump(path.to_dict(), handle, indent=2)
                print(f"  critical path written to {args.json}")
            return 0
        paths = []
        for result in report.results:
            if result.started_s is None:
                continue
            try:
                paths.append(job_critical_path(
                    machine.trace, recorder, result, tier_of=tier_of,
                    fault_windows=faults))
            except ReproError:
                continue
        jobs_table = Table(
            ["job", "wall s", "dominant", "kernel", "link", "waits"],
            title="per-job critical paths (detail with --job tenant/id)")
        for path in paths:
            categories = path.by_category()
            waits = sum(categories.get(kind, 0.0) for kind in
                        ("queue-wait", "engine-wait", "fault"))
            jobs_table.add_row(
                path.label, f"{path.wall:.3f}",
                path.dominant_phase() or "-",
                f"{categories.get('kernel', 0.0):.3f}",
                f"{categories.get('link', 0.0):.3f}",
                f"{waits:.3f}")
        jobs_table.print()
        tenants = tenant_rollup(paths)
        tenant_table = Table(
            ["tenant", "critical s", "kernel", "link", "host",
             "queue-wait", "engine-wait", "fault"],
            title="critical seconds per tenant")
        for tenant, entry in tenants.items():
            tenant_table.add_row(
                tenant, f"{entry['total']:.3f}",
                *(f"{entry.get(kind, 0.0):.3f}" for kind in
                  ("kernel", "link", "host", "queue-wait",
                   "engine-wait", "fault")))
        tenant_table.print()
        if args.json:
            payload = {"jobs": [path.to_dict() for path in paths],
                       "tenants": tenants}
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"  critical paths written to {args.json}")
        return 0

    code = 0
    end = None
    in_flight = None
    try:
        machine, recorder, result = _run_instrumented(args)
        print(_describe_run(machine, result))
    except _FailedRun as failed:
        from repro.obs.critpath import InFlight

        machine, recorder = failed.machine, failed.recorder
        print(f"run FAILED: {type(failed.error).__name__}: "
              f"{failed.error}", file=sys.stderr)
        for path in failed.postmortems:
            print(f"  post-mortem bundle: {path}", file=sys.stderr)
        print("critical path up to the failure:")
        code = 1
        end = machine.env.now
        if (failed.failed_phase is not None
                and failed.failed_phase_started is not None):
            in_flight = InFlight(phase=failed.failed_phase,
                                 start=failed.failed_phase_started)
    print()
    path = critical_path(machine.trace, recorder,
                         end=end,
                         tier_of=machine.spec.topology.tier_of,
                         fault_windows=fault_windows_of(machine, end=end),
                         in_flight=in_flight)
    _print_critical_path(path, args.top)
    if recorder is not None and recorder.ring is not None:
        stats = recorder.ring_stats()
        print(f"  flight recorder: {stats['events_retained']} events "
              f"retained, {stats['evicted_total']} evicted")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(path.to_dict(), handle, indent=2)
        print(f"  critical path written to {args.json}")
    return code


def cmd_metrics(args) -> int:
    from repro.obs.metrics import prometheus_text

    try:
        if args.service is not None:
            machine, recorder, _report = _run_service(args)
        else:
            machine, recorder, _result = _run_instrumented(args)
    except _FailedRun as failed:
        # The registry survives the failure; export what was measured.
        recorder = failed.recorder
        print(f"run FAILED: {type(failed.error).__name__}: "
              f"{failed.error}", file=sys.stderr)
    sys.stdout.write(prometheus_text(recorder.metrics.snapshot()))
    return 0


def cmd_postmortem(args) -> int:
    from repro.obs.postmortem import load_bundle, render_bundle

    try:
        bundle = load_bundle(args.bundle)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_bundle(bundle, top=args.top))
    return 0


def cmd_diff(args) -> int:
    try:
        result = diff_files(args.old, args.new, threshold=args.threshold)
    except ReproError as exc:
        # Malformed inputs (missing file, bad JSON, legacy schema-less
        # record) exit 2 — distinct from exit 1, a real regression.
        print(f"diff error: {exc}", file=sys.stderr)
        return 2
    print(format_diff(result, verbose=args.verbose))
    return 0 if result.ok else 1


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability over simulated multi-GPU sorting: "
                    "timelines, link telemetry, rollups, bench diffs.")
    commands = parser.add_subparsers(dest="command", required=True)

    timeline = commands.add_parser(
        "timeline", help="run a sort and write the Perfetto trace JSON")
    _add_workload_args(timeline)
    timeline.add_argument("-o", "--output", default="timeline.json",
                          help="output path (default timeline.json)")
    timeline.add_argument("--job", default=None, metavar="TENANT/ID",
                          help="with --service: write only this job's "
                               "spans")
    timeline.set_defaults(handler=cmd_timeline)

    links = commands.add_parser(
        "links", help="top-N hottest links with saturation windows")
    _add_workload_args(links)
    links.add_argument("--top", type=int, default=8)
    links.add_argument("--phase", default=None,
                       help="restrict the window to one phase "
                            "(e.g. Merge)")
    links.add_argument("--tier", choices=("intra", "inter"), default=None,
                       help="only links of one fabric tier: 'intra' "
                            "(inside a machine) or 'inter' (cluster "
                            "fabric: NICs, InfiniBand, switches)")
    links.add_argument("--saturation", type=float, default=0.95,
                       help="fraction of capacity counting as saturated")
    links.add_argument("--width", type=int, default=40,
                       help="sparkline width in columns")
    links.set_defaults(handler=cmd_links)

    summary = commands.add_parser(
        "summary", help="phase x actor x link rollup of one run")
    _add_workload_args(summary)
    summary.add_argument("--top", type=int, default=10,
                         help="links to show")
    summary.add_argument("--job", default=None, metavar="TENANT/ID",
                         help="with --service: roll up only this job")
    summary.set_defaults(handler=cmd_summary)

    critpath = commands.add_parser(
        "critical-path",
        help="the blocking chain that determined the run's wall time")
    _add_workload_args(critpath)
    critpath.add_argument("--top", type=int, default=12,
                          help="critical segments to show (default 12)")
    critpath.add_argument("--job", default=None, metavar="TENANT/ID",
                          help="with --service: one job's chain "
                               "(queue wait included)")
    critpath.add_argument("--json", default=None, metavar="PATH",
                          help="also write the chain as JSON")
    critpath.set_defaults(handler=cmd_critical_path)

    metrics = commands.add_parser(
        "metrics",
        help="run a workload and print Prometheus text exposition")
    _add_workload_args(metrics)
    metrics.set_defaults(handler=cmd_metrics)

    postmortem = commands.add_parser(
        "postmortem", help="render a saved post-mortem bundle")
    postmortem.add_argument("bundle", help="bundle JSON path")
    postmortem.add_argument("--top", type=int, default=10,
                            help="segments/windows to show (default 10)")
    postmortem.set_defaults(handler=cmd_postmortem)

    diff = commands.add_parser(
        "diff", help="compare two BENCH_*.json records")
    diff.add_argument("old")
    diff.add_argument("new")
    diff.add_argument("--threshold", type=float, default=0.10,
                      help="relative regression threshold (default 0.10)")
    diff.add_argument("-v", "--verbose", action="store_true",
                      help="also list sub-threshold drift")
    diff.set_defaults(handler=cmd_diff)

    args = parser.parse_args(argv)
    if getattr(args, "job", None) and getattr(args, "service", None) is None:
        parser.error("--job filters a service episode; add --service N")
    if getattr(args, "service", None) is not None and args.service <= 0:
        parser.error(f"--service needs a positive job count, "
                     f"got {args.service}")
    if getattr(args, "nodes", 1) > 1:
        if args.algorithm not in ("p2p", "hier"):
            parser.error(f"--nodes {args.nodes} runs the hierarchical "
                         f"sort; --algorithm {args.algorithm} only works "
                         "on one node")
        if getattr(args, "supervised", False):
            parser.error("--supervised does not run on clusters yet")
        if getattr(args, "service", None) is not None:
            parser.error("--service does not run on clusters yet")
        if getattr(args, "gpus", None) is not None:
            parser.error("--gpus does not apply to clusters: the "
                         "hierarchical sort plans per-node GPU sets")
        if (getattr(args, "kill_node", None) is not None
                and not 0 <= args.kill_node < args.nodes):
            parser.error(f"--kill-node {args.kill_node} is outside the "
                         f"{args.nodes}-node cluster")
    elif getattr(args, "algorithm", None) == "hier":
        parser.error("--algorithm hier needs a cluster; add --nodes N")
    elif getattr(args, "kill_node", None) is not None:
        parser.error("--kill-node needs a cluster; add --nodes N")
    if (getattr(args, "max_replans", None) is not None
            and args.max_replans < 0):
        parser.error(f"--max-replans must be >= 0, got {args.max_replans}")
    try:
        return args.handler(args)
    except _FailedRun as failed:
        # Verbs that can use a dead run's state catch this themselves;
        # for the rest, report the failure (and where the bundle went).
        print(f"run FAILED: {type(failed.error).__name__}: "
              f"{failed.error}", file=sys.stderr)
        for path in failed.postmortems:
            print(f"  post-mortem bundle: {path}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
