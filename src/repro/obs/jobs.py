"""Per-job trace extraction for service episodes.

A service episode interleaves many supervised sorts in one simulated
environment, so the machine-wide :class:`~repro.sim.trace.Trace` mixes
every job's spans together.  Labelled jobs leave the global parent
stack alone (it assumes one sort at a time), so their phase spans are
*not* children of the job's root span; instead each job is recoverable
from three signals:

* its root ``SupervisedSort`` span (and any ``Replan`` spans), whose
  actor is ``job:<tenant>/<id>``;
* device spans on the job's gang of GPUs inside the root's time
  window — gangs are disjoint while a job runs, so a GPU's spans in
  that window belong to exactly one job;
* the descendant closure: flow-level spans recorded with an explicit
  ``parent`` chain under any span already attributed.

Host-side (``cpu*``) spans are attributed by time window alone; when
two het jobs genuinely overlap on the same NUMA node, both windows
claim the shared CPU merge work.  The rollups stay per-job exact for
device and link activity — the paper's phases — and conservative for
host activity.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ServiceError
from repro.sim.trace import Span, Trace

#: Start/end slack when testing containment in the job window; spans
#: recorded at the exact boundary of the root span stay attributed.
_EPS = 1e-9


def job_labels(trace: Trace) -> List[str]:
    """Labels of every service job with a root span in ``trace``."""
    labels = []
    for span in trace.spans:
        if (span.phase == "SupervisedSort"
                and span.actor.startswith("job:")):
            labels.append(span.actor[len("job:"):])
    return labels


def job_trace(trace: Trace, label: str,
              gpu_ids: Sequence[int]) -> Tuple[Trace, Span]:
    """Extract one job's spans into a fresh :class:`Trace`.

    ``label`` is the job's ``tenant/id`` label and ``gpu_ids`` the gang
    it ran on (both live on the service's
    :class:`~repro.serve.job.JobResult`).  Returns the filtered trace
    and the job's root span; raises
    :class:`~repro.errors.ServiceError` when the trace holds no such
    job — with the labels it *does* hold, so a typo is a one-step fix.
    """
    actor = f"job:{label}"
    root = None
    for span in trace.spans:
        if span.phase == "SupervisedSort" and span.actor == actor:
            root = span
            break
    if root is None:
        known = ", ".join(sorted(job_labels(trace))) or "(none)"
        raise ServiceError(
            f"no job {label!r} in this trace (jobs recorded: {known}); "
            f"job labels are tenant/id, e.g. acme/3")

    lo, hi = root.start - _EPS, root.end + _EPS
    device_actors = {f"gpu{gpu}" for gpu in gpu_ids}
    kept: List[Span] = []
    kept_ids = set()
    rest: List[Span] = []
    for span in trace.spans:
        if span.actor == actor:
            pass  # root + Replan markers
        elif (span.actor in device_actors
              or span.actor.startswith("cpu")):
            if not (lo <= span.start and span.end <= hi):
                continue
        else:
            rest.append(span)
            continue
        kept.append(span)
        if span.id:
            kept_ids.add(span.id)

    # Descendant closure over explicitly-parented spans (flows under
    # phase spans, relay hops).  Children can complete before their
    # parent is recorded, so iterate to a fixpoint.
    changed = True
    while changed and rest:
        changed = False
        remaining = []
        for span in rest:
            if span.parent is not None and span.parent in kept_ids:
                kept.append(span)
                if span.id:
                    kept_ids.add(span.id)
                changed = True
            else:
                remaining.append(span)
        rest = remaining

    filtered = Trace(trace.env)
    for span in sorted(kept, key=lambda s: (s.start, s.id)):
        filtered.record(span.phase, span.actor, span.start, span.end,
                        bytes=span.bytes, id=span.id, parent=span.parent)
    return filtered, root
