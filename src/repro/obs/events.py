"""Structured observability events.

Every event is a small ``__slots__`` record with a class-level ``kind``
tag and a simulated timestamp ``t``; :meth:`ObsEvent.to_dict` gives a
JSON-serializable view for export.  The taxonomy mirrors what engine-
level profilers (CUPTI, DCGM, ``nsys``) expose on real machines:

========================  ==================================================
kind                      emitted when
========================  ==================================================
``flow_start``            a transfer enters the flow network
``flow_retire``           a flow delivers its last byte
``flow_abort``            a flow is killed early (fault, timeout, interrupt)
``link_rate``             a link direction's aggregate bandwidth share
                          changes (one event per changed link, per
                          allocation change)
``engine_acquire``        a DMA copy engine grants a slot
``engine_release``        a DMA copy engine returns a slot
``fault_open``            a fault window opens (or an instant fault fires)
``fault_close``           a fault window closes
``kernel_launch``         a compute kernel (sort / merge) is launched
``stream_op``             a serial stream accepts an operation
``engine_sample``         decimated engine-loop sample (queue depth)
========================  ==================================================
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class ObsEvent:
    """Base class: a timestamped, typed observability record."""

    __slots__ = ("t",)
    kind = "event"

    def __init__(self, t: float):
        self.t = t

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view of the event."""
        record: Dict[str, object] = {"kind": self.kind, "t": self.t}
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                if name != "t":
                    record[name] = getattr(self, name)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items()
                           if k != "kind")
        return f"<{self.kind} {fields}>"


class FlowStart(ObsEvent):
    """A flow entered the network (``rate`` is its first allocation)."""

    __slots__ = ("fid", "label", "size", "rate", "links", "parent_span")
    kind = "flow_start"

    def __init__(self, t: float, fid: int, label: str, size: float,
                 rate: float, links: Tuple[str, ...],
                 parent_span: Optional[int] = None):
        super().__init__(t)
        self.fid = fid
        self.label = label
        self.size = size
        self.rate = rate
        self.links = links
        self.parent_span = parent_span


class FlowRetire(ObsEvent):
    """A flow delivered its last byte."""

    __slots__ = ("fid", "label")
    kind = "flow_retire"

    def __init__(self, t: float, fid: int, label: str):
        super().__init__(t)
        self.fid = fid
        self.label = label


class FlowAbort(ObsEvent):
    """A flow was removed before completion."""

    __slots__ = ("fid", "label", "delivered")
    kind = "flow_abort"

    def __init__(self, t: float, fid: int, label: str, delivered: float):
        super().__init__(t)
        self.fid = fid
        self.label = label
        self.delivered = delivered


class LinkRate(ObsEvent):
    """One link direction's aggregate allocated bandwidth changed.

    ``rate`` is the new aggregate share in bytes/s; ``capacity`` the
    direction's raw capacity scaled by any active fault factor (the
    saturation reference).
    """

    __slots__ = ("link", "direction", "rate", "capacity")
    kind = "link_rate"

    def __init__(self, t: float, link: str, direction: str, rate: float,
                 capacity: float):
        super().__init__(t)
        self.link = link
        self.direction = direction
        self.rate = rate
        self.capacity = capacity


class EngineAcquire(ObsEvent):
    """A DMA copy engine granted a slot."""

    __slots__ = ("engine", "in_use", "waiting")
    kind = "engine_acquire"

    def __init__(self, t: float, engine: str, in_use: int, waiting: int):
        super().__init__(t)
        self.engine = engine
        self.in_use = in_use
        self.waiting = waiting


class EngineRelease(ObsEvent):
    """A DMA copy engine returned a slot."""

    __slots__ = ("engine", "in_use", "waiting")
    kind = "engine_release"

    def __init__(self, t: float, engine: str, in_use: int, waiting: int):
        super().__init__(t)
        self.engine = engine
        self.in_use = in_use
        self.waiting = waiting


class FaultOpen(ObsEvent):
    """A fault window opened (instant faults carry ``instant=True``)."""

    __slots__ = ("fault", "target", "instant")
    kind = "fault_open"

    def __init__(self, t: float, fault: str, target: str,
                 instant: bool = False):
        super().__init__(t)
        self.fault = fault
        self.target = target
        self.instant = instant


class FaultClose(ObsEvent):
    """A fault window closed (``opened`` is the matching open time)."""

    __slots__ = ("fault", "target", "opened")
    kind = "fault_close"

    def __init__(self, t: float, fault: str, target: str, opened: float):
        super().__init__(t)
        self.fault = fault
        self.target = target
        self.opened = opened


class KernelLaunch(ObsEvent):
    """A compute kernel was launched on a device."""

    __slots__ = ("device", "phase", "bytes", "duration")
    kind = "kernel_launch"

    def __init__(self, t: float, device: str, phase: str, bytes: float,
                 duration: float):
        super().__init__(t)
        self.device = device
        self.phase = phase
        self.bytes = bytes
        self.duration = duration


class StreamOp(ObsEvent):
    """A serial stream accepted an operation (``depth`` incl. this one)."""

    __slots__ = ("stream", "depth")
    kind = "stream_op"

    def __init__(self, t: float, stream: str, depth: int):
        super().__init__(t)
        self.stream = stream
        self.depth = depth


class EngineSample(ObsEvent):
    """Decimated event-loop sample: pending event-queue depth."""

    __slots__ = ("queue_depth", "events_processed")
    kind = "engine_sample"

    def __init__(self, t: float, queue_depth: int, events_processed: int):
        super().__init__(t)
        self.queue_depth = queue_depth
        self.events_processed = events_processed


class Replan(ObsEvent):
    """A supervised sort re-planned after a mid-phase failure.

    ``phase`` is where the failure landed, ``reason`` the triggering
    exception rendered to a string, ``dead_gpus`` the GPUs dropped by
    this replan and ``survivors`` the working set going forward.
    """

    __slots__ = ("phase", "reason", "dead_gpus", "survivors")
    kind = "replan"

    def __init__(self, t: float, phase: str, reason: str,
                 dead_gpus: Tuple[int, ...], survivors: Tuple[int, ...]):
        super().__init__(t)
        self.phase = phase
        self.reason = reason
        self.dead_gpus = dead_gpus
        self.survivors = survivors


class Checkpoint(ObsEvent):
    """A supervised sort wrote (or restored) a phase checkpoint.

    ``staged_chunks`` counts the chunk payloads durably host-staged by
    this checkpoint; ``restored`` marks the recovery-side use of one.
    """

    __slots__ = ("phase", "staged_chunks", "restored")
    kind = "checkpoint"

    def __init__(self, t: float, phase: str, staged_chunks: int,
                 restored: bool = False):
        super().__init__(t)
        self.phase = phase
        self.staged_chunks = staged_chunks
        self.restored = restored


class Speculation(ObsEvent):
    """A speculative backup execution was launched or resolved.

    ``outcome`` is ``"launched"``, ``"won"`` (backup beat the straggler,
    which was cancelled) or ``"lost"`` (the original finished first).
    """

    __slots__ = ("phase", "straggler", "helper", "outcome")
    kind = "speculation"

    def __init__(self, t: float, phase: str, straggler: str, helper: str,
                 outcome: str):
        super().__init__(t)
        self.phase = phase
        self.straggler = straggler
        self.helper = helper
        self.outcome = outcome
