"""Engine-level observability for the simulator.

The subsystem has three layers:

* :mod:`repro.obs.events` / :mod:`repro.obs.recorder` — the structured
  event stream the instrumented engine emits (zero cost when no
  recorder is attached; see
  :meth:`repro.runtime.context.Machine.enable_observability`);
* :mod:`repro.obs.metrics` / :mod:`repro.obs.telemetry` — aggregate
  counters/gauges/histograms and derived time series (per-link
  bandwidth, saturation windows, engine occupancy);
* :mod:`repro.obs.provenance` / :mod:`repro.obs.diff` /
  :mod:`repro.obs.cli` — run provenance for benchmark records, record
  comparison, and the ``python -m repro.obs`` command line.
"""

from repro.obs.critpath import (
    CriticalPath,
    InFlight,
    Segment,
    critical_path,
    fault_windows_of,
    job_critical_path,
    tenant_rollup,
)
from repro.obs.diff import DiffResult, diff_files, diff_records, format_diff
from repro.obs.jobs import job_labels, job_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)
from repro.obs.postmortem import (
    build_bundle,
    load_bundle,
    render_bundle,
    write_bundle,
)
from repro.obs.provenance import config_hash, git_revision, provenance
from repro.obs.recorder import FlowRecord, Recorder, RingConfig
from repro.obs.telemetry import (
    LinkReport,
    LinkSeries,
    engine_occupancy,
    flow_count_series,
    link_report,
    link_series,
    sparkline,
    tier_summary,
)

__all__ = [
    "Counter",
    "CriticalPath",
    "DiffResult",
    "FlowRecord",
    "Gauge",
    "Histogram",
    "InFlight",
    "LinkReport",
    "LinkSeries",
    "MetricsRegistry",
    "Recorder",
    "RingConfig",
    "Segment",
    "build_bundle",
    "config_hash",
    "critical_path",
    "diff_files",
    "diff_records",
    "engine_occupancy",
    "fault_windows_of",
    "flow_count_series",
    "format_diff",
    "git_revision",
    "job_critical_path",
    "job_labels",
    "job_trace",
    "link_report",
    "link_series",
    "load_bundle",
    "prometheus_text",
    "provenance",
    "render_bundle",
    "sparkline",
    "tenant_rollup",
    "tier_summary",
    "write_bundle",
]
