"""The event recorder: the engine-side half of the observability layer.

A :class:`Recorder` is attached to a machine (or a bare flow network /
environment) and receives hook calls from the simulator's hot paths:
flow transitions and per-link bandwidth-share changes from
:class:`~repro.sim.flows.FlowNetwork`, copy-engine slot traffic from
:class:`~repro.runtime.sync.Semaphore`, fault windows from
:class:`~repro.faults.injector.FaultInjector`, kernel launches from
:mod:`repro.runtime.kernels`, and decimated event-loop samples from
:class:`~repro.sim.engine.Environment`.

Design constraints, in order:

1. **Zero cost when disabled.**  No recorder object exists on a healthy
   hot path — every emit site is gated on a plain ``obs is not None``
   check against an attribute that defaults to ``None``.
2. **Read-only.**  The recorder never mutates simulation state, so a
   run with observability enabled is bit-identical (in simulated time)
   to the same run without it.
3. **Structured.**  Everything lands as typed events
   (:mod:`repro.obs.events`) in arrival order, plus aggregated metrics
   in a :class:`~repro.obs.metrics.MetricsRegistry` — the raw stream
   for timelines, the registry for rollups.

Per-link bandwidth is *change-driven*: after every allocation change
the recorder aggregates each link direction's allocated rate from the
network's membership index and emits a :class:`~repro.obs.events.LinkRate`
event only for directions whose share actually moved — a step-function
time series, exact between allocation changes because the fluid flow
model is piecewise constant.

**Flight-recorder mode.**  At service/cluster scale an unbounded event
list makes "obs always on" impossible, so a :class:`RingConfig` turns
the recorder into a bounded flight recorder: per-kind event caps with
amortized tail-eviction of the *oldest* events of each over-cap kind.
Eviction never breaks pairing invariants — the ``FlowStart`` of a
still-live flow and the ``FaultOpen`` of a still-open fault window are
pinned until their closing event arrives — and the running aggregates
(per-link bytes/peak/saturation, per-engine busy time; see
:meth:`Recorder.link_totals` / :meth:`Recorder.engine_busy`) are
maintained at emit time, so whole-run rollups survive even after the
raw events that fed them were evicted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import (
    Checkpoint,
    EngineAcquire,
    EngineRelease,
    EngineSample,
    FaultClose,
    FaultOpen,
    FlowAbort,
    FlowRetire,
    FlowStart,
    KernelLaunch,
    LinkRate,
    ObsEvent,
    Replan,
    Speculation,
    StreamOp,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.resources import Direction


class FlowRecord:
    """Compiled lifecycle of one flow (built as its events arrive)."""

    __slots__ = ("fid", "label", "size", "start", "end", "links",
                 "parent_span", "aborted")

    def __init__(self, fid: int, label: str, size: float, start: float,
                 links: Tuple[str, ...]):
        self.fid = fid
        self.label = label
        self.size = size
        self.start = start
        self.end: Optional[float] = None
        self.links = links
        self.parent_span: Optional[int] = None
        self.aborted = False

    @property
    def duration(self) -> Optional[float]:
        """Lifetime in simulated seconds (``None`` while in flight)."""
        return None if self.end is None else self.end - self.start


#: Saturation threshold for the running per-link aggregates (fraction
#: of capacity counted as "saturated"); matches the telemetry default.
_SATURATION_FRACTION = 0.95


@dataclass(frozen=True)
class RingConfig:
    """Bounds for flight-recorder mode.

    ``default_cap`` caps each event kind's retained count unless
    ``caps`` overrides it; ``completed_flows`` caps retained completed
    :class:`FlowRecord` lifecycles (live flows are never evicted);
    ``compact_batch`` is the amortization slack — a kind may overshoot
    its cap by up to this much between compactions, trading a small
    bounded memory overshoot for O(1) amortized emit cost.
    """

    default_cap: int = 4096
    caps: Dict[str, int] = field(default_factory=dict)
    completed_flows: int = 1024
    compact_batch: int = 1024

    def cap_for(self, kind: str) -> int:
        """Retention cap for one event kind."""
        return self.caps.get(kind, self.default_cap)


class Recorder:
    """Collects structured events and aggregate metrics from one run.

    ``engine_sample_every`` decimates the event-loop probe: one
    :class:`~repro.obs.events.EngineSample` per that many engine events.
    ``ring`` (a :class:`RingConfig`) enables flight-recorder mode:
    bounded per-kind event retention with running aggregates, for
    always-on observability at service/cluster scale.
    """

    def __init__(self, engine_sample_every: int = 256,
                 ring: Optional[RingConfig] = None):
        if engine_sample_every < 1:
            raise ValueError(
                f"engine_sample_every must be >= 1, got {engine_sample_every}")
        self.events: List[ObsEvent] = []
        self.metrics = MetricsRegistry()
        #: Compiled flow lifecycles, in start order.
        self.flows: List[FlowRecord] = []
        self._live_flows: Dict[int, FlowRecord] = {}
        #: Last emitted per-link rates: packed key -> (rate, capacity).
        self._last_rates: Dict[int, Tuple[float, float]] = {}
        #: Names for packed keys seen so far (resource may be gone later).
        self._key_names: Dict[int, Tuple[str, str]] = {}
        self._engine_sample_every = engine_sample_every
        self._steps_since_sample = 0
        self._engine_steps = 0
        #: Latest simulated time any event arrived at.
        self.last_time = 0.0
        #: Flight-recorder bounds (``None`` = unbounded, keep everything).
        self.ring = ring
        #: Events evicted per kind (flight-recorder mode only).
        self.evicted: Dict[str, int] = {}
        #: Completed flow lifecycles evicted (flight-recorder mode only).
        self.evicted_flows = 0
        self._kind_counts: Dict[str, int] = {}
        self._completed_flows = 0
        #: Open (windowed) fault keys — their FaultOpen events are
        #: pinned against eviction until the window closes.
        self._open_faults: Dict[Tuple[str, str], float] = {}
        # Running aggregates (survive ring eviction).
        self._link_agg: Dict[int, List[float]] = {}
        self._engine_busy: Dict[str, float] = {}
        self._engine_held_since: Dict[str, float] = {}
        self._engine_depth: Dict[str, int] = {}

    # -- generic helpers ---------------------------------------------------
    def _emit(self, event: ObsEvent) -> None:
        self.events.append(event)
        if event.t > self.last_time:
            self.last_time = event.t
        ring = self.ring
        if ring is not None:
            kind = event.kind
            count = self._kind_counts.get(kind, 0) + 1
            self._kind_counts[kind] = count
            if count > ring.cap_for(kind) + ring.compact_batch:
                self._compact()

    def events_of(self, kind: str) -> List[ObsEvent]:
        """All recorded events of one kind, in arrival order."""
        return [e for e in self.events if e.kind == kind]

    # -- flight-recorder compaction ----------------------------------------
    def _compact(self) -> None:
        """Drop the oldest over-cap events of each kind, oldest first.

        Pinned against eviction: the ``FlowStart`` of every still-live
        flow and the ``FaultOpen`` of every still-open fault window —
        so open/close pairing survives any amount of churn.
        """
        ring = self.ring
        excess = {kind: count - ring.cap_for(kind)
                  for kind, count in self._kind_counts.items()
                  if count > ring.cap_for(kind)}
        if not excess:
            return
        live_fids = self._live_flows.keys()
        open_faults = self._open_faults
        kept: List[ObsEvent] = []
        for event in self.events:
            kind = event.kind
            over = excess.get(kind, 0)
            if over > 0:
                if isinstance(event, FlowStart):
                    if event.fid in live_fids:
                        kept.append(event)
                        continue
                elif isinstance(event, FaultOpen):
                    if (event.fault, event.target) in open_faults:
                        kept.append(event)
                        continue
                excess[kind] = over - 1
                self._kind_counts[kind] -= 1
                self.evicted[kind] = self.evicted.get(kind, 0) + 1
            else:
                kept.append(event)
        self.events = kept

    def _trim_flows(self) -> None:
        """Drop the oldest completed flow lifecycles over the cap."""
        ring = self.ring
        drop = self._completed_flows - ring.completed_flows
        if drop <= 0:
            return
        kept: List[FlowRecord] = []
        for record in self.flows:
            if drop > 0 and record.end is not None:
                drop -= 1
                self._completed_flows -= 1
                self.evicted_flows += 1
            else:
                kept.append(record)
        self.flows = kept

    def ring_stats(self) -> Dict[str, object]:
        """Retention/eviction accounting for flight-recorder mode."""
        return {
            "enabled": self.ring is not None,
            "events_retained": len(self.events),
            "flows_retained": len(self.flows),
            "evicted": dict(sorted(self.evicted.items())),
            "evicted_total": sum(self.evicted.values()),
            "evicted_flows": self.evicted_flows,
        }

    # -- running aggregates (survive ring eviction) ------------------------
    def link_totals(self, end: Optional[float] = None
                    ) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Whole-run per-``(link, direction)`` rollups from the running
        aggregates: bytes carried, peak allocated rate, last-known
        capacity and saturated seconds (>= 95% of capacity).

        Unlike :func:`repro.obs.telemetry.link_report` this does not
        need the raw event stream, so it stays exact under
        flight-recorder eviction.  The live segment is integrated up to
        ``end`` (default: the last event time).
        """
        horizon = end if end is not None else self.last_time
        totals: Dict[Tuple[str, str], Dict[str, float]] = {}
        for key, agg in self._link_agg.items():
            rate, capacity, since, bytes_, peak, saturated = agg
            span = max(0.0, horizon - since)
            bytes_ += rate * span
            if capacity > 0 and rate >= _SATURATION_FRACTION * capacity:
                saturated += span
            name, direction = self._key_names[key]
            totals[(name, direction)] = {
                "bytes": bytes_, "peak": peak, "capacity": capacity,
                "saturated_s": saturated}
        return totals

    def engine_busy(self, end: Optional[float] = None) -> Dict[str, float]:
        """Whole-run busy seconds per copy engine, from the running
        aggregates (exact under flight-recorder eviction)."""
        horizon = end if end is not None else self.last_time
        busy = dict(self._engine_busy)
        for name, since in self._engine_held_since.items():
            if self._engine_depth.get(name, 0) > 0:
                busy[name] = busy.get(name, 0.0) + max(0.0, horizon - since)
        return {name: total for name, total in sorted(busy.items())}

    # -- flow network hooks ------------------------------------------------
    def flow_started(self, net, flow) -> None:
        """Hook: ``flow`` entered ``net`` and received its first rate."""
        fid = id(flow)
        record = FlowRecord(fid, flow.label, flow.size, flow.started_at,
                            tuple(r.name for r in flow.resources))
        self._live_flows[fid] = record
        self.flows.append(record)
        self._emit(FlowStart(net.env.now, fid, flow.label, flow.size,
                             flow.rate, record.links))
        self.metrics.counter("flows.started").inc()
        self.metrics.gauge("flows.active").set(len(net._flows))

    def flow_retired(self, net, flow) -> None:
        """Hook: ``flow`` delivered its last byte."""
        now = net.env.now
        self._emit(FlowRetire(now, id(flow), flow.label))
        self._finish_flow(id(flow), now, aborted=False)
        self.metrics.counter("flows.retired").inc()
        self.metrics.gauge("flows.active").set(len(net._flows))

    def flow_aborted(self, net, flow) -> None:
        """Hook: ``flow`` was removed before completion."""
        now = net.env.now
        delivered = flow.size - flow.remaining
        self._emit(FlowAbort(now, id(flow), flow.label, delivered))
        self._finish_flow(id(flow), now, aborted=True)
        self.metrics.counter("flows.aborted").inc()
        self.metrics.gauge("flows.active").set(len(net._flows))

    def _finish_flow(self, fid: int, now: float, aborted: bool) -> None:
        record = self._live_flows.pop(fid, None)
        if record is not None:
            record.end = now
            record.aborted = aborted
            self.metrics.histogram("flows.duration_s").observe(
                now - record.start)
            ring = self.ring
            if ring is not None:
                self._completed_flows += 1
                if (self._completed_flows
                        > ring.completed_flows + ring.compact_batch):
                    self._trim_flows()

    def attach_flow(self, flow, span_id: int) -> None:
        """Parent the (just started) ``flow`` under trace span ``span_id``.

        Called by the runtime right after it starts a flow on behalf of
        a traced operation, so the timeline can nest the flow beneath
        the operation's span.
        """
        record = self._live_flows.get(id(flow))
        if record is not None:
            record.parent_span = span_id
            for event in reversed(self.events):
                if isinstance(event, FlowStart) and event.fid == id(flow):
                    event.parent_span = span_id
                    break

    def rates_changed(self, net) -> None:
        """Hook: the network's allocation changed; diff the link shares.

        Aggregates each ``(resource, direction)``'s allocated rate from
        the persistent membership index and emits one
        :class:`~repro.obs.events.LinkRate` per direction whose share
        moved (including back to zero when a link empties).
        """
        now = net.env.now
        current: Dict[int, Tuple[float, float]] = {}
        resources = net._resources
        for key, bucket in net._members.items():
            rate = 0.0
            for flow in bucket:
                rate += flow.rate
            resource = resources[key >> 1]
            direction = Direction.REV if key & 1 else Direction.FWD
            capacity = (resource.raw_capacity(direction)
                        * resource.fault_factor)
            current[key] = (rate, capacity)
            self._key_names[key] = (resource.name, direction.value)
        last = self._last_rates
        for key, (rate, capacity) in current.items():
            previous = last.get(key)
            if previous is None or previous[0] != rate:
                name, direction = self._key_names[key]
                self._emit(LinkRate(now, name, direction, rate, capacity))
                self._roll_link(key, rate, capacity, now)
        for key in last:
            if key not in current and last[key][0] != 0.0:
                name, direction = self._key_names[key]
                self._emit(LinkRate(now, name, direction, 0.0,
                                    last[key][1]))
                self._roll_link(key, 0.0, last[key][1], now)
        self._last_rates = current

    def _roll_link(self, key: int, rate: float, capacity: float,
                   now: float) -> None:
        """Close the previous constant-rate segment of one link
        direction into its running aggregate and open a new one."""
        agg = self._link_agg.get(key)
        if agg is None:
            # [rate, capacity, since, bytes, peak, saturated_s]
            self._link_agg[key] = [rate, capacity, now, 0.0, rate, 0.0]
            return
        old_rate, old_capacity, since = agg[0], agg[1], agg[2]
        span = now - since
        if span > 0.0:
            agg[3] += old_rate * span
            if (old_capacity > 0
                    and old_rate >= _SATURATION_FRACTION * old_capacity):
                agg[5] += span
        agg[0] = rate
        agg[1] = capacity
        agg[2] = now
        if rate > agg[4]:
            agg[4] = rate

    # -- copy-engine hooks -------------------------------------------------
    def engine_acquired(self, engine, now: float) -> None:
        """Hook: semaphore ``engine`` granted a slot at ``now``."""
        self._emit(EngineAcquire(now, engine.label, engine._in_use,
                                 len(engine._waiters)))
        self.metrics.counter(f"engine.{engine.label}.acquires").inc()
        self.metrics.gauge(f"engine.{engine.label}.in_use").set(
            engine._in_use)
        name = engine.label
        depth = self._engine_depth.get(name, 0)
        if depth == 0:
            self._engine_held_since[name] = now
        self._engine_depth[name] = depth + 1

    def engine_released(self, engine, now: float) -> None:
        """Hook: semaphore ``engine`` returned a slot at ``now``."""
        self._emit(EngineRelease(now, engine.label, engine._in_use,
                                 len(engine._waiters)))
        self.metrics.gauge(f"engine.{engine.label}.in_use").set(
            engine._in_use)
        name = engine.label
        depth = self._engine_depth.get(name, 0)
        if depth == 1:
            since = self._engine_held_since.pop(name, now)
            self._engine_busy[name] = (self._engine_busy.get(name, 0.0)
                                       + now - since)
        self._engine_depth[name] = max(0, depth - 1)

    # -- fault injector hooks ----------------------------------------------
    def fault_opened(self, kind: str, target: str, now: float,
                     instant: bool = False) -> None:
        """Hook: a fault window opened (or an instant fault fired)."""
        if not instant:
            self._open_faults[(kind, target)] = now
        self._emit(FaultOpen(now, kind, target, instant=instant))
        self.metrics.counter(f"faults.{kind}").inc()

    def fault_closed(self, kind: str, target: str, opened: float,
                     now: float) -> None:
        """Hook: a fault window closed."""
        self._open_faults.pop((kind, target), None)
        self._emit(FaultClose(now, kind, target, opened))
        self.metrics.counter("faults.window_seconds").inc(now - opened)

    # -- recovery hooks ------------------------------------------------------
    def replanned(self, phase: str, reason: str, dead_gpus, survivors,
                  now: float) -> None:
        """Hook: a supervised sort re-planned after a mid-phase failure."""
        self._emit(Replan(now, phase, reason, tuple(dead_gpus),
                          tuple(survivors)))
        self.metrics.counter("recovery.replans").inc()

    def checkpointed(self, phase: str, staged_chunks: int, now: float,
                     restored: bool = False) -> None:
        """Hook: a phase checkpoint was written (or restored)."""
        self._emit(Checkpoint(now, phase, staged_chunks, restored=restored))
        if restored:
            self.metrics.counter("recovery.checkpoints_restored").inc()
        else:
            self.metrics.counter("recovery.checkpoints").inc()

    def speculated(self, phase: str, straggler: str, helper: str,
                   outcome: str, now: float) -> None:
        """Hook: a speculative backup was launched or resolved."""
        self._emit(Speculation(now, phase, straggler, helper, outcome))
        self.metrics.counter(f"recovery.speculation.{outcome}").inc()

    # -- kernel / stream hooks ---------------------------------------------
    def kernel_launched(self, device: str, phase: str, bytes: float,
                        duration: float, now: float) -> None:
        """Hook: a compute kernel was launched."""
        self._emit(KernelLaunch(now, device, phase, bytes, duration))
        self.metrics.counter("kernels.launched").inc()
        self.metrics.counter("kernels.bytes").inc(bytes)

    def stream_submitted(self, stream: str, depth: int, now: float) -> None:
        """Hook: a serial stream accepted an operation."""
        self._emit(StreamOp(now, stream, depth))
        self.metrics.counter(f"stream.{stream}.ops").inc()
        self.metrics.gauge(f"stream.{stream}.depth").set(depth)

    def stream_drained(self, stream: str, depth: int) -> None:
        """Hook: a stream operation completed (gauge only, no event)."""
        self.metrics.gauge(f"stream.{stream}.depth").set(depth)

    # -- engine loop hook ----------------------------------------------------
    def engine_stepped(self, now: float, queue_depth: int) -> None:
        """Hook: the event loop retired one event (decimated sampling)."""
        self._engine_steps += 1
        self._steps_since_sample += 1
        if self._steps_since_sample >= self._engine_sample_every:
            self._steps_since_sample = 0
            self._emit(EngineSample(now, queue_depth, self._engine_steps))
            self.metrics.gauge("engine.queue_depth").set(queue_depth)
        if now > self.last_time:
            self.last_time = now

    # -- export --------------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, object]]:
        """The full event stream as JSON-serializable dicts."""
        return [event.to_dict() for event in self.events]
