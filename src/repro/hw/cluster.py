"""Multi-node cluster topologies over a network fabric.

The paper stops at single machines; this module scales the catalog out
to 4-64-node clusters of the three evaluated platforms, following the
link taxonomy of published supercomputer-interconnect studies: each
machine keeps its exact intra-node topology (NVLink, PCIe, CPU buses)
and attaches to a cluster fabric through host NICs and InfiniBand
cables into one of three switch fabrics:

* ``fat-tree`` — leaf switches over groups of nodes, a spine layer of
  aggregated trunks on top (the classic HPC folded Clos).
* ``rail`` — rail-optimized: one NIC per NUMA domain, each rail wired
  to its own switch, a thin trunk bridging the rails.
* ``dragonfly`` — per-group routers with all-to-all global links
  between groups.

A :class:`ClusterSpec` is a :class:`~repro.hw.systems.SystemSpec`:
GPU/CPU/memory naming continues the single-machine conventions with
global numbering (node ``k``'s GPUs are ``gpu{k*g}..``), so the
runtime (:class:`~repro.runtime.context.Machine`), fault injector and
observability stack work on clusters unchanged.  Fabric links are
tagged :data:`~repro.hw.topology.TIER_INTER` so link telemetry can
aggregate per tier.

:class:`ClusterTopology` scopes route searches: an intra-machine route
only walks that machine's vertices and a cross-machine route walks the
two endpoint machines plus the fabric, keeping a cache-miss Dijkstra
O(one machine + fabric) instead of O(whole cluster).  A scoped search
skips out-of-scope edges before the deterministic tie-break counter
advances, so single-machine routes are bit-identical to the standalone
platform's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.hw.links import LinkKind
from repro.hw.systems import SystemSpec, system_by_name
from repro.hw.topology import NodeKind, Topology, TIER_INTER
from repro.sim.resources import Resource
from repro.units import gb

#: Supported fabric generator names.
FABRICS = ("fat-tree", "rail", "dragonfly")

#: Effective host-NIC rate (PCIe 4.0 x16 HCA behind the host bridge).
NIC_BW = gb(24.0)
#: Effective HDR InfiniBand cable rate per direction.
IB_BW = gb(23.0)
#: Aggregated switch-to-switch trunk (4x HDR cables bonded).
TRUNK_BW = gb(92.0)

#: Nodes per fat-tree leaf switch.
FAT_TREE_LEAF_WIDTH = 4
#: Spine switches above the leaf layer.
FAT_TREE_SPINES = 2
#: Nodes per dragonfly group (one router per group).
DRAGONFLY_GROUP = 4


class ClusterTopology(Topology):
    """A topology partitioned into machines plus a shared fabric."""

    def __init__(self, name: str = "cluster"):
        super().__init__(name)
        self._machine_vertices: List[Set[str]] = []
        self._machine_of: Dict[str, int] = {}
        self._fabric_vertices: Set[str] = set()
        self._fabric_switches: List[str] = []
        self._scope_cache: Dict[Tuple[int, int], Set[str]] = {}

    # -- partition bookkeeping ---------------------------------------------
    def begin_machine(self) -> int:
        """Open a new machine partition; returns its index."""
        self._machine_vertices.append(set())
        return len(self._machine_vertices) - 1

    def register_machine_vertex(self, machine: int, name: str) -> None:
        """Assign a vertex to machine ``machine``'s partition."""
        self._machine_vertices[machine].add(name)
        self._machine_of[name] = machine

    def register_fabric_vertex(self, name: str) -> None:
        """Mark a vertex (NIC, switch, router) as part of the fabric."""
        self._fabric_vertices.add(name)

    def register_fabric_switch(self, name: str) -> None:
        """Record a *switch* vertex (leaf/spine/rail/router, not a NIC).

        Switches keep their registration order, so a
        :class:`~repro.faults.events.SwitchDown` can target them by a
        stable integer index as well as by name.
        """
        if name not in self._fabric_switches:
            self._fabric_switches.append(name)

    @property
    def fabric_switches(self) -> Tuple[str, ...]:
        """Fabric switch vertex names, in registration order."""
        return tuple(self._fabric_switches)

    def machine_of(self, name: str) -> Optional[int]:
        """Machine index owning a vertex; ``None`` for fabric vertices."""
        return self._machine_of.get(name)

    # -- scoped routing ----------------------------------------------------
    def _route_scope(self, src: str, dst: str) -> Optional[Set[str]]:
        ms = self._machine_of.get(src)
        md = self._machine_of.get(dst)
        if ms is None or md is None:
            return None
        if ms == md:
            return self._machine_vertices[ms]
        key = (ms, md)
        scope = self._scope_cache.get(key)
        if scope is None:
            scope = (self._machine_vertices[ms]
                     | self._machine_vertices[md]
                     | self._fabric_vertices)
            self._scope_cache[key] = scope
        return scope


@dataclass
class ClusterSpec(SystemSpec):
    """A multi-node cluster presented as one big :class:`SystemSpec`."""

    #: Number of machines in the cluster.
    num_nodes: int = 1
    #: GPUs per machine (node ``k`` owns ids ``k*g .. k*g+g-1``).
    gpus_per_node: int = 0
    #: NUMA domains per machine.
    numa_per_node: int = 0
    #: Fabric generator used (``"none"`` for a single node).
    fabric: str = "none"
    #: Catalog name of the per-node platform.
    base_name: str = ""
    #: The base platform's preferred GPU orders (node-local ids).
    node_preferred: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    def node_of_gpu(self, gpu_id: int) -> int:
        """Machine index owning global GPU ``gpu_id``."""
        if not 0 <= gpu_id < self.num_gpus:
            raise TopologyError(f"no GPU {gpu_id} on {self.name}")
        return gpu_id // self.gpus_per_node

    def gpu_ids_of_node(self, node: int) -> Tuple[int, ...]:
        """Global GPU ids of machine ``node``, in id order."""
        self._check_node(node)
        base = node * self.gpus_per_node
        return tuple(range(base, base + self.gpus_per_node))

    def node_numa(self, node: int) -> int:
        """Global index of machine ``node``'s first NUMA domain."""
        self._check_node(node)
        return node * self.numa_per_node

    def node_cpu_name(self, node: int) -> str:
        """Topology vertex of machine ``node``'s first NUMA domain."""
        return f"cpu{self.node_numa(node)}"

    def node_gpu_order(self, node: int, count: int) -> Tuple[int, ...]:
        """The base platform's preferred order, as global ids of ``node``.

        Mirrors :meth:`SystemSpec.preferred_gpu_set` within one
        machine, so node-local sorts keep the paper-faithful GPU
        choices (e.g. (0, 2, 4, 6) on a DGX A100 half-set).
        """
        self._check_node(node)
        if count > self.gpus_per_node:
            raise TopologyError(
                f"node {node} has only {self.gpus_per_node} GPUs, "
                f"{count} requested")
        local = self.node_preferred.get(count, tuple(range(count)))
        base = node * self.gpus_per_node
        return tuple(base + i for i in local)

    def node_of_numa(self, numa: int) -> int:
        """Machine index owning global NUMA domain ``numa``."""
        if not (self.numa_per_node > 0
                and 0 <= numa < self.num_nodes * self.numa_per_node):
            raise TopologyError(f"no NUMA domain {numa} on {self.name}")
        return numa // self.numa_per_node

    def node_host_memories(self, node: int) -> Tuple[str, ...]:
        """Host-memory resource names of machine ``node``'s NUMA domains."""
        self._check_node(node)
        names = []
        for numa in range(node * self.numa_per_node,
                          (node + 1) * self.numa_per_node):
            vertex = self.topology.node(f"cpu{numa}")
            if vertex.memory is not None:
                names.append(vertex.memory.name)
        return tuple(names)

    def node_nic_links(self, node: int) -> Tuple[str, ...]:
        """NIC uplink resource names of machine ``node``, in rail order.

        These are the node's only edges into the fabric, so taking them
        all down (a :class:`~repro.faults.events.NodeDown`) unreaches
        the node from every other machine.
        """
        self._check_node(node)
        names = []
        for edge in self.topology.edges:
            if (edge.kind is LinkKind.NIC
                    and edge.resource.name.startswith(f"n{node}_nic")
                    and edge.resource.name not in names):
                names.append(edge.resource.name)
        return tuple(names)

    def counts(self) -> Dict[str, int]:
        """Topology size counters for provenance stamping."""
        return {
            "cluster_nodes": self.num_nodes,
            "gpus": self.num_gpus,
            "vertices": len(self.topology.nodes),
            "links": len(self.topology.edges),
        }

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"no node {node} in {self.name} ({self.num_nodes} nodes)")


# --------------------------------------------------------------------------
# Machine grafting
# --------------------------------------------------------------------------
def _graft_machine(topo: ClusterTopology, spec: SystemSpec, index: int,
                   gpu_offset: int, numa_offset: int) -> Dict[str, str]:
    """Splice one freshly built machine into the cluster graph.

    Vertices and resources are renamed in place (the spec is fresh, so
    no other graph shares them): GPUs/CPUs/memories get global indices,
    everything else a ``n{index}_`` prefix.  Edges are re-added in the
    machine's insertion order, so a scoped route search visits them
    exactly as the standalone machine would.
    """
    rename: Dict[str, str] = {}
    for node in spec.topology.nodes:
        name = node.name
        if name.startswith("gpu"):
            new = f"gpu{gpu_offset + int(name[3:])}"
        elif name.startswith("cpu"):
            new = f"cpu{numa_offset + int(name[3:])}"
        else:
            new = f"n{index}_{name}"
        rename[name] = new
        memory = node.memory
        if memory is not None:
            if memory.name.startswith("gmem"):
                memory.name = f"gmem{gpu_offset + int(memory.name[4:])}"
            elif memory.name.startswith("mem"):
                memory.name = f"mem{numa_offset + int(memory.name[3:])}"
            else:
                memory.name = f"n{index}_{memory.name}"
        attrs = dict(node.attrs)
        if "numa" in attrs:
            attrs["numa"] = numa_offset + int(attrs["numa"])  # type: ignore[arg-type]
        topo.add_node(new, node.kind, memory=memory, **attrs)
        topo.register_machine_vertex(index, new)
    for edge in spec.topology.edges:
        edge.resource.name = f"n{index}_{edge.resource.name}"
        topo.add_edge(rename[edge.a], rename[edge.b], edge.resource,
                      edge.kind)
    return rename


# --------------------------------------------------------------------------
# Fabric generators
# --------------------------------------------------------------------------
def _add_nic(topo: ClusterTopology, node_index: int, rail: int,
             numa_global: int) -> str:
    """Attach one host NIC to a machine's NUMA domain; returns its name."""
    name = f"n{node_index}_nic{rail}"
    topo.add_node(name, NodeKind.SWITCH)
    topo.register_fabric_vertex(name)
    resource = Resource(f"{name}_link", capacity_fwd=NIC_BW,
                        duplex_factor=0.95,
                        latency_s=LinkKind.NIC.hop_latency_s)
    topo.add_edge(f"cpu{numa_global}", name, resource, LinkKind.NIC,
                  tier=TIER_INTER)
    return name


def _add_fabric_switch(topo: ClusterTopology, name: str) -> str:
    topo.add_node(name, NodeKind.SWITCH)
    topo.register_fabric_vertex(name)
    topo.register_fabric_switch(name)
    return name


def _ib_edge(topo: ClusterTopology, a: str, b: str,
             bandwidth: float = IB_BW,
             kind: LinkKind = LinkKind.INFINIBAND) -> None:
    resource = Resource(f"{kind.value}_{a}_{b}", capacity_fwd=bandwidth,
                        duplex_factor=0.95,
                        latency_s=kind.hop_latency_s)
    topo.add_edge(a, b, resource, kind, tier=TIER_INTER)


def _fabric_fat_tree(topo: ClusterTopology, num_nodes: int,
                     numa_per_node: int) -> None:
    """Two-level folded Clos: node NICs -> leaf switches -> spines."""
    n_leaves = math.ceil(num_nodes / FAT_TREE_LEAF_WIDTH)
    for leaf in range(n_leaves):
        _add_fabric_switch(topo, f"ft_leaf{leaf}")
    for k in range(num_nodes):
        nic = _add_nic(topo, k, 0, k * numa_per_node)
        _ib_edge(topo, nic, f"ft_leaf{k // FAT_TREE_LEAF_WIDTH}")
    if n_leaves > 1:
        for spine in range(FAT_TREE_SPINES):
            _add_fabric_switch(topo, f"ft_spine{spine}")
        for leaf in range(n_leaves):
            for spine in range(FAT_TREE_SPINES):
                _ib_edge(topo, f"ft_leaf{leaf}", f"ft_spine{spine}",
                         bandwidth=TRUNK_BW, kind=LinkKind.FABRIC_SWITCH)


def _fabric_rail(topo: ClusterTopology, num_nodes: int,
                 numa_per_node: int) -> None:
    """Rail-optimized: one NIC per NUMA domain, one switch per rail.

    Same-rail traffic crosses a single switch; cross-rail traffic pays
    the thin aggregation trunk — the asymmetry rail-optimized designs
    actually have.
    """
    rails = min(2, numa_per_node)
    for rail in range(rails):
        _add_fabric_switch(topo, f"rail{rail}")
    for k in range(num_nodes):
        for rail in range(rails):
            nic = _add_nic(topo, k, rail, k * numa_per_node + rail)
            _ib_edge(topo, nic, f"rail{rail}")
    if rails > 1:
        _ib_edge(topo, "rail0", "rail1", bandwidth=TRUNK_BW,
                 kind=LinkKind.FABRIC_SWITCH)


def _fabric_dragonfly(topo: ClusterTopology, num_nodes: int,
                      numa_per_node: int) -> None:
    """Dragonfly: per-group routers, all-to-all global links."""
    n_groups = math.ceil(num_nodes / DRAGONFLY_GROUP)
    for group in range(n_groups):
        _add_fabric_switch(topo, f"dfly_r{group}")
    for k in range(num_nodes):
        nic = _add_nic(topo, k, 0, k * numa_per_node)
        _ib_edge(topo, nic, f"dfly_r{k // DRAGONFLY_GROUP}")
    for i in range(n_groups):
        for j in range(i + 1, n_groups):
            _ib_edge(topo, f"dfly_r{i}", f"dfly_r{j}",
                     kind=LinkKind.FABRIC_SWITCH)


_FABRIC_BUILDERS = {
    "fat-tree": _fabric_fat_tree,
    "rail": _fabric_rail,
    "dragonfly": _fabric_dragonfly,
}


# --------------------------------------------------------------------------
# Cluster construction
# --------------------------------------------------------------------------
def make_cluster(base: str, num_nodes: int,
                 fabric: str = "fat-tree") -> ClusterSpec:
    """Build a ``num_nodes``-machine cluster of catalog platform ``base``.

    ``fabric`` picks the generator (:data:`FABRICS`); a single-node
    cluster gets no fabric at all — its graph is the base machine with
    renamed resources, which the degenerate-shape tests pin
    bit-identical to the standalone platform.
    """
    if fabric not in FABRICS:
        known = ", ".join(FABRICS)
        raise TopologyError(f"unknown fabric {fabric!r} (known: {known})")
    if not 1 <= num_nodes <= 64:
        raise TopologyError(
            f"cluster size must be in [1, 64] nodes, got {num_nodes}")
    specs = [system_by_name(base) for _ in range(num_nodes)]
    proto = specs[0]
    gpus_per_node = proto.num_gpus
    numa_per_node = len(proto.numa)
    topo = ClusterTopology(f"{base}-x{num_nodes}-{fabric}")
    numa = []
    gpu_specs = {}
    gpu_numa = {}
    for k, spec in enumerate(specs):
        topo.begin_machine()
        _graft_machine(topo, spec, k, k * gpus_per_node, k * numa_per_node)
        for node_spec in spec.numa:
            numa.append(replace(node_spec,
                                index=k * numa_per_node + node_spec.index))
        for name in spec.gpu_names:
            gid = k * gpus_per_node + int(name[3:])
            gpu_specs[f"gpu{gid}"] = spec.gpu_specs[name]
            gpu_numa[f"gpu{gid}"] = k * numa_per_node + spec.gpu_numa[name]
    if num_nodes > 1:
        _FABRIC_BUILDERS[fabric](topo, num_nodes, numa_per_node)
    total = num_nodes * gpus_per_node
    return ClusterSpec(
        name=f"{base}-x{num_nodes}-{fabric}",
        display_name=(f"{proto.display_name} x{num_nodes} ({fabric})"),
        cpu=proto.cpu,
        numa=numa,
        topology=topo,
        gpu_specs=gpu_specs,
        gpu_numa=gpu_numa,
        p2p_traverse_efficiency=proto.p2p_traverse_efficiency,
        preferred_gpu_sets={total: tuple(range(total))},
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        numa_per_node=numa_per_node,
        fabric=fabric if num_nodes > 1 else "none",
        base_name=base,
        node_preferred=dict(proto.preferred_gpu_sets),
    )
