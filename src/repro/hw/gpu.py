"""GPU device model.

A :class:`GpuSpec` captures what the timing model needs to know about a
device: memory capacity, sustained rates of the sorting/merging
primitives (calibrated from the paper's Table 2 and Section 5), the
device-local copy bandwidth (Section 5.2), and small fixed launch
overheads.

Rates are expressed in *bytes of input per second* rather than keys per
second so that 32- and 64-bit keys share one calibration: the paper
finds sorting throughput to be byte-rate-bound (Section 6.3), with a
small per-width adjustment factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import CalibrationError
from repro.units import US


@dataclass(frozen=True)
class GpuSpec:
    """Performance-relevant description of one GPU model.

    Parameters
    ----------
    model:
        Marketing name, e.g. ``"NVIDIA Tesla V100 SXM2 32 GB"``.
    memory_bytes:
        Device memory capacity.
    sort_rates:
        Sustained sort throughput in bytes/s per primitive name
        (``"thrust"``, ``"cub"``, ``"stehle"``, ``"mgpu"``) for 32-bit
        keys.
    width64_sort_factor:
        Multiplier on the byte rate when sorting 64-bit keys.  On the
        A100 the paper measures 64-bit runs within 95% of 32-bit ones
        (per byte); on the V100, 32-bit keys take only 83-88% of the
        64-bit time, i.e. 64-bit is ~0.855x per byte (Section 6.3).
    merge_rate:
        Two-way merge throughput (bytes of *output* per second) of the
        on-GPU merge primitive (``thrust::merge``).
    local_copy_rate:
        Device-to-device copy bandwidth in bytes/s (Section 5.2 measures
        it 3x NVLink 3.0 / 5x three NVLink 2.0 bricks / 42x PCIe 3.0).
    alloc_rate:
        cudaMalloc throughput in bytes/s; the paper measures allocating
        8 GB to take 150 ms on the AC922 (Section 5.1).
    launch_overhead_s:
        Fixed cost per kernel launch or copy, in seconds.
    """

    model: str
    memory_bytes: float
    sort_rates: Dict[str, float] = field(default_factory=dict)
    width64_sort_factor: float = 1.0
    merge_rate: float = 0.0
    local_copy_rate: float = 0.0
    alloc_rate: float = 53.3e9
    launch_overhead_s: float = 10 * US

    def __post_init__(self):
        if self.memory_bytes <= 0:
            raise CalibrationError("GPU memory capacity must be positive")
        for name, rate in self.sort_rates.items():
            if rate <= 0:
                raise CalibrationError(f"sort rate {name!r} must be positive")
        if self.merge_rate <= 0:
            raise CalibrationError("merge_rate must be positive")
        if self.local_copy_rate <= 0:
            raise CalibrationError("local_copy_rate must be positive")

    def sort_rate(self, primitive: str, itemsize: int) -> float:
        """Sustained sort rate in bytes/s for one primitive and key width."""
        try:
            rate = self.sort_rates[primitive]
        except KeyError:
            known = ", ".join(sorted(self.sort_rates))
            raise CalibrationError(
                f"unknown sort primitive {primitive!r} (known: {known})"
            ) from None
        if itemsize >= 8:
            rate *= self.width64_sort_factor
        return rate

    def sort_seconds(self, primitive: str, nbytes: float, itemsize: int) -> float:
        """Time to sort ``nbytes`` of ``itemsize``-wide keys."""
        return self.launch_overhead_s + nbytes / self.sort_rate(primitive, itemsize)

    def merge_seconds(self, nbytes_out: float) -> float:
        """Time for an on-GPU two-way merge producing ``nbytes_out``."""
        return self.launch_overhead_s + nbytes_out / self.merge_rate

    def local_copy_seconds(self, nbytes: float) -> float:
        """Time for a device-local (DtoD on the same GPU) copy."""
        return self.launch_overhead_s + nbytes / self.local_copy_rate

    def alloc_seconds(self, nbytes: float) -> float:
        """Time for a cudaMalloc of ``nbytes``."""
        return nbytes / self.alloc_rate
