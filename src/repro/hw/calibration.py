"""Calibration constants, each traced to a paper measurement.

Every constant below is an *effective* rate or factor fitted against a
specific number in the paper (figure/table given inline).  The platform
builders in :mod:`repro.hw.systems` assemble them into topologies; the
validation benchmarks (``benchmarks/bench_fig2..7*``) check that the
assembled model reproduces the original measurements.

Units: bandwidths in bytes/s (decimal GB), times in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.units import gb, gib


# --------------------------------------------------------------------------
# GPU compute rates
# --------------------------------------------------------------------------
# Table 2: an NVIDIA A100 sorts 1B 32-bit integers (4 GB) with
# Thrust/CUB in 36 ms, Stehle's MSB radix sort in 57 ms, and MGPU merge
# sort in 200 ms.
A100_SORT_RATES: Dict[str, float] = {
    "thrust": gb(4.0) / 36e-3,   # 111.1 GB/s
    "cub": gb(4.0) / 36e-3,      # identical: same underlying LSB radix sort
    "stehle": gb(4.0) / 57e-3,   # 70.2 GB/s
    "mgpu": gb(4.0) / 200e-3,    # 20.0 GB/s
}

# Section 6.1.4: "The NVIDIA A100 GPU sorts almost twice as fast as the
# Tesla V100" - we use a factor of 1.9.
A100_OVER_V100_SORT = 1.9
V100_SORT_RATES: Dict[str, float] = {
    name: rate / A100_OVER_V100_SORT for name, rate in A100_SORT_RATES.items()
}

# Section 6.3: on the A100, 32- and 64-bit runs of equal byte size
# perform within 95%.
A100_WIDTH64_FACTOR = 0.95
# End-to-end, the 32-bit V100 runs take 83-88% of the 64-bit time; with
# the transfer phases unchanged, that puts the 64-bit *kernel* at ~0.63x
# the 32-bit byte rate ("thrust::sort performs disproportionately better
# on 32-bit keys on the Tesla V100").
V100_WIDTH64_FACTOR = 0.63

# Section 5.2: device-local copies are 3x faster than NVLink 3.0
# (3 x 279 GB/s) and 5x faster than three NVLink 2.0 bricks (5 x 72).
A100_LOCAL_COPY = gb(3 * 279.0)
V100_LOCAL_COPY = gb(5 * 72.0)

# Section 5.2: thrust::merge on the GPU; fitted so the AC922 2-GPU merge
# phase (P2P swap + local merge) lands at ~20% of the 0.24 s total
# (Figure 12a) and the paper's 1.7x advantage over MGPU merge holds.
A100_MERGE_RATE = gb(380.0)
V100_MERGE_RATE = gb(200.0)

# Section 5.1: allocating 8 GB of GPU memory takes 150 ms on the AC922.
GPU_ALLOC_RATE = gb(8.0) / 150e-3

V100_MEMORY = gib(32.0)   # Table 1: Tesla V100 SXM2 32 GB
A100_MEMORY = gib(40.0)   # Table 1: A100 SXM4 40 GB

# GPU HBM as a routed resource: high enough that single flows never bind
# (V100: 900 GB/s, A100: 1555 GB/s datasheet; we use ~80%).
V100_HBM_BW = gb(720.0)
A100_HBM_BW = gb(1240.0)


# --------------------------------------------------------------------------
# CPU compute rates (per platform)
# --------------------------------------------------------------------------
# PARADIS baselines, fitted to the reported multi-GPU speedups:
#   AC922: "speedups of up to 14x for P2P sort" vs its best 0.24 s for
#          2B ints (8 GB)  -> ~3.4 s  -> 2.35 GB/s   (Section 6.1.1)
#   DELTA: "up to 9x" vs 0.64 s for 8 GB -> ~5.8 s -> 1.39 GB/s (6.1.2)
#   DGX:   Figure 1 shows PARADIS at 2.25 s for 4B ints (16 GB)
#          -> 7.1 GB/s
PARADIS_RATE = {
    "ibm-ac922": gb(2.35),
    "delta-d22x": gb(1.39),
    "dgx-a100": gb(7.1),
}

# Section 6: Polychroniou et al.'s SIMD LSB radix sort beats PARADIS for
# <= 2B keys on the DGX A100 and <= 8B keys on the DELTA D22x; it cannot
# run on the AC922 (POWER9 lacks the needed x86 SIMD).  We model it as a
# flat advantage below the crossover and a mild degradation above.
SIMD_LSB_RATE = {
    "delta-d22x": gb(1.39) * 1.25,
    "dgx-a100": gb(7.1) * 1.15,
}
SIMD_LSB_CROSSOVER_BYTES = {
    "delta-d22x": gb(32.0),   # 8B 32-bit keys
    "dgx-a100": gb(8.0),      # 2B 32-bit keys
}

# Library sorts (gnu_parallel / TBB / parallel std::sort): the paper
# finds PARADIS outperforms all of them on every system (Section 6).
LIBRARY_SORT_FRACTION = {"gnu_parallel": 0.72, "tbb": 0.65, "std_par": 0.55}

# gnu_parallel::multiway_merge output rates; fitted to the breakdowns:
#   AC922: merging 2 chunks of 8 GB total takes ~0.16 s  -> 50 GB/s
#          (Figure 12b: merge is 46% of the 0.35 s 2-GPU total)
#   DGX:   HET sort breakdowns put the k-way merge of 8 GB at ~0.19 s
#          -> 42 GB/s (Figure 14b)
#   DELTA: 2-GPU HET total of 0.90 s implies ~0.178 s for 8 GB -> 45 GB/s
MULTIWAY_MERGE_RATE = {
    "ibm-ac922": gb(50.0),
    "delta-d22x": gb(45.0),
    "dgx-a100": gb(42.0),
}

# Rate-multiplier anchors as the run count k grows (interpolated
# linearly between anchors, held beyond the last).  Section 6.1.1: the
# AC922's merge takes 8% longer for four chunks than for two;
# Section 6.1.2: on the DELTA the CPU merge of four chunks is only as
# fast as the PCIe-bound 4-GPU P2P merge (~28 GB/s); Section 6.1.3: the
# DGX A100's merge duration stays constant with the chunk count.
MULTIWAY_MERGE_K_FACTORS = {
    # Section 6.2 additionally reports the AC922's final merge of ~10
    # sublists (32B integers, two GPUs) at 10 s for 128 GB -> ~13 GB/s.
    "ibm-ac922": {4: 1 / 1.08, 10: 0.26},
    "delta-d22x": {4: 0.62},
    "dgx-a100": {},
}

# Section 5.3 / [37]: DRAM sustains 75-80% of its theoretical rate; the
# multiway merge then reaches 71-94% of that STREAM number.
STREAM_BW = {
    "ibm-ac922": gb(170.0) * 0.78,
    "delta-d22x": gb(128.0) * 0.78,
    "dgx-a100": gb(204.0) * 0.78,
}

# Standalone k-way merge rates of the Section 5.3 benchmark (isolated,
# ideally NUMA-placed runs saturating 71-94% of STREAM).  The rates the
# merge reaches *inside* HET sort (MULTIWAY_MERGE_RATE above) are lower,
# which the paper's own numbers imply: the DGX merges 8 GB in ~0.19 s
# during HET sort (42 GB/s) while its standalone merge saturation band
# demands >= 56 GB/s.
STANDALONE_MERGE_RATE = {
    "ibm-ac922": gb(50.0),    # 75% of STREAM
    "delta-d22x": gb(45.0),   # 90% of STREAM
    "dgx-a100": gb(58.0),     # 73% of STREAM
}


# --------------------------------------------------------------------------
# Interconnect effective rates and factors (Figures 2-7)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class InterconnectCalibration:
    """Effective bandwidths and load factors for one platform."""

    # Host memory per NUMA node (read / write / duplex factor).
    mem_read: float
    mem_write: float
    mem_duplex: float
    # CPU-GPU link (per GPU, per direction).
    cpu_gpu_fwd: float       # HtoD direction
    cpu_gpu_rev: float       # DtoH direction
    cpu_gpu_duplex: float
    # CPU-CPU interconnect.
    cpu_cpu_fwd: float
    cpu_cpu_rev: float
    cpu_cpu_duplex: float
    cpu_cpu_sharing: Optional[Dict[int, float]]
    # GPU-GPU P2P link (per directly-connected pair, per direction).
    p2p: Optional[float]
    p2p_duplex: float
    # Efficiency of host-staged P2P copies relative to the static
    # bottleneck of their path.
    p2p_host_traverse_efficiency: float


# IBM AC922 (Figures 2a/2b, 5a/5b):
#   local HtoD/DtoH 72 GB/s over three NVLink 2.0 bricks; bidirectional
#   127 GB/s (duplex 0.88); parallel local saturation 141 read / 109
#   write / 136 bidirectional at host memory (duplex 0.544); X-Bus
#   41/35 GB/s with duplex 0.855 and sharing degradation to 0.82 at four
#   concurrent flows; direct P2P 72 GB/s (duplex ~1.0); host-staged P2P
#   0.8 x 41 = ~33 GB/s.
AC922 = InterconnectCalibration(
    mem_read=gb(141.0), mem_write=gb(109.0), mem_duplex=0.544,
    cpu_gpu_fwd=gb(72.0), cpu_gpu_rev=gb(72.0), cpu_gpu_duplex=0.88,
    cpu_cpu_fwd=gb(41.0), cpu_cpu_rev=gb(35.0), cpu_cpu_duplex=0.855,
    cpu_cpu_sharing={2: 0.95, 4: 0.82},
    p2p=gb(72.5), p2p_duplex=1.0,
    p2p_host_traverse_efficiency=0.80,
)

# DELTA D22x M4 PS (Figures 3a/3b, 6a/6b):
#   PCIe 3.0 12/13 GB/s per GPU with an exclusive switch each, duplex
#   0.8 (bidirectional 20 GB/s); UPI 62 GB/s; direct P2P over two
#   NVLink 2.0 bricks 48.5 GB/s (pairs reach 97 GB/s bidirectionally);
#   host-staged P2P 9 GB/s = 0.72 x 12.5.
DELTA = InterconnectCalibration(
    mem_read=gb(110.0), mem_write=gb(110.0), mem_duplex=0.85,
    cpu_gpu_fwd=gb(12.2), cpu_gpu_rev=gb(12.8), cpu_gpu_duplex=0.80,
    cpu_cpu_fwd=gb(62.0), cpu_cpu_rev=gb(62.0), cpu_cpu_duplex=0.90,
    cpu_cpu_sharing=None,
    p2p=gb(48.5), p2p_duplex=1.0,
    p2p_host_traverse_efficiency=0.72,
)
#: One-brick NVLink 2.0 pairs on the DELTA (the 25 GB/s edge in Table 1b).
DELTA_P2P_SINGLE = gb(24.0)

# NVIDIA DGX A100 (Figures 4, 7):
#   PCIe 4.0 24.5/26 GB/s effective per switch uplink, one switch per
#   GPU *pair* (duplex 0.8 -> 39 GB/s serial bidirectional); host memory
#   90 read / 105 write (all-8 parallel saturation), duplex 0.57 (111
#   GB/s bidirectional); Infinity Fabric 92 GB/s with a strong duplex
#   penalty (0.33) explaining the 61 GB/s remote-pair bidirectional
#   result; NVSwitch ports 279 GB/s per direction per GPU (duplex 0.95
#   -> 530 GB/s per pair, scaling linearly to 2116 GB/s on 8 GPUs).
DGX = InterconnectCalibration(
    mem_read=gb(90.0), mem_write=gb(105.0), mem_duplex=0.57,
    cpu_gpu_fwd=gb(24.5), cpu_gpu_rev=gb(26.0), cpu_gpu_duplex=0.80,
    cpu_cpu_fwd=gb(92.0), cpu_cpu_rev=gb(92.0), cpu_cpu_duplex=0.33,
    cpu_cpu_sharing=None,
    p2p=None,  # all P2P goes through NVSwitch ports
    p2p_duplex=0.95,
    p2p_host_traverse_efficiency=0.80,
)
DGX_NVSWITCH_PORT = gb(279.0)
DGX_NVSWITCH_FABRIC = gb(4800.0)  # non-blocking: never the bottleneck

# Figure 4 measures GPU pair (0, 1) — one shared switch — at only
# 29 GB/s bidirectionally, below even the serial bidirectional rate of
# 39 GB/s: four concurrent streams congest the shared uplink.
DGX_SWITCH_SHARING = {4: 0.72}

# Host memory capacities (Table 1).
HOST_MEMORY = {
    "ibm-ac922": gib(256.0),
    "delta-d22x": gib(755.0),
    "dgx-a100": gib(512.0),
}

# Pageable (non-pinned) host buffers copy at roughly half the pinned
# rate because of the intermediate staging copy (Section 4.2, [24]).
PAGEABLE_PENALTY = 0.5
