"""Hardware models: links, topologies, GPUs, hosts and the platform catalog.

The three platforms of the paper's Table 1 are available as ready-made
builders:

>>> from repro.hw import ibm_ac922, delta_d22x, dgx_a100
>>> spec = dgx_a100()
>>> len(spec.gpus)
8
"""

from repro.hw.links import LinkKind
from repro.hw.topology import (
    NodeKind,
    RouteTable,
    TIER_INTER,
    TIER_INTRA,
    Topology,
    TopologyNode,
)
from repro.hw.gpu import GpuSpec
from repro.hw.host import CpuSpec, NumaNodeSpec
from repro.hw.systems import (
    SystemSpec,
    SystemBuilder,
    delta_d22x,
    dgx_a100,
    ibm_ac922,
    system_by_name,
)
from repro.hw.cluster import (
    FABRICS,
    ClusterSpec,
    ClusterTopology,
    make_cluster,
)

__all__ = [
    "ClusterSpec",
    "ClusterTopology",
    "CpuSpec",
    "FABRICS",
    "GpuSpec",
    "LinkKind",
    "NodeKind",
    "NumaNodeSpec",
    "RouteTable",
    "SystemBuilder",
    "SystemSpec",
    "TIER_INTER",
    "TIER_INTRA",
    "Topology",
    "TopologyNode",
    "delta_d22x",
    "dgx_a100",
    "ibm_ac922",
    "make_cluster",
    "system_by_name",
]
