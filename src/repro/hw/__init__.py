"""Hardware models: links, topologies, GPUs, hosts and the platform catalog.

The three platforms of the paper's Table 1 are available as ready-made
builders:

>>> from repro.hw import ibm_ac922, delta_d22x, dgx_a100
>>> spec = dgx_a100()
>>> len(spec.gpus)
8
"""

from repro.hw.links import LinkKind
from repro.hw.topology import NodeKind, Topology, TopologyNode
from repro.hw.gpu import GpuSpec
from repro.hw.host import CpuSpec, NumaNodeSpec
from repro.hw.systems import (
    SystemSpec,
    SystemBuilder,
    delta_d22x,
    dgx_a100,
    ibm_ac922,
    system_by_name,
)

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "LinkKind",
    "NodeKind",
    "NumaNodeSpec",
    "SystemBuilder",
    "SystemSpec",
    "Topology",
    "TopologyNode",
    "delta_d22x",
    "dgx_a100",
    "ibm_ac922",
    "system_by_name",
]
