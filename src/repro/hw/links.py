"""Interconnect link kinds and their datasheet characteristics.

The catalog covers every interconnect appearing in the paper's Table 1.
``peak_bandwidth`` is the theoretical per-direction rate of *one* link
instance; effective rates are calibrated per system in
:mod:`repro.hw.systems` from the paper's measurements.
"""

from __future__ import annotations

import enum

from repro.units import gb


class LinkKind(enum.Enum):
    """Interconnect technology of a link."""

    NVLINK2 = "nvlink2"
    NVLINK3 = "nvlink3"
    NVSWITCH = "nvswitch"
    PCIE3 = "pcie3"
    PCIE4 = "pcie4"
    XBUS = "xbus"
    UPI = "upi"
    INFINITY_FABRIC = "infinity_fabric"
    MEMORY = "memory"
    ONBOARD = "onboard"
    #: Host-attached network interface (PCIe 4.0 x16 HCA, one per rail).
    NIC = "nic"
    #: InfiniBand HDR cable — NIC-to-switch or switch uplink.
    INFINIBAND = "infiniband"
    #: Port on a cluster fabric switch (leaf/spine/router crossbar).
    FABRIC_SWITCH = "fabric_switch"

    @property
    def peak_bandwidth(self) -> float:
        """Theoretical per-direction bandwidth of one link instance, B/s.

        Sources: Section 2 of the paper (NVLink 2.0: 25 GB/s per link,
        NVLink 3.0: 25 GB/s per link with 12 links per GPU, PCIe 3.0 x16:
        16 GB/s, PCIe 4.0 x16: 32 GB/s) and Table 1 (X-Bus: 64 GB/s,
        UPI: 62 GB/s, Infinity Fabric: 102 GB/s).  The cluster fabric
        kinds follow published supercomputer-interconnect surveys: a
        PCIe 4.0 x16 HCA (32 GB/s), HDR InfiniBand cables (25 GB/s per
        direction), and a non-blocking switch crossbar (400 GB/s).
        """
        return {
            LinkKind.NVLINK2: gb(25.0),
            LinkKind.NVLINK3: gb(25.0),
            LinkKind.NVSWITCH: gb(300.0),
            LinkKind.PCIE3: gb(16.0),
            LinkKind.PCIE4: gb(32.0),
            LinkKind.XBUS: gb(64.0),
            LinkKind.UPI: gb(62.0),
            LinkKind.INFINITY_FABRIC: gb(102.0),
            LinkKind.MEMORY: gb(170.0),
            LinkKind.ONBOARD: gb(1000.0),
            LinkKind.NIC: gb(32.0),
            LinkKind.INFINIBAND: gb(25.0),
            LinkKind.FABRIC_SWITCH: gb(400.0),
        }[self]

    @property
    def hop_latency_s(self) -> float:
        """One-way traversal latency of one hop over this link, seconds.

        Ballpark figures from published microbenchmarks (Li et al.,
        Pearson et al.): a couple of microseconds per PCIe or NVLink
        hop, slightly more across CPU interconnects.  Negligible for
        the paper's 4 GB copies; dominant for KB-scale transfers.
        """
        from repro.units import US
        return {
            LinkKind.NVLINK2: 1.3 * US,
            LinkKind.NVLINK3: 1.1 * US,
            LinkKind.NVSWITCH: 1.8 * US,
            LinkKind.PCIE3: 1.8 * US,
            LinkKind.PCIE4: 1.6 * US,
            LinkKind.XBUS: 2.2 * US,
            LinkKind.UPI: 1.9 * US,
            LinkKind.INFINITY_FABRIC: 1.9 * US,
            LinkKind.MEMORY: 0.2 * US,
            LinkKind.ONBOARD: 0.1 * US,
            LinkKind.NIC: 1.5 * US,
            LinkKind.INFINIBAND: 0.6 * US,
            LinkKind.FABRIC_SWITCH: 0.3 * US,
        }[self]

    @property
    def is_p2p_capable(self) -> bool:
        """Whether GPUs on this link can do direct P2P transfers."""
        return self in (LinkKind.NVLINK2, LinkKind.NVLINK3, LinkKind.NVSWITCH)

    def __str__(self) -> str:
        return self.value
