"""Platform catalog: the three evaluated systems plus a custom builder.

Each builder returns a fresh :class:`SystemSpec` assembling the
calibrated resources of :mod:`repro.hw.calibration` into the topology of
the paper's Table 1:

* :func:`ibm_ac922` — 2x POWER9, 4x V100, NVLink 2.0 everywhere, X-Bus.
* :func:`delta_d22x` — 2x Xeon Gold 6148, 4x V100, PCIe 3.0 to the host,
  NVLink 2.0 P2P for select pairs, UPI.
* :func:`dgx_a100` — 2x EPYC 7742, 8x A100, PCIe 4.0 switches shared by
  GPU pairs, NVLink 3.0 NVSwitch all-to-all, Infinity Fabric.

Use :class:`SystemBuilder` to model machines beyond the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.hw import calibration as cal
from repro.hw.gpu import GpuSpec
from repro.hw.host import CpuSpec, NumaNodeSpec
from repro.hw.links import LinkKind
from repro.hw.topology import NodeKind, Topology
from repro.sim.resources import Resource, SharingCurve
from repro.units import gb


@dataclass
class SystemSpec:
    """A complete machine: topology, device specs, and calibration."""

    name: str
    display_name: str
    cpu: CpuSpec
    numa: List[NumaNodeSpec]
    topology: Topology
    gpu_specs: Dict[str, GpuSpec]
    gpu_numa: Dict[str, int]
    p2p_traverse_efficiency: float
    #: Paper-faithful GPU id sets per GPU count (Section 6 intro / 5.4).
    preferred_gpu_sets: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def gpu_names(self) -> List[str]:
        """GPU node names in id order (``gpu0``, ``gpu1``, ...)."""
        return sorted(self.gpu_specs, key=lambda n: int(n[3:]))

    @property
    def num_gpus(self) -> int:
        """Number of GPUs in the machine."""
        return len(self.gpu_specs)

    def gpu_name(self, gpu_id: int) -> str:
        """Node name of GPU ``gpu_id``."""
        name = f"gpu{gpu_id}"
        if name not in self.gpu_specs:
            raise TopologyError(f"no GPU with id {gpu_id} on {self.name}")
        return name

    def preferred_gpu_set(self, count: int) -> Tuple[int, ...]:
        """The paper's GPU id choice for sorting with ``count`` GPUs."""
        if count in self.preferred_gpu_sets:
            return self.preferred_gpu_sets[count]
        if count > self.num_gpus:
            raise TopologyError(
                f"{self.name} has only {self.num_gpus} GPUs, {count} requested")
        return tuple(range(count))

    def numa_node_name(self, index: int) -> str:
        """Topology node name of NUMA node ``index``."""
        return f"cpu{index}"


# --------------------------------------------------------------------------
# Builder
# --------------------------------------------------------------------------
class SystemBuilder:
    """Fluent construction of custom multi-GPU platforms.

    >>> b = SystemBuilder("toy", "Toy box")
    >>> b.add_numa_node(read_bw=gb(100), write_bw=gb(100),
    ...                 capacity=gib(128))
    0
    >>> b.add_gpu(numa=0, spec=b.v100_spec(),
    ...           link=LinkKind.PCIE3, bandwidth=gb(12.5))
    0
    >>> spec = b.build(cpu=b.generic_cpu())
    """

    def __init__(self, name: str, display_name: Optional[str] = None):
        self.name = name
        self.display_name = display_name or name
        self.topology = Topology(name)
        self.numa: List[NumaNodeSpec] = []
        self.gpu_specs: Dict[str, GpuSpec] = {}
        self.gpu_numa: Dict[str, int] = {}
        self.p2p_traverse_efficiency = 0.8
        self.preferred_gpu_sets: Dict[int, Tuple[int, ...]] = {}

    # -- reusable specs ---------------------------------------------------
    @staticmethod
    def v100_spec() -> GpuSpec:
        """An NVIDIA Tesla V100 SXM2 32 GB, calibrated per Section 5/6.3."""
        return GpuSpec(
            model="NVIDIA Tesla V100 SXM2 32 GB",
            memory_bytes=cal.V100_MEMORY,
            sort_rates=dict(cal.V100_SORT_RATES),
            width64_sort_factor=cal.V100_WIDTH64_FACTOR,
            merge_rate=cal.V100_MERGE_RATE,
            local_copy_rate=cal.V100_LOCAL_COPY,
            alloc_rate=cal.GPU_ALLOC_RATE,
        )

    @staticmethod
    def a100_spec() -> GpuSpec:
        """An NVIDIA A100 SXM4 40 GB, calibrated per Table 2/Section 6.3."""
        return GpuSpec(
            model="NVIDIA A100 SXM4 40 GB",
            memory_bytes=cal.A100_MEMORY,
            sort_rates=dict(cal.A100_SORT_RATES),
            width64_sort_factor=cal.A100_WIDTH64_FACTOR,
            merge_rate=cal.A100_MERGE_RATE,
            local_copy_rate=cal.A100_LOCAL_COPY,
            alloc_rate=cal.GPU_ALLOC_RATE,
        )

    @staticmethod
    def generic_cpu(sort_rate: float = gb(2.0),
                    merge_rate: float = gb(45.0)) -> CpuSpec:
        """A plain dual-socket CPU spec for custom platforms."""
        return CpuSpec(
            model="Generic x86_64",
            sockets=2,
            cores_per_socket=16,
            sort_rates={
                "paradis": sort_rate,
                "gnu_parallel": sort_rate * cal.LIBRARY_SORT_FRACTION["gnu_parallel"],
                "tbb": sort_rate * cal.LIBRARY_SORT_FRACTION["tbb"],
                "std_par": sort_rate * cal.LIBRARY_SORT_FRACTION["std_par"],
            },
            multiway_merge_rate=merge_rate,
            stream_bw=gb(100.0),
        )

    # -- construction -----------------------------------------------------
    def add_numa_node(
        self,
        read_bw: float,
        write_bw: float,
        capacity: float,
        duplex_factor: float = 0.85,
    ) -> int:
        """Add one CPU/NUMA node; returns its index."""
        index = len(self.numa)
        spec = NumaNodeSpec(index=index, capacity_bytes=capacity,
                            read_bw=read_bw, write_bw=write_bw,
                            duplex_factor=duplex_factor)
        self.numa.append(spec)
        memory = Resource(f"mem{index}", capacity_fwd=read_bw,
                          capacity_rev=write_bw, duplex_factor=duplex_factor,
                          latency_s=LinkKind.MEMORY.hop_latency_s)
        self.topology.add_node(f"cpu{index}", NodeKind.CPU, memory=memory,
                               numa=index)
        return index

    def connect_numa_nodes(
        self,
        a: int,
        b: int,
        kind: LinkKind,
        bandwidth_fwd: float,
        bandwidth_rev: Optional[float] = None,
        duplex_factor: float = 0.9,
        sharing: Optional[Dict[int, float]] = None,
    ) -> None:
        """Add a CPU-CPU interconnect (X-Bus / UPI / Infinity Fabric)."""
        resource = Resource(
            f"{kind.value}_{a}_{b}", capacity_fwd=bandwidth_fwd,
            capacity_rev=bandwidth_rev, duplex_factor=duplex_factor,
            sharing=SharingCurve(sharing) if sharing else None,
            latency_s=kind.hop_latency_s)
        self.topology.add_edge(f"cpu{a}", f"cpu{b}", resource, kind)

    def add_gpu(
        self,
        numa: int,
        spec: GpuSpec,
        link: LinkKind,
        bandwidth: float,
        bandwidth_rev: Optional[float] = None,
        duplex_factor: float = 0.85,
        hbm_bw: Optional[float] = None,
        via: Optional[str] = None,
    ) -> int:
        """Attach a GPU to NUMA node ``numa`` (or to switch ``via``).

        Returns the GPU id.  ``bandwidth`` is the effective CPU-GPU rate
        in the HtoD direction; ``bandwidth_rev`` defaults to it.
        """
        gpu_id = len(self.gpu_specs)
        name = f"gpu{gpu_id}"
        hbm = Resource(f"gmem{gpu_id}",
                       capacity_fwd=hbm_bw or gb(720.0),
                       capacity_rev=hbm_bw or gb(720.0),
                       latency_s=LinkKind.MEMORY.hop_latency_s)
        self.topology.add_node(name, NodeKind.GPU, memory=hbm, numa=numa)
        self.gpu_specs[name] = spec
        self.gpu_numa[name] = numa
        upstream = via if via is not None else f"cpu{numa}"
        resource = Resource(f"{link.value}_{upstream}_{name}",
                            capacity_fwd=bandwidth,
                            capacity_rev=bandwidth_rev,
                            duplex_factor=duplex_factor,
                            latency_s=link.hop_latency_s)
        self.topology.add_edge(upstream, name, resource, link)
        return gpu_id

    def add_switch(
        self,
        name: str,
        numa: int,
        kind: LinkKind,
        uplink_fwd: float,
        uplink_rev: Optional[float] = None,
        duplex_factor: float = 0.8,
        sharing: Optional[Dict[int, float]] = None,
    ) -> str:
        """Add a switch below NUMA node ``numa`` with a shared uplink."""
        self.topology.add_node(name, NodeKind.SWITCH, numa=numa)
        resource = Resource(f"{kind.value}_uplink_{name}",
                            capacity_fwd=uplink_fwd,
                            capacity_rev=uplink_rev,
                            duplex_factor=duplex_factor,
                            sharing=SharingCurve(sharing) if sharing
                            else None,
                            latency_s=kind.hop_latency_s)
        self.topology.add_edge(f"cpu{numa}", name, resource, kind)
        return name

    def connect_gpus(
        self,
        a: int,
        b: int,
        kind: LinkKind,
        bandwidth: float,
        duplex_factor: float = 1.0,
    ) -> None:
        """Add a direct P2P link between two GPUs."""
        resource = Resource(f"{kind.value}_gpu{a}_gpu{b}",
                            capacity_fwd=bandwidth,
                            capacity_rev=bandwidth,
                            duplex_factor=duplex_factor,
                            latency_s=kind.hop_latency_s)
        self.topology.add_edge(f"gpu{a}", f"gpu{b}", resource, kind)

    def add_nvswitch(self, port_bandwidth: float, gpu_ids: Sequence[int],
                     duplex_factor: float = 0.95,
                     fabric_bandwidth: float = cal.DGX_NVSWITCH_FABRIC) -> None:
        """Connect ``gpu_ids`` all-to-all through an NVSwitch fabric."""
        # The fabric node itself is modelled as non-blocking (its
        # aggregate bandwidth far exceeds the sum of the port rates).
        self.topology.add_node("nvswitch", NodeKind.SWITCH)
        for gpu_id in gpu_ids:
            port = Resource(f"nvswitch_port_gpu{gpu_id}",
                            capacity_fwd=port_bandwidth,
                            capacity_rev=port_bandwidth,
                            duplex_factor=duplex_factor,
                            latency_s=LinkKind.NVSWITCH.hop_latency_s)
            self.topology.add_edge(f"gpu{gpu_id}", "nvswitch", port,
                                   LinkKind.NVSWITCH)

    def build(self, cpu: CpuSpec) -> SystemSpec:
        """Finalize the machine."""
        if not self.numa:
            raise TopologyError("a system needs at least one NUMA node")
        if not self.gpu_specs:
            raise TopologyError("a system needs at least one GPU")
        return SystemSpec(
            name=self.name,
            display_name=self.display_name,
            cpu=cpu,
            numa=list(self.numa),
            topology=self.topology,
            gpu_specs=dict(self.gpu_specs),
            gpu_numa=dict(self.gpu_numa),
            p2p_traverse_efficiency=self.p2p_traverse_efficiency,
            preferred_gpu_sets=dict(self.preferred_gpu_sets),
        )


# --------------------------------------------------------------------------
# The three platforms of Table 1
# --------------------------------------------------------------------------
def _cpu_spec(system: str, model: str, sockets: int, cores: int,
              has_x86_simd: bool) -> CpuSpec:
    paradis = cal.PARADIS_RATE[system]
    rates = {
        "paradis": paradis,
        "gnu_parallel": paradis * cal.LIBRARY_SORT_FRACTION["gnu_parallel"],
        "tbb": paradis * cal.LIBRARY_SORT_FRACTION["tbb"],
        "std_par": paradis * cal.LIBRARY_SORT_FRACTION["std_par"],
    }
    if has_x86_simd and system in cal.SIMD_LSB_RATE:
        rates["simd_lsb"] = cal.SIMD_LSB_RATE[system]
    return CpuSpec(
        model=model, sockets=sockets, cores_per_socket=cores,
        sort_rates=rates,
        multiway_merge_rate=cal.MULTIWAY_MERGE_RATE[system],
        merge_k_factors=dict(cal.MULTIWAY_MERGE_K_FACTORS[system]),
        stream_bw=cal.STREAM_BW[system],
        has_x86_simd=has_x86_simd,
    )


def ibm_ac922() -> SystemSpec:
    """IBM Power System AC922 (Table 1a).

    2x POWER9 (16 x 2.7 GHz), 4x Tesla V100, NVLink 2.0 both CPU-GPU
    and P2P (three bricks each, 75 GB/s peak / 72 GB/s effective), X-Bus
    between the CPUs.  GPUs 0, 1 attach to CPU 0; GPUs 2, 3 to CPU 1.
    P2P links exist within the local pairs (0-1 and 2-3) only.
    """
    c = cal.AC922
    b = SystemBuilder("ibm-ac922", "IBM Power System AC922")
    b.p2p_traverse_efficiency = c.p2p_host_traverse_efficiency
    for _ in range(2):
        b.add_numa_node(read_bw=c.mem_read, write_bw=c.mem_write,
                        capacity=cal.HOST_MEMORY["ibm-ac922"] / 2,
                        duplex_factor=c.mem_duplex)
    b.connect_numa_nodes(0, 1, LinkKind.XBUS, c.cpu_cpu_fwd, c.cpu_cpu_rev,
                         duplex_factor=c.cpu_cpu_duplex,
                         sharing=c.cpu_cpu_sharing)
    for numa in (0, 0, 1, 1):
        b.add_gpu(numa=numa, spec=SystemBuilder.v100_spec(),
                  link=LinkKind.NVLINK2, bandwidth=c.cpu_gpu_fwd,
                  bandwidth_rev=c.cpu_gpu_rev,
                  duplex_factor=c.cpu_gpu_duplex,
                  hbm_bw=cal.V100_HBM_BW)
    b.connect_gpus(0, 1, LinkKind.NVLINK2, c.p2p, duplex_factor=c.p2p_duplex)
    b.connect_gpus(2, 3, LinkKind.NVLINK2, c.p2p, duplex_factor=c.p2p_duplex)
    b.preferred_gpu_sets = {1: (0,), 2: (0, 1), 4: (0, 1, 2, 3)}
    return b.build(cpu=_cpu_spec("ibm-ac922", "IBM POWER9", 2, 16,
                                 has_x86_simd=False))


def delta_d22x() -> SystemSpec:
    """DELTA System D22x M4 PS (Table 1b).

    2x Xeon Gold 6148 (20 x 2.4 GHz), 4x Tesla V100 behind exclusive
    PCIe 3.0 switches (GPUs 0, 1 on CPU 0; GPUs 2, 3 on CPU 1), UPI
    between the CPUs, NVLink 2.0 P2P: two bricks on 0-1, 0-2 and 2-3,
    one brick (25 GB/s peak) on 1-3.  Pairs (0, 3) and (1, 2) are not
    directly interconnected (Section 4.3).
    """
    c = cal.DELTA
    b = SystemBuilder("delta-d22x", "DELTA System D22x M4 PS")
    b.p2p_traverse_efficiency = c.p2p_host_traverse_efficiency
    for _ in range(2):
        b.add_numa_node(read_bw=c.mem_read, write_bw=c.mem_write,
                        capacity=cal.HOST_MEMORY["delta-d22x"] / 2,
                        duplex_factor=c.mem_duplex)
    b.connect_numa_nodes(0, 1, LinkKind.UPI, c.cpu_cpu_fwd, c.cpu_cpu_rev,
                         duplex_factor=c.cpu_cpu_duplex,
                         sharing=c.cpu_cpu_sharing)
    for numa in (0, 0, 1, 1):
        b.add_gpu(numa=numa, spec=SystemBuilder.v100_spec(),
                  link=LinkKind.PCIE3, bandwidth=c.cpu_gpu_fwd,
                  bandwidth_rev=c.cpu_gpu_rev,
                  duplex_factor=c.cpu_gpu_duplex,
                  hbm_bw=cal.V100_HBM_BW)
    b.connect_gpus(0, 1, LinkKind.NVLINK2, c.p2p, duplex_factor=c.p2p_duplex)
    b.connect_gpus(0, 2, LinkKind.NVLINK2, c.p2p, duplex_factor=c.p2p_duplex)
    b.connect_gpus(2, 3, LinkKind.NVLINK2, c.p2p, duplex_factor=c.p2p_duplex)
    b.connect_gpus(1, 3, LinkKind.NVLINK2, cal.DELTA_P2P_SINGLE,
                   duplex_factor=c.p2p_duplex)
    b.preferred_gpu_sets = {1: (0,), 2: (0, 1), 4: (0, 1, 2, 3)}
    return b.build(cpu=_cpu_spec("delta-d22x", "Intel Xeon Gold 6148", 2, 20,
                                 has_x86_simd=True))


def dgx_a100() -> SystemSpec:
    """NVIDIA DGX A100 (Table 1c).

    2x EPYC 7742 (64 x 2.25 GHz), 8x A100.  GPU pairs (0,1), (2,3),
    (4,5), (6,7) each share one PCIe 4.0 switch uplink to the host
    (Section 4.2); all GPUs are all-to-all interconnected through
    NVLink 3.0-based NVSwitch; Infinity Fabric links the CPUs.
    """
    c = cal.DGX
    b = SystemBuilder("dgx-a100", "NVIDIA DGX A100")
    b.p2p_traverse_efficiency = c.p2p_host_traverse_efficiency
    for _ in range(2):
        b.add_numa_node(read_bw=c.mem_read, write_bw=c.mem_write,
                        capacity=cal.HOST_MEMORY["dgx-a100"] / 2,
                        duplex_factor=c.mem_duplex)
    b.connect_numa_nodes(0, 1, LinkKind.INFINITY_FABRIC,
                         c.cpu_cpu_fwd, c.cpu_cpu_rev,
                         duplex_factor=c.cpu_cpu_duplex,
                         sharing=c.cpu_cpu_sharing)
    # One PCIe 4.0 switch per GPU pair; the shared uplink is the
    # bottleneck the paper identifies (Figure 4: (0,1) does not scale,
    # (0,2) does).
    for pair, numa in ((0, 0), (1, 0), (2, 1), (3, 1)):
        b.add_switch(f"pcie_sw{pair}", numa=numa, kind=LinkKind.PCIE4,
                     uplink_fwd=c.cpu_gpu_fwd, uplink_rev=c.cpu_gpu_rev,
                     duplex_factor=c.cpu_gpu_duplex,
                     sharing=cal.DGX_SWITCH_SHARING)
    for gpu_id in range(8):
        switch = f"pcie_sw{gpu_id // 2}"
        numa = 0 if gpu_id < 4 else 1
        b.add_gpu(numa=numa, spec=SystemBuilder.a100_spec(),
                  link=LinkKind.PCIE4, bandwidth=c.cpu_gpu_fwd,
                  bandwidth_rev=c.cpu_gpu_rev,
                  duplex_factor=c.cpu_gpu_duplex,
                  hbm_bw=cal.A100_HBM_BW, via=switch)
    b.add_nvswitch(cal.DGX_NVSWITCH_PORT, range(8),
                   duplex_factor=c.p2p_duplex)
    b.preferred_gpu_sets = {
        1: (0,), 2: (0, 2), 4: (0, 2, 4, 6),
        8: (0, 1, 2, 3, 4, 5, 6, 7),
    }
    return b.build(cpu=_cpu_spec("dgx-a100", "AMD EPYC 7742", 2, 64,
                                 has_x86_simd=True))


_CATALOG = {
    "ibm-ac922": ibm_ac922,
    "delta-d22x": delta_d22x,
    "dgx-a100": dgx_a100,
}


def system_by_name(name: str) -> SystemSpec:
    """Build a catalog platform by name.

    Accepted names: ``ibm-ac922``, ``delta-d22x``, ``dgx-a100``.
    """
    try:
        return _CATALOG[name]()
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise TopologyError(f"unknown system {name!r} (known: {known})") from None
