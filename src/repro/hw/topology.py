"""Interconnect topology graph and copy-path routing.

A :class:`Topology` is an undirected multigraph: nodes are CPUs (NUMA
nodes), GPUs and switches (PCIe switches, NVSwitch); edges carry a
shared :class:`~repro.sim.resources.Resource` plus the link kind.  A
node may own a memory resource (host DRAM for CPU nodes, HBM for GPU
nodes) that every copy starting or ending at the node crosses.

Routing follows CUDA semantics rather than generic graph routing:

* GPUs never forward traffic for other GPUs — multi-hop P2P routing
  exists only as future work in the paper (Section 7), so GPU nodes are
  endpoints, never transit nodes.
* A P2P copy uses the direct link (or switch fabric) when one exists;
  otherwise it is staged over the host side, exactly like
  ``cudaMemcpyPeer`` on systems without P2P access.
"""

from __future__ import annotations

import enum
import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import TopologyError
from repro.hw.links import LinkKind
from repro.sim.resources import Direction, Resource

Hop = Tuple[Resource, Direction]

#: Telemetry tier of links inside one machine (NVLink, PCIe, CPU buses).
TIER_INTRA = "intra"
#: Telemetry tier of the cluster fabric (NICs, InfiniBand, switches).
TIER_INTER = "inter"


class NodeKind(enum.Enum):
    """Role of a node in the interconnect graph."""

    CPU = "cpu"
    GPU = "gpu"
    SWITCH = "switch"


@dataclass
class TopologyNode:
    """One vertex of the interconnect graph."""

    name: str
    kind: NodeKind
    #: Memory subsystem of this node, if it has addressable memory.
    memory: Optional[Resource] = None
    #: Arbitrary extras (e.g. NUMA node index).
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def can_transit(self) -> bool:
        """Whether copies may pass *through* this node."""
        return self.kind is not NodeKind.GPU

    def __repr__(self) -> str:
        return f"<TopologyNode {self.name} ({self.kind.value})>"


@dataclass(frozen=True)
class Edge:
    """One undirected link between two nodes.

    Travelling ``a -> b`` crosses the resource in ``Direction.FWD``;
    ``b -> a`` crosses it in ``Direction.REV``.
    """

    a: str
    b: str
    resource: Resource
    kind: LinkKind

    def other(self, node: str) -> str:
        """The opposite endpoint of ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node} is not an endpoint of edge {self}")

    def direction_from(self, node: str) -> Direction:
        """Resource direction when leaving ``node`` over this edge."""
        if node == self.a:
            return Direction.FWD
        if node == self.b:
            return Direction.REV
        raise TopologyError(f"{node} is not an endpoint of edge {self}")


@dataclass(frozen=True)
class Route:
    """A resolved copy path with metadata the runtime needs."""

    src: str
    dst: str
    hops: Tuple[Hop, ...]
    #: Link kinds crossed, in order (memory resources excluded).
    link_kinds: Tuple[LinkKind, ...]
    #: Whether the path is staged through a CPU node between two GPUs.
    host_traversing: bool
    #: Minimum static capacity along the path (forward direction of travel).
    bottleneck: float
    #: Total one-way traversal latency of the path (sum over hops),
    #: pre-computed once so per-copy setup stays O(1).
    latency_s: float = 0.0


class RouteTable:
    """Precomputed route cache with hit statistics.

    Routes are memoized by ``(src, dst, avoid)`` — the travel direction
    is implied by the ordered pair, so ``(a, b)`` and ``(b, a)`` are
    distinct entries.  The table exists because cluster-scale sorts
    resolve the same handful of paths millions of times: a cache hit is
    one dict probe, a miss pays the Dijkstra walk (its wall time is
    accounted in :attr:`miss_wall_s`, which the ``--profile`` bench
    breakdown reads to prove route lookup is off the hot path).

    Link up/down events from :mod:`repro.faults` call
    :meth:`invalidate`; dropping the whole table is semantically safe
    because the resilient runtime overlays down links through ``avoid``
    sets, but invalidation keeps the table from pinning Route objects
    for dead link states forever.
    """

    __slots__ = ("_table", "hits", "misses", "invalidations", "miss_wall_s")

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, str, Optional[frozenset]], Route] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.miss_wall_s = 0.0

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, key: Tuple[str, str, Optional[frozenset]]
               ) -> Optional[Route]:
        """The cached route for ``key``, counting the hit/miss."""
        route = self._table.get(key)
        if route is not None:
            self.hits += 1
        else:
            self.misses += 1
        return route

    def store(self, key: Tuple[str, str, Optional[frozenset]],
              route: Route) -> None:
        self._table[key] = route

    def invalidate(self) -> None:
        """Drop every cached route (topology or link-state change).

        A flush of an already-empty table is free and not counted, so
        the ``invalidations`` stat measures real cache churn rather
        than topology construction (every ``add_edge`` invalidates).
        """
        if not self._table:
            return
        self._table.clear()
        self.invalidations += 1

    def stats(self) -> Dict[str, float]:
        """Counters for bench records and the ``--profile`` breakdown."""
        total = self.hits + self.misses
        return {
            "routes_cached": len(self._table),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "invalidations": self.invalidations,
            "miss_wall_s": self.miss_wall_s,
        }


class Topology:
    """The interconnect graph of one machine."""

    def __init__(self, name: str = "machine"):
        self.name = name
        self._nodes: Dict[str, TopologyNode] = {}
        self._edges: List[Edge] = []
        self._adjacency: Dict[str, List[Edge]] = {}
        self.routes = RouteTable()
        #: Telemetry tier per resource *name*; anything absent is
        #: :data:`TIER_INTRA`.  Cluster builders tag fabric links
        #: :data:`TIER_INTER` so observability can aggregate per tier.
        self.tiers: Dict[str, str] = {}

    # -- construction ------------------------------------------------------
    def add_node(
        self,
        name: str,
        kind: NodeKind,
        memory: Optional[Resource] = None,
        **attrs: object,
    ) -> TopologyNode:
        """Add a vertex; returns the created node."""
        if name in self._nodes:
            raise TopologyError(f"duplicate node {name!r}")
        node = TopologyNode(name=name, kind=kind, memory=memory, attrs=dict(attrs))
        self._nodes[name] = node
        self._adjacency[name] = []
        return node

    def add_edge(self, a: str, b: str, resource: Resource,
                 kind: LinkKind, tier: str = TIER_INTRA) -> Edge:
        """Connect two existing nodes with a shared resource."""
        for endpoint in (a, b):
            if endpoint not in self._nodes:
                raise TopologyError(f"unknown node {endpoint!r}")
        if a == b:
            raise TopologyError(f"self-loop on {a!r}")
        edge = Edge(a=a, b=b, resource=resource, kind=kind)
        self._edges.append(edge)
        self._adjacency[a].append(edge)
        self._adjacency[b].append(edge)
        if tier != TIER_INTRA:
            self.tiers[resource.name] = tier
        self.routes.invalidate()
        return edge

    def invalidate_routes(self) -> None:
        """Drop cached routes after a link-state change.

        The fault injector calls this on every link down *and* up
        window edge so stale paths never outlive the event that made
        them wrong; the next :meth:`route` call recomputes on demand.
        """
        self.routes.invalidate()

    def tier_of(self, resource_name: str) -> str:
        """Telemetry tier of a link resource (by name)."""
        return self.tiers.get(resource_name, TIER_INTRA)

    # -- lookups -----------------------------------------------------------
    def node(self, name: str) -> TopologyNode:
        """Node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    @property
    def nodes(self) -> List[TopologyNode]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    @property
    def edges(self) -> List[Edge]:
        """All edges in insertion order."""
        return list(self._edges)

    def nodes_of_kind(self, kind: NodeKind) -> List[TopologyNode]:
        """All nodes of one kind, in insertion order."""
        return [n for n in self._nodes.values() if n.kind is kind]

    def edges_between(self, a: str, b: str) -> List[Edge]:
        """All direct edges between two nodes."""
        return [e for e in self._adjacency.get(a, ())
                if e.other(a) == b]

    def has_direct_p2p(self, gpu_a: str, gpu_b: str) -> bool:
        """Whether two GPUs can copy without crossing the host side.

        True if they share a direct P2P-capable edge or both attach to a
        common switch over P2P-capable links (NVSwitch).
        """
        for edge in self.edges_between(gpu_a, gpu_b):
            if edge.kind.is_p2p_capable:
                return True
        switches_a = {e.other(gpu_a) for e in self._adjacency[gpu_a]
                      if e.kind.is_p2p_capable
                      and self._nodes[e.other(gpu_a)].kind is NodeKind.SWITCH}
        switches_b = {e.other(gpu_b) for e in self._adjacency[gpu_b]
                      if e.kind.is_p2p_capable
                      and self._nodes[e.other(gpu_b)].kind is NodeKind.SWITCH}
        return bool(switches_a & switches_b)

    def gpu_relay_path(self, src: str, dst: str) -> Optional[List[str]]:
        """A widest GPU-relayed P2P path from ``src`` to ``dst``.

        Multi-hop P2P routing (the paper's Section 7 future work, after
        Paul et al. [55]): instead of staging a copy through the host,
        forward it through intermediate GPUs over direct P2P links.
        Returns the node sequence ``[src, relay..., dst]`` maximizing
        the bottleneck P2P bandwidth (ties broken by hop count), or
        ``None`` when no all-P2P path with at least one relay helps
        (e.g. a direct link already exists, or a GPU is unreachable
        over P2P links alone).
        """
        if self.has_direct_p2p(src, dst):
            return None
        gpus = [n.name for n in self.nodes_of_kind(NodeKind.GPU)]
        # Build the direct-P2P neighbour map with per-edge bandwidth.
        bandwidth: Dict[Tuple[str, str], float] = {}
        for a in gpus:
            for edge in self._adjacency[a]:
                if not edge.kind.is_p2p_capable:
                    continue
                b = edge.other(a)
                if self._nodes[b].kind is NodeKind.GPU:
                    cap = edge.resource.raw_capacity(edge.direction_from(a))
                    key = (a, b)
                    bandwidth[key] = max(bandwidth.get(key, 0.0), cap)
        # Widest-path Dijkstra over GPU nodes only.
        best: Dict[str, Tuple[float, int]] = {src: (float("inf"), 0)}
        parent: Dict[str, str] = {}
        heap: List[Tuple[float, int, str]] = [(-float("inf"), 0, src)]
        settled: set = set()
        while heap:
            neg_width, hops, here = heapq.heappop(heap)
            if here in settled:
                continue
            settled.add(here)
            if here == dst:
                break
            width = -neg_width
            for (a, b), cap in bandwidth.items():
                if a != here or b in settled:
                    continue
                cand = (min(width, cap), hops + 1)
                known = best.get(b)
                if known is None or cand[0] > known[0] or (
                        cand[0] == known[0] and cand[1] < known[1]):
                    best[b] = cand
                    parent[b] = here
                    heapq.heappush(heap, (-cand[0], cand[1], b))
        if dst not in parent:
            return None
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    # -- routing -----------------------------------------------------------
    def route(self, src: str, dst: str,
              avoid: Optional[frozenset] = None) -> Route:
        """Resolve the copy path from ``src`` to ``dst``.

        The path is the hop-minimal one (ties broken by the largest
        bottleneck bandwidth, then by construction order for
        determinism), never transiting GPU nodes.  Memory resources of
        the endpoints are prepended/appended: the source memory is read
        (``FWD``), the destination memory is written (``REV``).

        ``avoid`` is a frozenset of ``id(resource)`` values whose edges
        must not be crossed (the resilient runtime routes around links
        the fault injector took down); endpoint memories cannot be
        avoided.  Raises :class:`~repro.errors.TopologyError` when no
        path survives the exclusion.
        """
        if avoid is not None and not avoid:
            avoid = None
        key = (src, dst, avoid)
        cached = self.routes.lookup(key)
        if cached is not None:
            return cached
        began = time.perf_counter()
        if src == dst:
            raise TopologyError(f"source and destination are both {src!r}")
        src_node = self.node(src)
        dst_node = self.node(dst)

        edge_path = self._shortest_edge_path(
            src, dst, avoid, allowed=self._route_scope(src, dst))
        hops: List[Hop] = []
        if src_node.memory is not None:
            hops.append((src_node.memory, Direction.FWD))
        here = src
        kinds: List[LinkKind] = []
        host_traversing = False
        for edge in edge_path:
            hops.append((edge.resource, edge.direction_from(here)))
            kinds.append(edge.kind)
            here = edge.other(here)
            if (here != dst
                    and self._nodes[here].kind is NodeKind.CPU
                    and src_node.kind is NodeKind.GPU
                    and dst_node.kind is NodeKind.GPU):
                host_traversing = True
        if dst_node.memory is not None:
            hops.append((dst_node.memory, Direction.REV))

        bottleneck = min(
            (edge.resource.raw_capacity(edge.direction_from(a)))
            for edge, a in zip(edge_path, self._walk_nodes(src, edge_path))
        )
        route = Route(src=src, dst=dst, hops=tuple(hops),
                      link_kinds=tuple(kinds),
                      host_traversing=host_traversing,
                      bottleneck=bottleneck,
                      latency_s=sum(resource.latency_s
                                    for resource, _direction in hops))
        self.routes.store(key, route)
        self.routes.miss_wall_s += time.perf_counter() - began
        return route

    def _route_scope(self, src: str, dst: str) -> Optional[Set[str]]:
        """Vertices the path search may visit, or ``None`` for all.

        Hook for subclasses: :class:`~repro.hw.cluster.ClusterTopology`
        restricts intra-machine routes to the machine's own vertices
        and cross-machine routes to both endpoint machines plus the
        fabric, which keeps the Dijkstra walk O(one machine + fabric)
        instead of O(whole cluster) on a cache miss.
        """
        return None

    def _walk_nodes(self, src: str, edge_path: Sequence[Edge]) -> List[str]:
        """Nodes a path departs from, one per edge."""
        names = [src]
        for edge in edge_path[:-1]:
            names.append(edge.other(names[-1]))
        return names

    def _shortest_edge_path(self, src: str, dst: str,
                            avoid: Optional[frozenset] = None,
                            allowed: Optional[Set[str]] = None) -> List[Edge]:
        """Search over edges, honoring transit rules, widest-path tie-break.

        Dijkstra on the cost ``(hop count, -bottleneck width)`` so that
        among hop-minimal paths the one with the largest bottleneck
        capacity wins deterministically.  ``allowed`` optionally
        restricts the visited vertex set (see :meth:`_route_scope`);
        edges leading outside it are skipped before the tie-break
        counter advances, so a scoped search visits vertices in exactly
        the order an unscoped search over the sub-graph would.
        """
        best: Dict[str, Tuple[int, float]] = {src: (0, float("inf"))}
        parent: Dict[str, Tuple[str, Edge]] = {}
        counter = 0
        heap: List[Tuple[int, float, int, str]] = [(0, 0.0, counter, src)]
        settled: set = set()
        while heap:
            depth, neg_width, _, here = heapq.heappop(heap)
            if here in settled:
                continue
            settled.add(here)
            width = -neg_width if neg_width else float("inf")
            if here == dst:
                break
            if here != src and not self._nodes[here].can_transit:
                continue
            for edge in self._adjacency[here]:
                if avoid is not None and id(edge.resource) in avoid:
                    continue
                there = edge.other(here)
                if allowed is not None and there not in allowed:
                    continue
                if there in settled:
                    continue
                cap = edge.resource.raw_capacity(edge.direction_from(here))
                cand = (depth + 1, min(width, cap))
                known = best.get(there)
                if known is None or cand[0] < known[0] or (
                        cand[0] == known[0] and cand[1] > known[1]):
                    best[there] = cand
                    parent[there] = (here, edge)
                    counter += 1
                    heapq.heappush(heap, (cand[0], -cand[1], counter, there))
        if dst not in parent:
            raise TopologyError(f"no path from {src!r} to {dst!r}")
        path: List[Edge] = []
        walk = dst
        while walk != src:
            prev, edge = parent[walk]
            path.append(edge)
            walk = prev
        path.reverse()
        return path
