"""Host-side (CPU and NUMA memory) model.

The CPU matters to the reproduction in three roles: as the baseline
sorter (PARADIS and the library sorts of Section 6), as HET sort's merge
engine (gnu_parallel-style multiway merge, Section 5.3), and as the
owner of the NUMA memory nodes every CPU-GPU copy crosses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import CalibrationError


@dataclass(frozen=True)
class NumaNodeSpec:
    """One NUMA node's memory subsystem.

    ``read_bw``/``write_bw`` are *effective* rates available to DMA and
    CPU streaming (calibrated against the paper's parallel-copy
    saturation points, e.g. AC922 node 0: 141 GB/s read / 109 GB/s
    write, Figure 2b), not DIMM datasheet numbers.  ``duplex_factor``
    models the combined read+write saturation (136 GB/s on the AC922).
    """

    index: int
    capacity_bytes: float
    read_bw: float
    write_bw: float
    duplex_factor: float = 1.0

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise CalibrationError("NUMA capacity must be positive")
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise CalibrationError("NUMA bandwidths must be positive")
        if not 0 < self.duplex_factor <= 1:
            raise CalibrationError("duplex_factor must be in (0, 1]")


@dataclass(frozen=True)
class CpuSpec:
    """Performance-relevant description of the host processors.

    ``sort_rates`` maps CPU sorting primitive names to sustained rates
    in bytes/s (``"paradis"``, ``"simd_lsb"``, ``"gnu_parallel"``,
    ``"tbb"``, ``"std_par"``); ``multiway_merge_rate`` is the output
    rate of the gnu_parallel-style k-way merge, which the paper
    measures to saturate 71-94% of STREAM bandwidth (Section 5.3).
    """

    model: str
    sockets: int
    cores_per_socket: int
    sort_rates: Dict[str, float] = field(default_factory=dict)
    multiway_merge_rate: float = 0.0
    #: Multiplier on the merge rate as the run count k grows
    #: (step-and-hold over k).  Section 6.1: the AC922's merge slows by
    #: 8% from two to four chunks, the DELTA's considerably more, the
    #: DGX A100's stays constant.
    merge_k_factors: Dict[int, float] = field(default_factory=dict)
    #: STREAM-measured sustainable memory bandwidth per node, bytes/s.
    stream_bw: float = 0.0
    #: SIMD ISA available (PARADIS' SIMD rival needs x86 SIMD; the
    #: paper notes Polychroniou et al.'s sort cannot run on POWER9).
    has_x86_simd: bool = True

    def __post_init__(self):
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise CalibrationError("core counts must be positive")
        for name, rate in self.sort_rates.items():
            if rate <= 0:
                raise CalibrationError(f"sort rate {name!r} must be positive")
        if self.multiway_merge_rate <= 0:
            raise CalibrationError("multiway_merge_rate must be positive")

    @property
    def total_cores(self) -> int:
        """Physical core count across all sockets."""
        return self.sockets * self.cores_per_socket

    def multiway_merge_rate_for(self, k: int) -> float:
        """Merge output rate in bytes/s when merging ``k`` sorted runs.

        ``merge_k_factors`` gives calibration anchors; between anchors
        the factor interpolates linearly in ``k`` (the base rate is the
        paper's two-run measurement, so the curve is flat at 1.0 up to
        ``k = 2``), and holds beyond the last anchor.
        """
        if not self.merge_k_factors:
            return self.multiway_merge_rate
        anchors = sorted({1: 1.0, 2: 1.0, **self.merge_k_factors}.items())
        factor = anchors[-1][1]
        for (k_lo, f_lo), (k_hi, f_hi) in zip(anchors, anchors[1:]):
            if k <= k_lo:
                factor = f_lo
                break
            if k <= k_hi:
                t = (k - k_lo) / (k_hi - k_lo)
                factor = f_lo + t * (f_hi - f_lo)
                break
        return self.multiway_merge_rate * factor

    def sort_rate(self, primitive: str) -> float:
        """Sustained CPU sort rate in bytes/s for one primitive."""
        try:
            return self.sort_rates[primitive]
        except KeyError:
            known = ", ".join(sorted(self.sort_rates))
            raise CalibrationError(
                f"unknown CPU sort primitive {primitive!r} (known: {known})"
            ) from None

    def best_sort_primitive(self, nbytes: Optional[float] = None) -> str:
        """The fastest available CPU sort for a given data size.

        Mirrors Section 6's baseline choice: the SIMD LSB radix sort
        wins for small data on x86, PARADIS wins for large data and is
        the only fast option on POWER9.
        """
        candidates = dict(self.sort_rates)
        if not self.has_x86_simd:
            candidates.pop("simd_lsb", None)
        if not candidates:
            raise CalibrationError("no CPU sort primitives calibrated")
        return max(candidates, key=lambda name: candidates[name])
