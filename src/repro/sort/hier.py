"""Hierarchical sort: node-local P2P sort + cross-node fabric exchange.

The paper's algorithms stop at one machine; this module scales them out
to the multi-node clusters of :mod:`repro.hw.cluster`.  Three phases:

1. **LocalSort** — every node runs the P2P sort pipeline (HtoD, device
   sort, recursive merge with block swaps, DtoH) over its own GPUs and
   its shard of the input, exactly as :func:`repro.sort.p2p.p2p_sort`
   would on the standalone machine.  Nodes proceed concurrently.
2. **Exchange** — deterministic sampled splitters partition every
   node-local run into per-destination segments; the segments cross
   the fabric in ``N - 1`` all-to-all waves (round ``r``: node ``k``
   sends to node ``(k + r) % N``).  A healthy cluster launches each
   wave as one batched flow set (:meth:`FlowNetwork.start_flows`), so
   a 64-node wave pays a single progressive fill instead of 63
   superseded intermediate ones; under an installed fault plan the
   copies fall back to the per-copy resilient path with retries,
   re-routes and watchdogs.
3. **NodeMerge** — each node multiway-merges its own segment with the
   received ones on the CPU (the HET sort's host-merge primitive), so
   the global output is the concatenation of per-node merges.

Degenerate shapes are exact: a 1-node cluster skips phases 2 and 3
entirely and adds *zero* simulated events over the plain P2P sort —
the degenerate-shape tests pin its duration bit-identical to
:func:`~repro.sort.p2p.p2p_sort` on the standalone platform.

As with distributed sort-merge systems, the input is assumed to start
*partitioned across the nodes* (shard ``k`` in node ``k``'s host
memory) and the output ends partitioned the same way; neither the
initial scatter nor the final gather into the convenience output array
is charged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SortError
from repro.faults.policy import ResiliencePolicy
from repro.hw.cluster import ClusterSpec
from repro.runtime.buffer import HostBuffer
from repro.runtime.context import Machine
from repro.runtime.cpu_ops import cpu_multiway_merge
from repro.runtime.kernels import sort_on_device
from repro.runtime.memcpy import copy_async, span
from repro.sort.gpu_set import surviving_gpu_ids
from repro.sort.p2p import P2PConfig, _Chunk, _merge_chunks, _pad_value, _Stats
from repro.sort.result import SortResult
from repro.units import US


@dataclass
class HierConfig:
    """Tunables of the hierarchical sort."""

    #: Node-local phase configuration (the P2P sort's knobs apply
    #: per-node: primitive, pivot policy, out-of-place swaps).
    local: P2PConfig = field(default_factory=P2PConfig)
    #: GPUs used per node; ``None`` takes the largest power of two the
    #: node has (the P2P merge needs ``2^k`` chunks).
    gpus_per_node: Optional[int] = None
    #: Sorted-run samples each node contributes to splitter selection.
    samples_per_node: int = 32
    #: Latency of one remote sample read over the fabric.
    splitter_probe_latency_s: float = 8 * US


@dataclass
class _NodePlan:
    """Everything one node needs for its local phase."""

    node: int
    gpu_ids: Tuple[int, ...]
    numa: int
    shard_start: int
    shard_stop: int
    chunk: int
    staging: HostBuffer
    host_out: HostBuffer


def _node_local_run(machine: Machine, plan: _NodePlan, config: P2PConfig,
                    stats: _Stats):
    """Process: one node's P2P pipeline (mirrors ``p2p_sort``'s run)."""
    env = machine.env
    g = len(plan.gpu_ids)
    chunk = plan.chunk
    dtype = plan.staging.dtype
    chunks: List[_Chunk] = []
    for gpu_id in plan.gpu_ids:
        device = machine.device(gpu_id)
        primary = device.alloc(chunk, dtype, label=f"chunk{gpu_id}")
        aux = device.alloc(chunk, dtype, label=f"aux{gpu_id}")
        chunks.append(_Chunk(device, primary, aux))

    htod = []
    for i, c in enumerate(chunks):
        htod.append(env.process(copy_async(
            machine, span(c.primary),
            span(plan.staging, i * chunk, (i + 1) * chunk), phase="HtoD")))
    yield env.all_of(htod)

    sorts = [env.process(sort_on_device(
        machine, span(c.primary), primitive=config.primitive, phase="Sort"))
        for c in chunks]
    yield env.all_of(sorts)

    yield from _merge_chunks(machine, chunks, config, stats)

    dtoh = [env.process(copy_async(
        machine, span(plan.host_out, i * chunk, (i + 1) * chunk),
        span(c.primary), phase="DtoH"))
        for i, c in enumerate(chunks)]
    yield env.all_of(dtoh)

    for c in chunks:
        for buffer in c.all_buffers():
            buffer.free()


def _select_splitters(runs: Sequence[np.ndarray], num_nodes: int,
                      samples_per_node: int) -> np.ndarray:
    """Regular-sampling splitters: deterministic for a given input.

    Every node contributes ``samples_per_node`` evenly spaced elements
    of its sorted run; the ``N - 1`` global splitters are evenly spaced
    ranks of the merged sample set — the classic sample-sort bound on
    per-node imbalance.
    """
    samples = []
    for run in runs:
        m = run.size
        if m == 0:
            continue
        take = min(samples_per_node, m)
        idx = (np.arange(1, take + 1) * m) // (take + 1)
        samples.append(run[idx])
    merged = np.sort(np.concatenate(samples), kind="stable")
    ranks = (np.arange(1, num_nodes) * merged.size) // num_nodes
    return merged[ranks]


def _exchange_wave(machine: Machine, copies):
    """Process: one all-to-all wave of host-to-host fabric copies.

    ``copies`` is a list of ``(dst_buffer, src_buffer, start, stop,
    src_cpu, dst_cpu)``.  Healthy cluster: resolve every route, charge
    the wave's worst hop latency once, then launch the whole wave as a
    single batched allocation — semantically N simultaneous copies,
    one progressive fill.  Under faults, each copy runs the resilient
    per-copy path instead (retries, re-routes, watchdog).
    """
    env = machine.env
    if machine.faults is not None:
        procs = [env.process(copy_async(
            machine, span(dst), span(src, start, stop), phase="Exchange"))
            for dst, src, start, stop, _s, _d in copies]
        if procs:
            yield env.all_of(procs)
        return
    topology = machine.spec.topology
    started = env.now
    requests = []
    latency = 0.0
    span_ids = []
    for dst, src, start, stop, src_cpu, dst_cpu in copies:
        route = topology.route(src_cpu, dst_cpu)
        logical = (stop - start) * src.dtype.itemsize * machine.scale
        requests.append((route.hops, logical, None,
                         f"HtoH:{src_cpu}->{dst_cpu}"))
        latency = max(latency, route.latency_s)
        span_ids.append(machine.trace.allocate_id()
                        if machine.obs is not None else None)
    if latency:
        yield env.timeout(latency)
    flows = machine.net.start_flows(requests)
    if machine.obs is not None:
        for flow, span_id in zip(flows, span_ids):
            machine.obs.attach_flow(flow, span_id)
    yield env.all_of([flow.done for flow in flows])
    for (dst, src, start, stop, _src_cpu, dst_cpu), span_id, request in zip(
            copies, span_ids, requests):
        dst.data[:] = src.data[start:stop]
        machine.trace.record("Exchange", dst_cpu, started,
                             bytes=request[1], id=span_id)


def hier_sort(machine: Machine, data: Union[np.ndarray, HostBuffer],
              config: Optional[HierConfig] = None,
              resilience: Optional[ResiliencePolicy] = None) -> SortResult:
    """Sort ``data`` across a multi-node cluster; returns the result.

    ``machine`` must wrap a :class:`~repro.hw.cluster.ClusterSpec`
    (:func:`~repro.hw.cluster.make_cluster`).  The input is sharded
    contiguously across the nodes, each node P2P-sorts its shard on
    its own GPUs, and the shards are exchanged and host-merged into
    globally sorted per-node partitions.  The sorted keys come back
    concatenated in ``result.output``.

    ``resilience`` overrides the machine's policy.  Under an installed
    fault plan each node re-plans its local sort over the largest
    power-of-two prefix of its surviving GPUs, and exchange copies run
    the resilient path.
    """
    config = config or HierConfig()
    spec = machine.spec
    if not isinstance(spec, ClusterSpec):
        raise SortError(
            f"hier_sort needs a ClusterSpec, got {type(spec).__name__}; "
            "build one with repro.hw.make_cluster")
    if resilience is not None:
        machine.resilience = resilience
    if isinstance(data, HostBuffer):
        host_in = data
    else:
        host_in = machine.host_buffer(np.asarray(data))
    n = len(host_in.data)
    num_nodes = spec.num_nodes
    if n < num_nodes:
        raise SortError(
            f"{n} keys cannot be sharded over {num_nodes} nodes")
    dtype = host_in.dtype
    itemsize = dtype.itemsize

    per_node = config.gpus_per_node
    if per_node is None:
        per_node = 1 << int(math.log2(spec.gpus_per_node))
    if per_node < 1 or per_node & (per_node - 1):
        raise SortError(
            f"gpus_per_node must be a power of two, got {per_node}")

    # -- shard the input and plan every node's local phase -----------------
    shard = -(-n // num_nodes)
    plans: List[_NodePlan] = []
    excluded: List[int] = []
    for k in range(num_nodes):
        start, stop = k * shard, min((k + 1) * shard, n)
        ids = spec.node_gpu_order(k, per_node)
        if machine.faults is not None:
            survivors, dropped = surviving_gpu_ids(machine, ids)
            excluded.extend(dropped)
            if not survivors:
                raise SortError(
                    f"node {k} has no healthy GPUs left in {ids}")
            if dropped:
                keep = 1 << int(math.log2(len(survivors)))
                ids = tuple(survivors[:keep])
        g = len(ids)
        shard_n = stop - start
        chunk = -(-shard_n // g)
        padded = chunk * g
        for gpu_id in ids:
            need = 2 * chunk * itemsize * machine.scale
            device = machine.device(gpu_id)
            if need > device.capacity_logical:
                raise SortError(
                    f"{device.name}: node shard chunk of {chunk} keys "
                    f"needs {need / 1e9:.1f} GB, exceeding "
                    f"{device.capacity_logical / 1e9:.1f} GB; shrink the "
                    "input or grow the cluster")
        numa = spec.node_numa(k)
        padded_data = np.empty(padded, dtype=dtype)
        padded_data[:shard_n] = host_in.data[start:stop]
        padded_data[shard_n:] = _pad_value(dtype)
        staging = machine.host_buffer(padded_data, numa=numa, pinned=True)
        host_out = machine.host_buffer(np.empty(padded, dtype=dtype),
                                       numa=numa, pinned=True)
        plans.append(_NodePlan(node=k, gpu_ids=ids, numa=numa,
                               shard_start=start, shard_stop=stop,
                               chunk=chunk, staging=staging,
                               host_out=host_out))

    node_stats = [_Stats() for _ in range(num_nodes)]
    stats_before = machine.resilience_stats.snapshot()
    start_time = machine.env.now
    root_id = None
    if machine.obs is not None:
        root_id = machine.trace.allocate_id()
        machine.trace.push_parent(root_id)

    merged_out: List[Optional[np.ndarray]] = [None] * num_nodes

    def run():
        env = machine.env
        if num_nodes == 1:
            # Degenerate cluster: the local sort *is* the global sort.
            # Run it inline — no wrapper process, no splitters, no
            # exchange, no host merge — so the event stream is exactly
            # the plain P2P pipeline's.
            plan = plans[0]
            yield from _node_local_run(machine, plan, config.local,
                                       node_stats[0])
            merged_out[0] = plan.host_out.data[
                :plan.shard_stop - plan.shard_start]
            return
        local = [env.process(_node_local_run(machine, plan, config.local,
                                             node_stats[plan.node]))
                 for plan in plans]
        yield env.all_of(local)

        # The sorted shard is the padded run's prefix: pads are
        # dtype-max sentinels, interchangeable with any real maxima.
        runs = [plan.host_out.data[:plan.shard_stop - plan.shard_start]
                for plan in plans]
        # Splitter selection reads every node's samples over the
        # fabric; charged as latency-bound remote reads, like the P2P
        # sort's pivot probes.
        probes = num_nodes * config.samples_per_node
        yield env.timeout(probes * config.splitter_probe_latency_s)
        splitters = _select_splitters(runs, num_nodes,
                                      config.samples_per_node)
        bounds = [np.searchsorted(run, splitters, side="left")
                  for run in runs]

        def segment(src: int, dst: int) -> Tuple[int, int]:
            lo = 0 if dst == 0 else int(bounds[src][dst - 1])
            hi = (runs[src].size if dst == num_nodes - 1
                  else int(bounds[src][dst]))
            return lo, hi

        # Receive buffers: node i's incoming segment from every other
        # node, allocated in i's local host memory.
        inbox: Dict[Tuple[int, int], HostBuffer] = {}
        for dst in range(num_nodes):
            for src in range(num_nodes):
                if src == dst:
                    continue
                lo, hi = segment(src, dst)
                if hi > lo:
                    inbox[(src, dst)] = machine.host_buffer(
                        hi - lo, dtype=dtype, numa=plans[dst].numa)

        # All-to-all in N-1 waves; round r pairs node k with node
        # (k + r) % N, so every wave is a perfect matching of
        # disjoint source/destination nodes.
        for r in range(1, num_nodes):
            copies = []
            for src in range(num_nodes):
                dst = (src + r) % num_nodes
                key = (src, dst)
                if key not in inbox:
                    continue
                lo, hi = segment(src, dst)
                copies.append((inbox[key], plans[src].host_out, lo, hi,
                               spec.node_cpu_name(src),
                               spec.node_cpu_name(dst)))
            if copies:
                yield from _exchange_wave(machine, copies)

        merges = []
        for dst in range(num_nodes):
            parts = []
            for src in range(num_nodes):
                if src == dst:
                    lo, hi = segment(src, dst)
                    if hi > lo:
                        parts.append(runs[src][lo:hi])
                elif (src, dst) in inbox:
                    parts.append(inbox[(src, dst)].data)
            total = sum(part.size for part in parts)
            out = np.empty(total, dtype=dtype)
            merged_out[dst] = out
            if total:
                merges.append(env.process(cpu_multiway_merge(
                    machine, out, parts, numa=plans[dst].numa,
                    phase="NodeMerge")))
        if merges:
            yield env.all_of(merges)

    try:
        machine.run(run())
    finally:
        if root_id is not None:
            machine.trace.pop_parent()
            machine.trace.record("HierSort", "sort", start_time,
                                 bytes=n * itemsize * machine.scale,
                                 id=root_id)
    duration = machine.env.now - start_time
    output = np.concatenate([part for part in merged_out
                             if part is not None and part.size])

    recovery = machine.resilience_stats.delta(stats_before)
    fault_downtime = (machine.faults.downtime_between(
        start_time, machine.env.now)
        if machine.faults is not None else 0.0)
    degraded = bool(excluded or recovery.retries or recovery.reroutes
                    or recovery.timeouts or fault_downtime > 0.0)

    pivots: List[int] = []
    p2p_bytes = 0.0
    for stats in node_stats:
        pivots.extend(stats.pivots)
        p2p_bytes += stats.p2p_bytes
    all_ids = tuple(gpu_id for plan in plans for gpu_id in plan.gpu_ids)
    g = len(plans[0].gpu_ids)
    phases = {name: value for name, value in
              machine.trace.phase_durations().items()
              if name in ("HtoD", "Sort", "Merge", "DtoH",
                          "Exchange", "NodeMerge")}
    return SortResult(
        algorithm="hier",
        system=spec.name,
        gpu_ids=all_ids,
        physical_keys=n,
        logical_keys=n * machine.scale,
        dtype=str(dtype),
        duration=duration,
        phase_durations=phases,
        p2p_bytes=p2p_bytes,
        merge_stages=2 * int(math.log2(g)) - 1 if g > 1 else 0,
        pivots=tuple(pivots),
        output=output,
        degraded=degraded,
        retries=recovery.retries,
        reroutes=recovery.reroutes,
        timeouts=recovery.timeouts,
        fault_downtime=fault_downtime,
        excluded_gpus=tuple(excluded),
    )
