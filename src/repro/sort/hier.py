"""Hierarchical sort: node-local P2P sort + cross-node fabric exchange.

The paper's algorithms stop at one machine; this module scales them out
to the multi-node clusters of :mod:`repro.hw.cluster`.  Three phases:

1. **LocalSort** — every node runs the P2P sort pipeline (HtoD, device
   sort, recursive merge with block swaps, DtoH) over its own GPUs and
   its shard of the input, exactly as :func:`repro.sort.p2p.p2p_sort`
   would on the standalone machine.  Nodes proceed concurrently.
2. **Exchange** — deterministic sampled splitters partition every
   node-local run into per-destination segments; the segments cross
   the fabric in ``N - 1`` all-to-all waves (round ``r``: node ``k``
   sends to node ``(k + r) % N``).  A healthy cluster launches each
   wave as one batched flow set (:meth:`FlowNetwork.start_flows`), so
   a 64-node wave pays a single progressive fill instead of 63
   superseded intermediate ones; under an installed fault plan the
   copies fall back to the per-copy resilient path with retries,
   re-routes and watchdogs.
3. **NodeMerge** — each node multiway-merges its own segment with the
   received ones on the CPU (the HET sort's host-merge primitive), so
   the global output is the concatenation of per-node merges.

Degenerate shapes are exact: a 1-node cluster skips phases 2 and 3
entirely and adds *zero* simulated events over the plain P2P sort —
the degenerate-shape tests pin its duration bit-identical to
:func:`~repro.sort.p2p.p2p_sort` on the standalone platform.

As with distributed sort-merge systems, the input is assumed to start
*partitioned across the nodes* (shard ``k`` in node ``k``'s host
memory) and the output ends partitioned the same way; neither the
initial scatter nor the final gather into the convenience output array
is charged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    DeviceFaultError,
    RecoveryError,
    SortError,
    TransferError,
)
from repro.faults.policy import ResiliencePolicy
from repro.hw.cluster import ClusterSpec
from repro.recovery.cluster import ExchangeLedger
from repro.recovery.tasks import TaskGroup
from repro.runtime.buffer import HostBuffer
from repro.runtime.context import Machine
from repro.runtime.cpu_ops import cpu_multiway_merge
from repro.runtime.kernels import sort_on_device
from repro.runtime.memcpy import copy_async, span
from repro.sort.gpu_set import surviving_gpu_ids
from repro.sort.p2p import P2PConfig, _Chunk, _merge_chunks, _pad_value, _Stats
from repro.sort.result import SortResult
from repro.units import US


@dataclass
class HierConfig:
    """Tunables of the hierarchical sort."""

    #: Node-local phase configuration (the P2P sort's knobs apply
    #: per-node: primitive, pivot policy, out-of-place swaps).
    local: P2PConfig = field(default_factory=P2PConfig)
    #: GPUs used per node; ``None`` takes the largest power of two the
    #: node has (the P2P merge needs ``2^k`` chunks).
    gpus_per_node: Optional[int] = None
    #: Sorted-run samples each node contributes to splitter selection.
    samples_per_node: int = 32
    #: Latency of one remote sample read over the fabric.
    splitter_probe_latency_s: float = 8 * US
    #: Node-level replans (a node lost mid-run, its shard re-sharded
    #: over the survivors) allowed before the sort fails with
    #: :class:`~repro.errors.RecoveryError`.  Nodes already dead when
    #: the sort plans are excluded for free and do not consume this.
    max_node_replans: int = 4
    #: Exchange-wave re-executions after transient (non-fatal) wave
    #: failures before giving up with RecoveryError.
    max_wave_replays: int = 4
    #: Wall-clock budget in simulated seconds for the faulted path;
    #: exceeding it returns a typed partial result
    #: (``deadline_exceeded=True``, ``output=None``).  ``None``
    #: disables the budget.
    deadline_s: Optional[float] = None
    #: Directory for post-mortem bundles: a terminal SortError /
    #: RecoveryError on the faulted path dumps a provenance-stamped
    #: snapshot (failing wave, fabric tier, fault timeline) there
    #: before propagating.
    postmortem_dir: Optional[str] = None


@dataclass
class _NodePlan:
    """Everything one node needs for its local phase."""

    node: int
    gpu_ids: Tuple[int, ...]
    numa: int
    shard_start: int
    shard_stop: int
    chunk: int
    staging: HostBuffer
    host_out: HostBuffer


def _node_local_run(machine: Machine, plan: _NodePlan, config: P2PConfig,
                    stats: _Stats, group: Optional[TaskGroup] = None):
    """Process: one node's P2P pipeline (mirrors ``p2p_sort``'s run).

    With ``group`` set (the elastic path) every concurrent batch runs
    under the group's shields: a node death aborts *all* of the node's
    flows in the same instant, and simultaneous bare process failures
    under one ``all_of`` crash the event loop — shielded, they collapse
    into the group's single recorded failure, raised once by
    ``check()`` after the barrier.
    """
    env = machine.env
    chunk = plan.chunk
    dtype = plan.staging.dtype
    chunks: List[_Chunk] = []
    if group is None:
        spawn = env.process
        check = lambda: None  # noqa: E731
    else:
        spawn = (lambda gen:
                 group.spawn(gen, name=f"t{len(group.procs)}"))

        def check():
            if group.failure is not None:
                raise group.failure
    try:
        for gpu_id in plan.gpu_ids:
            device = machine.device(gpu_id)
            primary = device.alloc(chunk, dtype, label=f"chunk{gpu_id}")
            aux = device.alloc(chunk, dtype, label=f"aux{gpu_id}")
            chunks.append(_Chunk(device, primary, aux))

        htod = []
        for i, c in enumerate(chunks):
            htod.append(spawn(copy_async(
                machine, span(c.primary),
                span(plan.staging, i * chunk, (i + 1) * chunk),
                phase="HtoD")))
        yield env.all_of(htod)
        check()

        sorts = [spawn(sort_on_device(
            machine, span(c.primary), primitive=config.primitive,
            phase="Sort"))
            for c in chunks]
        yield env.all_of(sorts)
        check()

        yield from _merge_chunks(machine, chunks, config, stats,
                                 spawn=spawn, check=check)

        dtoh = [spawn(copy_async(
            machine, span(plan.host_out, i * chunk, (i + 1) * chunk),
            span(c.primary), phase="DtoH"))
            for i, c in enumerate(chunks)]
        yield env.all_of(dtoh)
        check()
    finally:
        # Also on interrupt / device failure: a replanned epoch must
        # not inherit leaked device allocations from the failed one.
        for c in chunks:
            for buffer in c.all_buffers():
                if not buffer.released:
                    buffer.free()


def _select_splitters(runs: Sequence[np.ndarray], num_nodes: int,
                      samples_per_node: int) -> np.ndarray:
    """Regular-sampling splitters: deterministic for a given input.

    Every node contributes ``samples_per_node`` evenly spaced elements
    of its sorted run; the ``N - 1`` global splitters are evenly spaced
    ranks of the merged sample set — the classic sample-sort bound on
    per-node imbalance.
    """
    samples = []
    for run in runs:
        m = run.size
        if m == 0:
            continue
        take = min(samples_per_node, m)
        idx = (np.arange(1, take + 1) * m) // (take + 1)
        samples.append(run[idx])
    merged = np.sort(np.concatenate(samples), kind="stable")
    ranks = (np.arange(1, num_nodes) * merged.size) // num_nodes
    return merged[ranks]


def _exchange_wave(machine: Machine, copies):
    """Process: one all-to-all wave of host-to-host fabric copies.

    ``copies`` is a list of ``(dst_buffer, src_buffer, start, stop,
    src_cpu, dst_cpu)``.  Healthy cluster: resolve every route, charge
    the wave's worst hop latency once, then launch the whole wave as a
    single batched allocation — semantically N simultaneous copies,
    one progressive fill.  Under faults, each copy runs the resilient
    per-copy path instead (retries, re-routes, watchdog).
    """
    env = machine.env
    if machine.faults is not None:
        procs = [env.process(copy_async(
            machine, span(dst), span(src, start, stop), phase="Exchange"))
            for dst, src, start, stop, _s, _d in copies]
        if procs:
            yield env.all_of(procs)
        return
    topology = machine.spec.topology
    started = env.now
    requests = []
    latency = 0.0
    span_ids = []
    for dst, src, start, stop, src_cpu, dst_cpu in copies:
        route = topology.route(src_cpu, dst_cpu)
        logical = (stop - start) * src.dtype.itemsize * machine.scale
        requests.append((route.hops, logical, None,
                         f"HtoH:{src_cpu}->{dst_cpu}"))
        latency = max(latency, route.latency_s)
        span_ids.append(machine.trace.allocate_id()
                        if machine.obs is not None else None)
    if latency:
        yield env.timeout(latency)
    flows = machine.net.start_flows(requests)
    if machine.obs is not None:
        for flow, span_id in zip(flows, span_ids):
            machine.obs.attach_flow(flow, span_id)
    yield env.all_of([flow.done for flow in flows])
    for (dst, src, start, stop, _src_cpu, dst_cpu), span_id, request in zip(
            copies, span_ids, requests):
        dst.data[:] = src.data[start:stop]
        machine.trace.record("Exchange", dst_cpu, started,
                             bytes=request[1], id=span_id)


def _plan_node(machine: Machine, spec: ClusterSpec, node: int,
               ids: Tuple[int, ...], start: int, stop: int,
               host_in: HostBuffer) -> _NodePlan:
    """Stage one node's input slice and size its per-GPU chunks."""
    dtype = host_in.dtype
    itemsize = dtype.itemsize
    g = len(ids)
    shard_n = stop - start
    chunk = -(-shard_n // g)
    padded = chunk * g
    for gpu_id in ids:
        need = 2 * chunk * itemsize * machine.scale
        device = machine.device(gpu_id)
        if need > device.capacity_logical:
            raise SortError(
                f"{device.name}: node shard chunk of {chunk} keys "
                f"needs {need / 1e9:.1f} GB, exceeding "
                f"{device.capacity_logical / 1e9:.1f} GB; shrink the "
                "input or grow the cluster")
    numa = spec.node_numa(node)
    padded_data = np.empty(padded, dtype=dtype)
    padded_data[:shard_n] = host_in.data[start:stop]
    padded_data[shard_n:] = _pad_value(dtype)
    staging = machine.host_buffer(padded_data, numa=numa, pinned=True)
    host_out = machine.host_buffer(np.empty(padded, dtype=dtype),
                                   numa=numa, pinned=True)
    return _NodePlan(node=node, gpu_ids=ids, numa=numa,
                     shard_start=start, shard_stop=stop,
                     chunk=chunk, staging=staging, host_out=host_out)


def hier_sort(machine: Machine, data: Union[np.ndarray, HostBuffer],
              config: Optional[HierConfig] = None,
              resilience: Optional[ResiliencePolicy] = None) -> SortResult:
    """Sort ``data`` across a multi-node cluster; returns the result.

    ``machine`` must wrap a :class:`~repro.hw.cluster.ClusterSpec`
    (:func:`~repro.hw.cluster.make_cluster`).  The input is sharded
    contiguously across the nodes, each node P2P-sorts its shard on
    its own GPUs, and the shards are exchanged and host-merged into
    globally sorted per-node partitions.  The sorted keys come back
    concatenated in ``result.output``.

    ``resilience`` overrides the machine's policy *for this call only*
    (the machine's own policy is restored on exit, error paths
    included).  Under an installed fault plan the sort runs the
    elastic path: nodes already dead at planning time are excluded for
    free, each surviving node re-plans its local sort over the largest
    power-of-two prefix of its surviving GPUs, the cross-node exchange
    is wave-checkpointed through an
    :class:`~repro.recovery.cluster.ExchangeLedger` (a node lost
    mid-exchange replays only what its death invalidated), and
    node-level replans are bounded by ``config.max_node_replans``.
    """
    config = config or HierConfig()
    spec = machine.spec
    if not isinstance(spec, ClusterSpec):
        raise SortError(
            f"hier_sort needs a ClusterSpec, got {type(spec).__name__}; "
            "build one with repro.hw.make_cluster")
    if isinstance(data, HostBuffer):
        host_in = data
    else:
        host_in = machine.host_buffer(np.asarray(data))
    n = len(host_in.data)
    if n < spec.num_nodes:
        raise SortError(
            f"{n} keys cannot be sharded over {spec.num_nodes} nodes")

    per_node = config.gpus_per_node
    if per_node is None:
        per_node = 1 << int(math.log2(spec.gpus_per_node))
    if per_node < 1 or per_node & (per_node - 1):
        raise SortError(
            f"gpus_per_node must be a power of two, got {per_node}")

    saved_policy = machine.resilience
    if resilience is not None:
        machine.resilience = resilience
    try:
        if machine.faults is not None:
            return _faulted_sort(machine, spec, config, host_in, per_node)
        return _healthy_sort(machine, spec, config, host_in, per_node)
    finally:
        machine.resilience = saved_policy


def _healthy_sort(machine: Machine, spec: ClusterSpec, config: HierConfig,
                  host_in: HostBuffer, per_node: int) -> SortResult:
    """The fault-free path: bit-identical to the pre-recovery engine."""
    n = len(host_in.data)
    num_nodes = spec.num_nodes
    dtype = host_in.dtype
    itemsize = dtype.itemsize

    # -- shard the input and plan every node's local phase -----------------
    shard = -(-n // num_nodes)
    plans: List[_NodePlan] = []
    excluded: List[int] = []
    for k in range(num_nodes):
        start, stop = k * shard, min((k + 1) * shard, n)
        ids = spec.node_gpu_order(k, per_node)
        plans.append(_plan_node(machine, spec, k, ids, start, stop,
                                host_in))

    node_stats = [_Stats() for _ in range(num_nodes)]
    stats_before = machine.resilience_stats.snapshot()
    start_time = machine.env.now
    root_id = None
    if machine.obs is not None:
        root_id = machine.trace.allocate_id()
        machine.trace.push_parent(root_id)

    merged_out: List[Optional[np.ndarray]] = [None] * num_nodes

    def run():
        env = machine.env
        if num_nodes == 1:
            # Degenerate cluster: the local sort *is* the global sort.
            # Run it inline — no wrapper process, no splitters, no
            # exchange, no host merge — so the event stream is exactly
            # the plain P2P pipeline's.
            plan = plans[0]
            yield from _node_local_run(machine, plan, config.local,
                                       node_stats[0])
            merged_out[0] = plan.host_out.data[
                :plan.shard_stop - plan.shard_start]
            return
        local = [env.process(_node_local_run(machine, plan, config.local,
                                             node_stats[plan.node]))
                 for plan in plans]
        yield env.all_of(local)

        # The sorted shard is the padded run's prefix: pads are
        # dtype-max sentinels, interchangeable with any real maxima.
        runs = [plan.host_out.data[:plan.shard_stop - plan.shard_start]
                for plan in plans]
        # Splitter selection reads every node's samples over the
        # fabric; charged as latency-bound remote reads, like the P2P
        # sort's pivot probes.
        probes = num_nodes * config.samples_per_node
        yield env.timeout(probes * config.splitter_probe_latency_s)
        splitters = _select_splitters(runs, num_nodes,
                                      config.samples_per_node)
        bounds = [np.searchsorted(run, splitters, side="left")
                  for run in runs]

        def segment(src: int, dst: int) -> Tuple[int, int]:
            lo = 0 if dst == 0 else int(bounds[src][dst - 1])
            hi = (runs[src].size if dst == num_nodes - 1
                  else int(bounds[src][dst]))
            return lo, hi

        # Receive buffers: node i's incoming segment from every other
        # node, allocated in i's local host memory.
        inbox: Dict[Tuple[int, int], HostBuffer] = {}
        for dst in range(num_nodes):
            for src in range(num_nodes):
                if src == dst:
                    continue
                lo, hi = segment(src, dst)
                if hi > lo:
                    inbox[(src, dst)] = machine.host_buffer(
                        hi - lo, dtype=dtype, numa=plans[dst].numa)

        # All-to-all in N-1 waves; round r pairs node k with node
        # (k + r) % N, so every wave is a perfect matching of
        # disjoint source/destination nodes.
        for r in range(1, num_nodes):
            copies = []
            for src in range(num_nodes):
                dst = (src + r) % num_nodes
                key = (src, dst)
                if key not in inbox:
                    continue
                lo, hi = segment(src, dst)
                copies.append((inbox[key], plans[src].host_out, lo, hi,
                               spec.node_cpu_name(src),
                               spec.node_cpu_name(dst)))
            if copies:
                yield from _exchange_wave(machine, copies)

        merges = []
        for dst in range(num_nodes):
            parts = []
            for src in range(num_nodes):
                if src == dst:
                    lo, hi = segment(src, dst)
                    if hi > lo:
                        parts.append(runs[src][lo:hi])
                elif (src, dst) in inbox:
                    parts.append(inbox[(src, dst)].data)
            total = sum(part.size for part in parts)
            out = np.empty(total, dtype=dtype)
            merged_out[dst] = out
            if total:
                merges.append(env.process(cpu_multiway_merge(
                    machine, out, parts, numa=plans[dst].numa,
                    phase="NodeMerge")))
        if merges:
            yield env.all_of(merges)

    try:
        machine.run(run())
    finally:
        if root_id is not None:
            machine.trace.pop_parent()
            machine.trace.record("HierSort", "sort", start_time,
                                 bytes=n * itemsize * machine.scale,
                                 id=root_id)
    duration = machine.env.now - start_time
    output = np.concatenate([part for part in merged_out
                             if part is not None and part.size])

    recovery = machine.resilience_stats.delta(stats_before)
    fault_downtime = (machine.faults.downtime_between(
        start_time, machine.env.now)
        if machine.faults is not None else 0.0)
    degraded = bool(excluded or recovery.retries or recovery.reroutes
                    or recovery.timeouts or fault_downtime > 0.0)

    pivots: List[int] = []
    p2p_bytes = 0.0
    for stats in node_stats:
        pivots.extend(stats.pivots)
        p2p_bytes += stats.p2p_bytes
    all_ids = tuple(gpu_id for plan in plans for gpu_id in plan.gpu_ids)
    g = len(plans[0].gpu_ids)
    phases = {name: value for name, value in
              machine.trace.phase_durations().items()
              if name in ("HtoD", "Sort", "Merge", "DtoH",
                          "Exchange", "NodeMerge")}
    return SortResult(
        algorithm="hier",
        system=spec.name,
        gpu_ids=all_ids,
        physical_keys=n,
        logical_keys=n * machine.scale,
        dtype=str(dtype),
        duration=duration,
        phase_durations=phases,
        p2p_bytes=p2p_bytes,
        merge_stages=2 * int(math.log2(g)) - 1 if g > 1 else 0,
        pivots=tuple(pivots),
        output=output,
        degraded=degraded,
        retries=recovery.retries,
        reroutes=recovery.reroutes,
        timeouts=recovery.timeouts,
        fault_downtime=fault_downtime,
        excluded_gpus=tuple(excluded),
    )


def _faulted_sort(machine: Machine, spec: ClusterSpec, config: HierConfig,
                  host_in: HostBuffer, per_node: int) -> SortResult:
    """The elastic path: epoch state machine with wave checkpointing.

    The sort runs as a sequence of *epochs*.  Each epoch sorts whatever
    input slices are not durably sorted yet (everything on the first
    one; only the dead node's re-sharded repair slices afterwards),
    then drives the ledger's pending deliveries in waves and merges the
    unmerged ranges.  A node death raises out of the failing phase,
    the driver drops the node from the ledger — completed deliveries
    between survivors stay durable — and the next epoch replays only
    the invalidated work.  Transient (non-fatal) exchange failures
    replay just the failing wave.
    """
    env = machine.env
    faults = machine.faults
    n = len(host_in.data)
    num_nodes = spec.num_nodes
    dtype = host_in.dtype
    itemsize = dtype.itemsize

    dead: Set[int] = set()
    excluded_nodes: List[int] = []
    excluded: List[int] = []
    node_stats: List[_Stats] = []
    plan_ids: Dict[int, Tuple[int, ...]] = {}
    counters = {"node_replans": 0, "waves_replayed": 0,
                "checkpoints": 0, "restored": 0}
    completed: List[str] = []
    deadline_hit = [False]
    failing: Dict[str, object] = {"phase": None, "started": None}
    #: ``(cid, range)`` pairs that have ever landed — a wave touching
    #: one of them again is a replay, not first-time work.
    ever_delivered: Set[Tuple[int, int]] = set()
    single_run: List[Optional[np.ndarray]] = [None]
    ledger_box: List[Optional[ExchangeLedger]] = [None]
    repair_slices: List[Tuple[int, int]] = []
    #: ``(node, start, stop) -> plan`` of durably sorted slices; a
    #: replanned epoch reuses these instead of re-sorting.
    sorted_cache: Dict[Tuple[int, int, int], _NodePlan] = {}

    stats_before = machine.resilience_stats.snapshot()
    start_time = env.now
    deadline = (env.timeout(config.deadline_s)
                if config.deadline_s is not None else None)
    root_id = None
    if machine.obs is not None:
        root_id = machine.trace.allocate_id()
        machine.trace.push_parent(root_id)

    def node_dead_now(k: int) -> bool:
        if k in faults.failed_node_ids():
            return True
        survivors, _ = surviving_gpu_ids(
            machine, spec.node_gpu_order(k, per_node))
        return not survivors

    def _note_node_dead(k: int) -> None:
        dead.add(k)
        excluded_nodes.append(k)
        for gpu in spec.gpu_ids_of_node(k):
            if gpu not in excluded:
                excluded.append(gpu)
        for key in [key for key in sorted_cache if key[0] == k]:
            del sorted_cache[key]
        plan_ids.pop(k, None)

    def plan_alive_node(k: int, start: int, stop: int) -> _NodePlan:
        ids = spec.node_gpu_order(k, per_node)
        survivors, dropped = surviving_gpu_ids(machine, ids)
        for gpu in dropped:
            if gpu not in excluded:
                excluded.append(gpu)
        if not survivors:
            raise SortError(
                f"node {k} has no healthy GPUs left in {ids}")
        if dropped:
            keep = 1 << int(math.log2(len(survivors)))
            ids = tuple(survivors[:keep])
        return _plan_node(machine, spec, k, ids, start, stop, host_in)

    def run_phase(name: str, spawner):
        """Process: run one phase's tasks under a shielded TaskGroup."""
        failing["phase"] = name
        failing["started"] = env.now
        group = TaskGroup(env, name=name)

        def body():
            spawner(group)
            return None
            yield  # pragma: no cover - makes ``body`` a generator

        runner = env.process(group.run(body(), deadline=deadline))
        try:
            yield runner
        except GeneratorExit:
            # The driver was abandoned (a typed error crossed
            # ``machine.run`` and this frame is being gc-closed):
            # draining would mean yielding inside close(), which is
            # illegal — just unwind.
            raise
        except BaseException:
            # Backstop: force-drain anything the runner could not reap
            # before the driver reacts to the error.
            for _attempt in range(100):
                group.cancelled = True
                leftovers = group.alive()
                if runner.is_alive:
                    leftovers.append(runner)
                if not leftovers:
                    break
                for proc in leftovers:
                    group.interrupt_task(proc)
                try:
                    yield env.all_of(leftovers)
                except BaseException:  # noqa: BLE001 - keep draining
                    continue
            raise

    def _local_one(plan: _NodePlan, job: Tuple[int, int, int],
                   stats: _Stats, group: TaskGroup):
        yield from _node_local_run(machine, plan, config.local, stats,
                                   group=group)
        sorted_cache[job] = plan

    def _local_sorts(jobs: List[Tuple[int, int, int]]):
        """Process: sort every job not already durably sorted."""
        plans: List[Optional[_NodePlan]] = [None] * len(jobs)
        fresh: List[int] = []
        for i, job in enumerate(jobs):
            cached = sorted_cache.get(job)
            if cached is not None:
                plans[i] = cached
                plan_ids.setdefault(job[0], cached.gpu_ids)
            else:
                fresh.append(i)
        if fresh:
            stats = _Stats()
            node_stats.append(stats)
            for i in fresh:
                k, start, stop = jobs[i]
                plans[i] = plan_alive_node(k, start, stop)
                plan_ids[k] = plans[i].gpu_ids

            def spawner(group):
                for i in fresh:
                    group.spawn(_local_one(plans[i], jobs[i], stats,
                                           group),
                                name=f"local{jobs[i]}")

            yield from run_phase("LocalSort", spawner)
        return plans

    def _reshard(slices: List[Tuple[int, int]],
                 alive: List[int]) -> List[Tuple[int, int, int]]:
        """Chop repair slices into near-equal pieces over survivors."""
        pieces: List[Tuple[int, int, int]] = []
        for start, stop in slices:
            total = stop - start
            base, extra = divmod(total, len(alive))
            offset = start
            for i, k in enumerate(alive):
                size = base + (1 if i < extra else 0)
                if size:
                    pieces.append((k, offset, offset + size))
                offset += size
        return pieces

    def _register(ledger: ExchangeLedger,
                  plans: List[_NodePlan]) -> None:
        """Add fresh runs to the ledger; idempotent on retries."""
        live = {(c.node, c.src_start, c.src_stop)
                for c in ledger.contributions}
        for plan in plans:
            key = (plan.node, plan.shard_start, plan.shard_stop)
            if key not in live:
                ledger.add_contribution(
                    plan.node, plan.shard_start, plan.shard_stop,
                    plan.host_out, plan.shard_stop - plan.shard_start)

    def _deliver(ledger: ExchangeLedger, c, rng: int):
        lo, hi = c.segment(rng, ledger.num_ranges)
        owner = ledger.range_owner[rng]
        key = (c.cid, rng)
        buf = ledger.inbox.get(key)
        if buf is None or len(buf.data) != hi - lo:
            buf = machine.host_buffer(hi - lo, dtype=dtype,
                                      numa=spec.node_numa(owner))
            ledger.inbox[key] = buf
        yield from copy_async(machine, span(buf), span(c.host, lo, hi),
                              phase="Exchange")
        # Durability is per-delivery, not per-wave: a wave that fails
        # halfway still keeps the segments that landed.
        ledger.delivered.add(key)
        ever_delivered.add(key)

    def _exchange(ledger: ExchangeLedger, alive: List[int]):
        """Process: drive pending deliveries in checkpointed waves."""
        idx = {k: i for i, k in enumerate(alive)}
        a = len(alive)
        while True:
            pairs = ledger.pending()
            if not pairs:
                return
            by_wave: Dict[int, List] = {}
            for c, rng in pairs:
                r = (idx[ledger.range_owner[rng]] - idx[c.node]) % a
                by_wave.setdefault(r, []).append((c, rng))
            r = min(by_wave)
            batch = sorted(by_wave[r], key=lambda p: (p[0].cid, p[1]))
            if any((c.cid, rng) in ever_delivered for c, rng in batch):
                counters["waves_replayed"] += 1

            def spawner(group, batch=batch):
                for c, rng in batch:
                    group.spawn(_deliver(ledger, c, rng),
                                name=f"deliver{c.cid}:{rng}")

            yield from run_phase(f"Exchange[wave {r}]", spawner)
            counters["checkpoints"] += 1
            if machine.obs is not None:
                machine.obs.checkpointed(f"Exchange[wave {r}]",
                                         len(batch), env.now)

    def _merge_one(ledger: ExchangeLedger, rng: int, owner: int,
                   out: np.ndarray, parts: List[np.ndarray]):
        if out.size:
            yield from cpu_multiway_merge(machine, out, parts,
                                          numa=spec.node_numa(owner),
                                          phase="NodeMerge")
        ledger.merged[rng] = out

    def _merges(ledger: ExchangeLedger, alive: List[int]):
        todo = ledger.unmerged_ranges()
        if not todo:
            return
        work = []
        for rng in todo:
            owner = ledger.range_owner[rng]
            parts = ledger.merge_parts(rng)
            total = sum(part.size for part in parts)
            work.append((rng, owner, np.empty(total, dtype=dtype), parts))

        def spawner(group):
            for rng, owner, out, parts in work:
                group.spawn(_merge_one(ledger, rng, owner, out, parts),
                            name=f"merge{rng}")

        yield from run_phase("NodeMerge", spawner)

    def _epoch(alive: List[int]):
        """Process: one attempt at finishing the sort on ``alive``."""
        ledger = ledger_box[0]
        if ledger is None:
            shard = -(-n // len(alive))
            jobs = [(alive[i], i * shard, min((i + 1) * shard, n))
                    for i in range(len(alive))]
            plans = yield from _local_sorts(jobs)
            if "LocalSort" not in completed:
                completed.append("LocalSort")
            if len(alive) == 1:
                plan = plans[0]
                single_run[0] = plan.host_out.data[
                    :plan.shard_stop - plan.shard_start]
                return
            runs = [plan.host_out.data[:plan.shard_stop - plan.shard_start]
                    for plan in plans]
            probes = len(alive) * config.samples_per_node
            yield env.timeout(probes * config.splitter_probe_latency_s)
            if deadline is not None and deadline.processed:
                raise DeadlineExceededError(
                    "deadline expired during the SplitterSelect phase "
                    f"at t={env.now:.6f}s")
            splitters = _select_splitters(runs, len(alive),
                                          config.samples_per_node)
            ledger = ExchangeLedger(splitters=splitters,
                                    nodes=tuple(alive))
            ledger_box[0] = ledger
            _register(ledger, plans)
        elif repair_slices:
            pieces = _reshard(list(repair_slices), alive)
            plans = yield from _local_sorts(pieces)
            _register(ledger, plans)
            # Only now: a failure above re-enters the repair branch.
            del repair_slices[:]
        yield from _exchange(ledger, alive)
        if "Exchange" not in completed:
            completed.append("Exchange")
        yield from _merges(ledger, alive)
        if "NodeMerge" not in completed:
            completed.append("NodeMerge")

    def _absorb_deaths(newly: List[int], alive: List[int],
                       exc: Optional[BaseException]) -> List[int]:
        survivors = [k for k in alive if k not in newly]
        if not survivors:
            raise SortError(
                f"node {newly[0]} died and no cluster nodes survive "
                "it") from exc
        ledger = ledger_box[0]
        for k in newly:
            _note_node_dead(k)
            if ledger is not None:
                repair_slices.extend(ledger.drop_node(k, survivors))
        if ledger is not None:
            # Deliveries that stayed durable across the drop are the
            # checkpointed work the replay will *not* redo.
            counters["restored"] += len(ledger.delivered)
        return survivors

    def run():
        wave_retries = 0
        while True:
            alive = [k for k in range(num_nodes) if k not in dead]
            # Nodes already dead (at planning time, or lost quietly
            # between epochs) are excluded without charging the replan
            # budget — no in-flight work of ours died with them.
            newly = [k for k in alive if node_dead_now(k)]
            if newly:
                alive = _absorb_deaths(newly, alive, None)
            try:
                yield from _epoch(alive)
                return
            except DeadlineExceededError:
                deadline_hit[0] = True
                return
            except (DeviceFaultError, TransferError) as exc:
                phase = failing["phase"] or "LocalSort"
                newly = [k for k in alive if node_dead_now(k)]
                if newly:
                    counters["node_replans"] += 1
                    if counters["node_replans"] > config.max_node_replans:
                        raise RecoveryError(
                            f"giving up after {config.max_node_replans} "
                            f"node replans (last failure in {phase}: "
                            f"{exc})") from exc
                    survivors = _absorb_deaths(newly, alive, exc)
                    now = env.now
                    machine.trace.record("Replan", "hier", now)
                    if machine.obs is not None:
                        machine.obs.replanned(
                            phase, type(exc).__name__,
                            tuple(gpu for k in newly
                                  for gpu in spec.gpu_ids_of_node(k)),
                            tuple(gpu for k in survivors
                                  for gpu in spec.gpu_ids_of_node(k)),
                            now)
                elif phase.startswith("Exchange"):
                    wave_retries += 1
                    counters["waves_replayed"] += 1
                    if wave_retries > config.max_wave_replays:
                        raise RecoveryError(
                            f"giving up after {config.max_wave_replays} "
                            f"wave replays (last failure in {phase}: "
                            f"{exc})") from exc
                else:
                    counters["node_replans"] += 1
                    if counters["node_replans"] > config.max_node_replans:
                        raise RecoveryError(
                            f"giving up after {config.max_node_replans} "
                            f"node replans (last failure in {phase}: "
                            f"{exc})") from exc

    try:
        machine.run(run())
    except SortError as exc:
        exc.failing_phase = failing["phase"]
        exc.failing_phase_started = failing["started"]
        exc.postmortems = []
        if config.postmortem_dir is not None:
            from repro.obs.postmortem import build_bundle, write_bundle
            try:
                bundle = build_bundle(machine, exc,
                                      phase=failing["phase"],
                                      phase_started=failing["started"],
                                      label="hier")
                exc.postmortems.append(
                    write_bundle(bundle, config.postmortem_dir))
            except Exception:  # noqa: BLE001 - must not mask exc
                pass
        raise
    finally:
        if root_id is not None:
            machine.trace.pop_parent()
            machine.trace.record("HierSort", "sort", start_time,
                                 bytes=n * itemsize * machine.scale,
                                 id=root_id)

    duration = env.now - start_time
    ledger = ledger_box[0]
    if deadline_hit[0]:
        output = None
    elif single_run[0] is not None:
        output = single_run[0].copy()
    else:
        output = np.concatenate([ledger.merged[rng]
                                 for rng in range(ledger.num_ranges)])

    recovery = machine.resilience_stats.delta(stats_before)
    fault_downtime = faults.downtime_between(start_time, env.now)
    degraded = bool(excluded or excluded_nodes or counters["node_replans"]
                    or counters["waves_replayed"] or recovery.retries
                    or recovery.reroutes or recovery.timeouts
                    or fault_downtime > 0.0)

    pivots: List[int] = []
    p2p_bytes = 0.0
    for stats in node_stats:
        pivots.extend(stats.pivots)
        p2p_bytes += stats.p2p_bytes
    planned_nodes = sorted(plan_ids)
    all_ids = tuple(gpu for k in planned_nodes for gpu in plan_ids[k])
    g = len(plan_ids[planned_nodes[0]]) if planned_nodes else 0
    phases = {name: value for name, value in
              machine.trace.phase_durations().items()
              if name in ("HtoD", "Sort", "Merge", "DtoH",
                          "Exchange", "NodeMerge")}
    return SortResult(
        algorithm="hier",
        system=spec.name,
        gpu_ids=all_ids,
        physical_keys=n,
        logical_keys=n * machine.scale,
        dtype=str(dtype),
        duration=duration,
        phase_durations=phases,
        p2p_bytes=p2p_bytes,
        merge_stages=2 * int(math.log2(g)) - 1 if g > 1 else 0,
        pivots=tuple(pivots),
        output=output,
        degraded=degraded,
        retries=recovery.retries,
        reroutes=recovery.reroutes,
        timeouts=recovery.timeouts,
        fault_downtime=fault_downtime,
        excluded_gpus=tuple(excluded),
        excluded_nodes=tuple(sorted(excluded_nodes)),
        replans=counters["node_replans"],
        waves_replayed=counters["waves_replayed"],
        checkpoints=counters["checkpoints"],
        checkpoints_restored=counters["restored"],
        deadline_exceeded=deadline_hit[0],
        completed_phases=tuple(completed),
    )
