"""HET sort: heterogeneous multi-GPU sorting (Section 5.3).

The GPUs sort fixed-size chunks; the CPU produces the globally sorted
output with a multiway merge.  Unlike P2P sort, HET sort is not limited
by the combined GPU memory: it streams *chunk groups* (one chunk per
GPU at a time) through the devices, so the only capacity bound is host
memory.

Pipelining strategies for out-of-core data (both implemented, compared
in Figure 15a):

* **2n approach** (this paper's contribution): two chunk-sized buffers
  per GPU.  Copies and compute alternate — after both transfer legs of
  a step complete, the GPU sorts with the second buffer as the sort's
  auxiliary memory.  Bigger chunks, fewer sublists for the final merge.
* **3n approach** (Stehle et al.): three smaller buffers; sorting chunk
  ``i`` overlaps with copying sorted chunk ``i-1`` out and chunk
  ``i+1`` in (an in-place transfer swap on the third buffer).

**Eager merging** (Gowanlock et al.) optionally merges each completed
chunk group on the CPU while the GPUs process the next one; Figure 15a
shows it *hurts* on modern systems because the CPU merge is slower than
the GPUs and competes with the copies for host memory bandwidth — both
effects emerge from the shared-resource model here.

Key-value sorting: pass ``values`` to carry one payload per key through
the pipelines and the CPU merge; payload bytes add to every transfer
and compute volume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SortError
from repro.faults.policy import ResiliencePolicy
from repro.runtime.buffer import DeviceBuffer, HostBuffer, default_pool
from repro.runtime.context import Machine
from repro.runtime.cpu_ops import cpu_multiway_merge
from repro.runtime.kernels import sort_on_device
from repro.runtime.memcpy import copy_async, span
from repro.runtime.stream import Stream
from repro.sort.gpu_set import surviving_gpu_ids
from repro.sort.result import SortResult


@dataclass
class HetConfig:
    """Tunables of the HET sort (defaults follow the paper)."""

    #: Single-GPU sort primitive (Table 2).
    primitive: str = "thrust"
    #: Pipelining strategy for out-of-core data: ``"2n"`` or ``"3n"``.
    approach: str = "2n"
    #: Merge completed chunk groups eagerly while the GPUs keep sorting.
    eager_merge: bool = False
    #: P2P-merge each chunk group on the GPUs before returning it, so
    #: the final CPU merge sees one run per *group* instead of one per
    #: chunk (Section 7: "future research should evaluate the
    #: suitability of a P2P-based GPU merge for large data").  Requires
    #: the 2n approach and a power-of-two GPU count; incompatible with
    #: eager merging (the group runs are already merged).
    gpu_merge_groups: bool = False
    #: Fraction of each GPU's memory usable for the chunk buffers
    #: (Figure 15a uses 33 GB of the A100's 40 GB).
    memory_budget: float = 0.825

    def buffers_per_gpu(self) -> int:
        """Number of chunk-sized device buffers the approach needs."""
        if self.gpu_merge_groups:
            if self.approach != "2n":
                raise SortError(
                    "gpu_merge_groups needs the 2n approach (the P2P "
                    "merge uses the second buffer as swap space)")
            if self.eager_merge:
                raise SortError(
                    "gpu_merge_groups and eager_merge are mutually "
                    "exclusive: group runs come back already merged")
        if self.approach == "2n":
            return 2
        if self.approach == "3n":
            return 3
        raise SortError(f"unknown approach {self.approach!r} "
                        "(expected '2n' or '3n')")


@dataclass
class _ChunkTask:
    """One chunk's host source range and output staging run."""

    index: int
    group: int
    src_start: int
    src_stop: int
    run: np.ndarray                      # host staging for sorted keys
    value_run: Optional[np.ndarray]      # host staging for payloads

    @property
    def size(self) -> int:
        return self.src_stop - self.src_start


class _PairedBuffers:
    """A key device buffer plus its optional payload sibling."""

    def __init__(self, device, capacity: int, key_dtype, value_dtype,
                 label: str):
        self.keys: DeviceBuffer = device.alloc(capacity, key_dtype,
                                               label=label)
        self.values: Optional[DeviceBuffer] = None
        if value_dtype is not None:
            self.values = device.alloc(capacity, value_dtype,
                                       label=f"{label}v")

    def free(self) -> None:
        self.keys.free()
        if self.values is not None:
            self.values.free()


def _plan_chunks(n: int, g: int, chunk_capacity: int) -> List[List[int]]:
    """Split ``n`` keys into per-group chunk sizes.

    Every group has ``g`` chunks (the last group may have fewer); all
    chunks except the final one are ``chunk`` keys.
    """
    if chunk_capacity < 1:
        raise SortError("GPU memory budget too small for any chunk")
    groups_needed = -(-n // (chunk_capacity * g))
    # Use the smallest equal chunk size that fits the group count, so
    # chunks stay balanced across GPUs (paper: equally sized chunks).
    chunk = -(-n // (groups_needed * g))
    sizes: List[List[int]] = []
    remaining = n
    while remaining > 0:
        group = []
        for _ in range(g):
            take = min(chunk, remaining)
            if take == 0:
                break
            group.append(take)
            remaining -= take
        sizes.append(group)
    return sizes


def chunk_capacity_for(machine: Machine, devices, config: HetConfig,
                       dtype, value_dtype, n: int) -> int:
    """Physical chunk capacity (elements) the HET pipelines use.

    The memory budget governs the out-of-core streaming chunk size
    (Figure 15a reserves 33 of the A100's 40 GB); in-core data gets one
    chunk of ``n/g`` keys per GPU when the device can hold it with the
    approach's buffer count.  Shared by :func:`het_sort` and the
    supervised HET driver so both plan identical chunks.
    """
    capacity = min(d.capacity_logical for d in devices)
    buffers = config.buffers_per_gpu()
    record_bytes = dtype.itemsize + (value_dtype.itemsize
                                     if value_dtype else 0)
    per_record_logical = record_bytes * machine.scale
    chunk_capacity = int(capacity * config.memory_budget
                         / buffers / per_record_logical)
    per_gpu_need = -(-n // len(devices))
    if per_gpu_need * buffers * per_record_logical <= capacity:
        chunk_capacity = max(chunk_capacity, per_gpu_need)
    return chunk_capacity


def _transfer_in(machine, pair: _PairedBuffers, task: _ChunkTask,
                 staging: HostBuffer, value_staging: Optional[HostBuffer]):
    """Processes copying one chunk (keys + payloads) onto the device."""
    env = machine.env
    procs = [env.process(copy_async(
        machine, span(pair.keys, 0, task.size),
        span(staging, task.src_start, task.src_stop), phase="HtoD"))]
    if pair.values is not None:
        procs.append(env.process(copy_async(
            machine, span(pair.values, 0, task.size),
            span(value_staging, task.src_start, task.src_stop),
            phase="HtoD")))
    return procs


def _transfer_out(machine, pair: _PairedBuffers, task: _ChunkTask,
                  numa: int):
    """Processes copying one sorted chunk back to its host runs."""
    env = machine.env
    run_buffer = HostBuffer(task.run, numa=numa)
    procs = [env.process(copy_async(
        machine, span(run_buffer, 0, task.size),
        span(pair.keys, 0, task.size), phase="DtoH"))]
    if pair.values is not None:
        value_buffer = HostBuffer(task.value_run, numa=numa)
        procs.append(env.process(copy_async(
            machine, span(value_buffer, 0, task.size),
            span(pair.values, 0, task.size), phase="DtoH")))
    return procs


def _sort_chunk(machine, pair: _PairedBuffers, task: _ChunkTask,
                config: HetConfig):
    return sort_on_device(
        machine, span(pair.keys, 0, task.size),
        primitive=config.primitive, phase="Sort",
        values=span(pair.values, 0, task.size)
        if pair.values is not None else None)


def _pipeline_2n(machine: Machine, device, tasks: List[_ChunkTask],
                 staging: HostBuffer, value_staging: Optional[HostBuffer],
                 config: HetConfig, chunk_capacity: int, value_dtype,
                 on_chunk_done):
    """Per-GPU 2n pipeline: alternate transfer steps with blocking sorts."""
    env = machine.env
    dtype = staging.dtype
    buffers = [_PairedBuffers(device, chunk_capacity, dtype, value_dtype,
                              label=f"het{device.id}_{i}")
               for i in range(2)]
    previous: Optional[Tuple[_ChunkTask, int]] = None  # (task, buffer idx)
    for step, task in enumerate(tasks):
        buf = step % 2
        copies = _transfer_in(machine, buffers[buf], task, staging,
                              value_staging)
        if previous is not None:
            prev_task, prev_buf = previous
            copies.extend(_transfer_out(machine, buffers[prev_buf],
                                        prev_task, staging.numa))
        yield env.all_of(copies)
        if previous is not None:
            on_chunk_done(previous[0])
        # The sort blocks all copies: the other buffer serves as the
        # sort's auxiliary memory (Figure 11).
        yield from _sort_chunk(machine, buffers[buf], task, config)
        previous = (task, buf)
    if previous is not None:
        prev_task, prev_buf = previous
        yield env.all_of(_transfer_out(machine, buffers[prev_buf],
                                       prev_task, staging.numa))
        on_chunk_done(prev_task)
    for pair in buffers:
        pair.free()


def _pipeline_3n(machine: Machine, device, tasks: List[_ChunkTask],
                 staging: HostBuffer, value_staging: Optional[HostBuffer],
                 config: HetConfig, chunk_capacity: int, value_dtype,
                 on_chunk_done):
    """Per-GPU 3n pipeline: sorting overlaps the in-place transfer swap.

    Two alternating chunk buffers plus one dedicated auxiliary buffer:
    while chunk ``i`` sorts in one alternating buffer (aux = the third
    buffer), the other alternating buffer simultaneously streams chunk
    ``i-1`` out and chunk ``i+1`` in (Figure 10).
    """
    env = machine.env
    dtype = staging.dtype
    buffers = [_PairedBuffers(device, chunk_capacity, dtype, value_dtype,
                              label=f"het{device.id}_{i}")
               for i in range(3)]  # [0], [1] alternate; [2] is the sort aux
    if tasks:
        yield env.all_of(_transfer_in(machine, buffers[0], tasks[0],
                                      staging, value_staging))
    for step, task in enumerate(tasks):
        current = step % 2
        other = (step + 1) % 2
        ops = [env.process(_sort_chunk(machine, buffers[current], task,
                                       config))]
        prev_task = tasks[step - 1] if step >= 1 else None
        next_task = tasks[step + 1] if step + 1 < len(tasks) else None
        if prev_task is not None:
            ops.extend(_transfer_out(machine, buffers[other], prev_task,
                                     staging.numa))
        if next_task is not None:
            ops.extend(_transfer_in(machine, buffers[other], next_task,
                                    staging, value_staging))
        yield env.all_of(ops)
        if prev_task is not None:
            on_chunk_done(prev_task)
    if tasks:
        last = tasks[-1]
        yield env.all_of(_transfer_out(
            machine, buffers[(len(tasks) - 1) % 2], last, staging.numa))
        on_chunk_done(last)
    for pair in buffers:
        pair.free()


def _grouped_gpu_merge_pipeline(machine: Machine, devices,
                                group_tasks: List[List[_ChunkTask]],
                                staging: HostBuffer,
                                value_staging: Optional[HostBuffer],
                                config: HetConfig, chunk_capacity: int,
                                value_dtype, on_group_merged):
    """Group-synchronous 2n pipeline with an on-GPU P2P merge per group.

    Every step overlaps the outbound copies of the merged group ``k-1``
    with the inbound copies of group ``k``; the sorts and the P2P merge
    stage run between the transfer steps (2n semantics: compute blocks
    copies).  Uniform groups come back as one sorted run; a ragged last
    group skips the GPU merge and returns per-chunk runs.
    """
    from repro.sort.p2p import P2PConfig, _Chunk, _merge_chunks, _Stats

    env = machine.env
    dtype = staging.dtype
    chunks: List[_Chunk] = []
    for device in devices:
        primary = device.alloc(chunk_capacity, dtype,
                               label=f"hetg{device.id}_a")
        aux = device.alloc(chunk_capacity, dtype,
                           label=f"hetg{device.id}_b")
        value_primary = value_aux = None
        if value_dtype is not None:
            value_primary = device.alloc(chunk_capacity, value_dtype,
                                         label=f"hetg{device.id}_va")
            value_aux = device.alloc(chunk_capacity, value_dtype,
                                     label=f"hetg{device.id}_vb")
        chunks.append(_Chunk(device, primary, aux, value_primary,
                             value_aux))

    merge_config = P2PConfig(primitive=config.primitive)

    def transfers_out(group: List[_ChunkTask]):
        procs = []
        for task, chunk in zip(group, chunks):
            run_buffer = HostBuffer(task.run, numa=staging.numa)
            procs.append(env.process(copy_async(
                machine, span(run_buffer, 0, task.size),
                span(chunk.primary, 0, task.size), phase="DtoH")))
            if chunk.has_values:
                value_buffer = HostBuffer(task.value_run,
                                          numa=staging.numa)
                procs.append(env.process(copy_async(
                    machine, span(value_buffer, 0, task.size),
                    span(chunk.value_primary, 0, task.size),
                    phase="DtoH")))
        return procs

    def transfers_in(group: List[_ChunkTask]):
        procs = []
        for task, chunk in zip(group, chunks):
            procs.append(env.process(copy_async(
                machine, span(chunk.aux, 0, task.size),
                span(staging, task.src_start, task.src_stop),
                phase="HtoD")))
            if chunk.has_values:
                procs.append(env.process(copy_async(
                    machine, span(chunk.value_aux, 0, task.size),
                    span(value_staging, task.src_start, task.src_stop),
                    phase="HtoD")))
        return procs

    previous: Optional[List[_ChunkTask]] = None
    for group in group_tasks:
        copies = transfers_in(group)
        if previous is not None:
            copies.extend(transfers_out(previous))
        yield env.all_of(copies)
        if previous is not None:
            on_group_merged(previous)
        # The fresh group sits in the aux buffers: make them primary.
        for chunk in chunks[:len(group)]:
            chunk.flip_buffers()
        sorts = [env.process(sort_on_device(
            machine, span(chunk.primary, 0, task.size),
            primitive=config.primitive, phase="Sort",
            values=span(chunk.value_primary, 0, task.size)
            if chunk.has_values else None))
            for task, chunk in zip(group, chunks)]
        yield env.all_of(sorts)
        uniform = (len(group) == len(chunks)
                   and len({task.size for task in group}) == 1)
        if uniform and len(chunks) > 1:
            # The P2P merge phase of the merge-based sort, verbatim,
            # over fixed-size windows of the pipeline buffers (groups
            # may be smaller than the allocated capacity).
            size = group[0].size
            backing = {}

            def window(buffer: DeviceBuffer) -> DeviceBuffer:
                view = DeviceBuffer(buffer.device, buffer.data[:size])
                backing[id(view)] = buffer
                return view

            group_chunks = [
                _Chunk(chunk.device, window(chunk.primary),
                       window(chunk.aux),
                       window(chunk.value_primary)
                       if chunk.has_values else None,
                       window(chunk.value_aux)
                       if chunk.has_values else None)
                for chunk in chunks]
            yield from _merge_chunks(machine, group_chunks, merge_config,
                                     _Stats())
            # Propagate any buffer flips back to the real chunks.
            for real, view in zip(chunks, group_chunks):
                if backing[id(view.primary)] is real.aux:
                    real.flip_buffers()
        previous = group
    if previous is not None:
        yield env.all_of(transfers_out(previous))
        on_group_merged(previous)
    for chunk in chunks:
        for buffer in chunk.all_buffers():
            buffer.free()


def het_sort(machine: Machine, data: Union[np.ndarray, HostBuffer],
             gpu_ids: Optional[Sequence[int]] = None,
             config: Optional[HetConfig] = None,
             values: Optional[np.ndarray] = None,
             resilience: Optional[ResiliencePolicy] = None) -> SortResult:
    """Sort ``data`` with the heterogeneous algorithm; returns the result.

    Handles both in-core data (one chunk group; the 2n and 3n
    approaches coincide, Section 6.1) and out-of-core data (multiple
    chunk groups streamed through the GPUs).  The GPU set order does
    not matter for HET sort (Section 5.4), only its membership.

    Pass ``values`` for key-value records; sorted payloads come back in
    ``result.output_values``.

    ``resilience`` overrides the machine's policy for this run.  On a
    machine with an installed fault plan, failed or badly straggling
    GPUs are dropped and the chunk groups re-planned over the
    survivors (any count works — HET needs no power of two unless
    ``gpu_merge_groups`` is on); recovery work is reported on the
    result.
    """
    config = config or HetConfig()
    config.buffers_per_gpu()  # validate the approach early
    if resilience is not None:
        machine.resilience = resilience
    if isinstance(data, HostBuffer):
        host_in = data
    else:
        host_in = machine.host_buffer(np.asarray(data))
    n = len(host_in.data)
    if n == 0:
        raise SortError("cannot sort an empty array")
    value_staging = None
    value_dtype = None
    if values is not None:
        values = np.asarray(values)
        if len(values) != n:
            raise SortError(f"{len(values)} values for {n} keys")
        value_staging = machine.host_buffer(values, numa=host_in.numa,
                                            pinned=host_in.pinned)
        value_dtype = values.dtype

    ids = tuple(gpu_ids) if gpu_ids is not None else \
        machine.spec.preferred_gpu_set(machine.num_gpus)
    excluded = ()
    if machine.faults is not None:
        survivors, excluded = surviving_gpu_ids(machine, ids)
        if not survivors:
            raise SortError(
                f"no healthy GPUs left in {ids}: all failed or "
                "straggling past the exclusion factor")
        if excluded:
            ids = survivors
            if config.gpu_merge_groups and len(ids) & (len(ids) - 1):
                # The on-GPU group merge needs 2^k chunks per group;
                # shrink to the largest power-of-two prefix.
                ids = ids[:1 << int(math.log2(len(ids)))]
    if len(set(ids)) != len(ids):
        raise SortError(f"duplicate GPU ids in {ids}")
    g = len(ids)
    dtype = host_in.dtype

    devices = [machine.device(i) for i in ids]
    chunk_capacity = chunk_capacity_for(machine, devices, config, dtype,
                                        value_dtype, n)
    group_sizes = _plan_chunks(n, g, chunk_capacity)
    groups = len(group_sizes)

    host_out = machine.host_buffer(np.empty(n, dtype=dtype),
                                   numa=host_in.numa)
    values_out = None
    if value_dtype is not None:
        values_out = machine.host_buffer(np.empty(n, dtype=value_dtype),
                                         numa=host_in.numa)

    if config.gpu_merge_groups and g > 1 and g & (g - 1):
        raise SortError(
            "gpu_merge_groups needs a power-of-two GPU count for the "
            f"P2P merge, got {g}")

    def is_uniform(sizes: List[int]) -> bool:
        return len(sizes) == g and len(set(sizes)) == 1

    # Build the task list: chunk j of group i reads a contiguous input
    # range and owns one staging run on the host.  A degenerate run
    # count of one (single GPU, in-core) needs no merge at all — the
    # paper's 1-GPU baseline is plain Thrust without a merge phase — so
    # that run stages directly into the output buffer.  With GPU-merged
    # groups, a uniform group's task runs are slices of one contiguous
    # group array: the group comes back as a single sorted run.
    single_run = sum(len(sizes) for sizes in group_sizes) == 1
    tasks: List[_ChunkTask] = []
    group_runs: dict = {}
    # Every staging run (per-chunk, per-group, eager-merged) is dead
    # once the final merge lands in host_out, so they all come from the
    # workspace pool and go back after the run.
    borrowed: List[np.ndarray] = []

    def staging_array(size: int, array_dtype) -> np.ndarray:
        array = default_pool.take(size, array_dtype)
        borrowed.append(array)
        return array

    offset = 0
    for group_index, sizes in enumerate(group_sizes):
        merged_group = (config.gpu_merge_groups and g > 1
                        and is_uniform(sizes) and not single_run)
        if merged_group:
            total = sum(sizes)
            group_keys = staging_array(total, dtype)
            group_values = (staging_array(total, value_dtype)
                            if value_dtype is not None else None)
            group_runs[group_index] = (group_keys, group_values)
        for j, size in enumerate(sizes):
            if single_run:
                run = host_out.data
                value_run = values_out.data if values_out is not None \
                    else None
            elif merged_group:
                run = group_keys[j * size:(j + 1) * size]
                value_run = (group_values[j * size:(j + 1) * size]
                             if group_values is not None else None)
            else:
                run = staging_array(size, dtype)
                value_run = (staging_array(size, value_dtype)
                             if value_dtype is not None else None)
            tasks.append(_ChunkTask(
                index=len(tasks), group=group_index,
                src_start=offset, src_stop=offset + size, run=run,
                value_run=value_run))
            offset += size
    chunk_capacity = max(task.size for task in tasks)

    per_gpu: List[List[_ChunkTask]] = [[] for _ in range(g)]
    for task_index, task in enumerate(tasks):
        per_gpu[task_index % g].append(task)

    pipeline = _pipeline_2n if config.approach == "2n" else _pipeline_3n

    # Eager merging: once a whole group's chunks are back in host
    # memory, merge them on the CPU (serialized on one merge stream)
    # while the GPUs continue — except the last group (Section 5.3).
    group_remaining = [len(sizes) for sizes in group_sizes]
    eager_results: dict = {}
    cpu_stream = Stream(machine, name="cpu-merge")

    def on_chunk_done(task: _ChunkTask) -> None:
        group_remaining[task.group] -= 1
        if (config.eager_merge and group_remaining[task.group] == 0
                and groups > 1 and task.group < groups - 1):
            group_tasks = [t for t in tasks if t.group == task.group]
            total = sum(t.size for t in group_tasks)
            merged = staging_array(total, dtype)
            merged_values = (staging_array(total, value_dtype)
                             if value_dtype is not None else None)
            eager_results[task.group] = (merged, merged_values)
            cpu_stream.submit(cpu_multiway_merge(
                machine, merged, [t.run for t in group_tasks],
                numa=host_in.numa, phase="Merge",
                values_out=merged_values,
                value_runs=[t.value_run for t in group_tasks]
                if value_dtype is not None else None))

    start = machine.env.now
    stats_before = machine.resilience_stats.snapshot()
    # Root span for the timeline hierarchy — only with observability on
    # (see the matching note in p2p_sort).
    root_id = None
    if machine.obs is not None:
        root_id = machine.trace.allocate_id()
        machine.trace.push_parent(root_id)

    def run():
        env = machine.env
        if config.gpu_merge_groups and g > 1 and not single_run:
            group_task_lists = [
                [task for task in tasks if task.group == group_index]
                for group_index in range(groups)]

            def on_group_merged(group: List[_ChunkTask]) -> None:
                for task in group:
                    on_chunk_done(task)

            yield from _grouped_gpu_merge_pipeline(
                machine, devices, group_task_lists, host_in,
                value_staging, config, chunk_capacity, value_dtype,
                on_group_merged)
        else:
            pipes = [env.process(pipeline(
                machine, devices[slot], per_gpu[slot], host_in,
                value_staging, config, chunk_capacity, value_dtype,
                on_chunk_done))
                for slot in range(g) if per_gpu[slot]]
            yield env.all_of(pipes)
        yield cpu_stream.synchronize()
        if single_run:
            return
        final_runs: List[np.ndarray] = []
        final_value_runs: List[np.ndarray] = []
        for group_index in range(groups):
            if group_index in eager_results:
                merged, merged_values = eager_results[group_index]
                final_runs.append(merged)
                if merged_values is not None:
                    final_value_runs.append(merged_values)
            elif group_index in group_runs:
                group_keys, group_values = group_runs[group_index]
                final_runs.append(group_keys)
                if group_values is not None:
                    final_value_runs.append(group_values)
            else:
                for task in tasks:
                    if task.group == group_index:
                        final_runs.append(task.run)
                        if task.value_run is not None:
                            final_value_runs.append(task.value_run)
        if len(final_runs) == 1:
            # A single GPU-merged group IS the sorted output; the
            # slices already point into host memory.
            host_out.data[:] = final_runs[0]
            if values_out is not None:
                values_out.data[:] = final_value_runs[0]
            return
        yield from cpu_multiway_merge(
            machine, host_out.data, final_runs, numa=host_in.numa,
            phase="Merge",
            values_out=values_out.data if values_out is not None else None,
            value_runs=final_value_runs if value_dtype is not None
            else None)

    try:
        machine.run(run())
    finally:
        if root_id is not None:
            machine.trace.pop_parent()
            machine.trace.record("HetSort", "sort", start,
                                 bytes=n * dtype.itemsize * machine.scale,
                                 id=root_id)
        for array in borrowed:
            default_pool.give(array)
    duration = machine.env.now - start

    recovery = machine.resilience_stats.delta(stats_before)
    fault_downtime = (machine.faults.downtime_between(start, machine.env.now)
                      if machine.faults is not None else 0.0)
    degraded = bool(excluded or recovery.retries or recovery.reroutes
                    or recovery.timeouts or fault_downtime > 0.0)

    phases = {name: value for name, value in
              machine.trace.phase_durations().items()
              if name in ("HtoD", "Sort", "DtoH", "Merge")}
    return SortResult(
        algorithm="het",
        system=machine.spec.name,
        gpu_ids=ids,
        physical_keys=n,
        logical_keys=n * machine.scale,
        dtype=str(dtype),
        duration=duration,
        phase_durations=phases,
        chunk_groups=groups,
        output=host_out.data,
        output_values=values_out.data if values_out is not None else None,
        degraded=degraded,
        retries=recovery.retries,
        reroutes=recovery.reroutes,
        timeouts=recovery.timeouts,
        fault_downtime=fault_downtime,
        excluded_gpus=excluded,
    )
