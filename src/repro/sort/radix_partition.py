"""RP sort: partition-based multi-GPU sorting (Section 7, implemented).

The paper's closing proposal: *"we suggest to reduce the P2P
communication by designing a radix partitioning-based multi-GPU sorting
algorithm which would require swapping keys between GPUs only once
(all-to-all). This approach would highly benefit systems with many
NVSwitch-interconnected GPUs such as the DGX A100."*

This module implements that algorithm (with sampled splitters instead
of fixed radix bits, so skewed distributions stay balanced):

1. chunks are scattered to the GPUs as usual,
2. every GPU samples its chunk; the host sorts the sample union and
   derives ``g - 1`` splitters,
3. every GPU partitions its chunk into ``g`` buckets in one pass,
4. **one all-to-all exchange** ships bucket ``j`` of every chunk to
   GPU ``j`` — each key crosses the interconnect at most once,
   expected volume ``n * (g-1)/g`` versus the merge-based P2P sort's
   ``~n/2 * (g-1)``,
5. every GPU sorts its received keys locally; the concatenated chunks
   are the sorted output.

Unlike the merge-based P2P sort, RP sort works for *any* GPU count (no
power-of-two restriction).  The trade-off is memory: receive buffers
need slack for partition imbalance, so the maximum in-core data size is
slightly smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import SortError
from repro.runtime.buffer import HostBuffer
from repro.runtime.context import Machine
from repro.runtime.kernels import sort_on_device
from repro.runtime.memcpy import copy_async, span
from repro.sort.gpu_set import surviving_gpu_ids
from repro.sort.result import SortResult
from repro.units import US


@dataclass
class RPConfig:
    """Tunables of the partition-based sort."""

    #: Single-GPU sort primitive for the final local sorts (Table 2).
    primitive: str = "thrust"
    #: Sample keys per GPU per output partition; higher values tighten
    #: the balance of the exchange.
    oversample: int = 32
    #: Receive-buffer headroom over the perfectly balanced size.
    slack: float = 1.3
    #: Partition-pass speed relative to the radix sort rate: one
    #: histogram + scatter pass versus the sort's multiple passes.
    partition_speedup: float = 3.0


def _partition_seconds(machine: Machine, device, nbytes_logical: float,
                       config: RPConfig, itemsize: int) -> float:
    sort_rate = device.spec.sort_rate(config.primitive, itemsize)
    return (device.spec.launch_overhead_s
            + nbytes_logical / (sort_rate * config.partition_speedup))


def _assign_buckets(keys: np.ndarray, splitters: np.ndarray,
                    parts: int,
                    tie_fractions: "dict" = None) -> np.ndarray:
    """Destination bucket per key, splitting splitter ties by rank.

    Keys strictly between splitters have exactly one legal bucket.  A
    key *equal* to a splitter may go to either adjacent bucket (or a
    whole range when splitters repeat under heavy duplication) without
    breaking the global order.  ``tie_fractions`` — computed from the
    sample by :func:`_splitters` — gives, per tied value, the fraction
    of its copies that belong below each boundary; copies are cut
    accordingly, which keeps the exchange balanced even for degenerate
    inputs (the rank-based tie-breaking device of sample sort).
    """
    lo = np.searchsorted(splitters, keys, side="left").astype(np.int64)
    hi = np.searchsorted(splitters, keys, side="right").astype(np.int64)
    buckets = hi.copy()
    ties = np.flatnonzero(hi > lo)
    if not ties.size:
        return buckets
    tie_fractions = tie_fractions or {}
    for value in np.unique(keys[ties]):
        where = np.flatnonzero(keys == value)
        first, last = int(lo[where[0]]), int(hi[where[0]])
        fractions = tie_fractions.get(
            value, [(i - first + 1) / (last - first + 1)
                    for i in range(first, last)])
        cuts = [int(round(f * where.size)) for f in fractions]
        assignment = np.full(where.size, last, dtype=np.int64)
        start = 0
        for offset, cut in enumerate(cuts):
            assignment[start:cut] = first + offset
            start = max(start, cut)
        buckets[where] = assignment
    return buckets


def _splitters(samples: np.ndarray, parts: int):
    """Splitters at the sample quantiles, plus tie-split fractions.

    Returns ``(values, tie_fractions)``: the ``parts - 1`` boundary
    values, and — for every value that appears at one or more
    boundaries — the fraction of that value's copies that belong below
    each of its boundaries (derived from the boundary's rank within the
    value's run of equal samples).
    """
    ordered = np.sort(samples)
    positions = [(len(ordered) * (i + 1)) // parts
                 for i in range(parts - 1)]
    values = ordered[positions]
    tie_fractions = {}
    for value in np.unique(values):
        run_start = int(np.searchsorted(ordered, value, side="left"))
        run_stop = int(np.searchsorted(ordered, value, side="right"))
        run = max(1, run_stop - run_start)
        fractions = [(positions[i] - run_start) / run
                     for i in range(parts - 1) if values[i] == value]
        tie_fractions[value] = [min(1.0, max(0.0, f)) for f in fractions]
    return values, tie_fractions


def rp_sort(machine: Machine, data: Union[np.ndarray, HostBuffer],
            gpu_ids: Optional[Sequence[int]] = None,
            config: Optional[RPConfig] = None,
            values: Optional[np.ndarray] = None) -> SortResult:
    """Sort ``data`` with the single-exchange partition algorithm.

    Phases: ``HtoD`` (scatter), ``Partition`` (sample, split, bucket),
    ``Exchange`` (the one all-to-all), ``Sort`` (local sorts), ``DtoH``
    (gather).  Returns a :class:`~repro.sort.result.SortResult` whose
    ``p2p_bytes`` counts the exchange volume.  Pass ``values`` to carry
    one payload per key through the partition, the exchange and the
    local sorts.
    """
    config = config or RPConfig()
    if config.slack < 1.0:
        raise SortError(f"slack must be >= 1, got {config.slack}")
    if config.oversample < 1:
        raise SortError(f"oversample must be >= 1, got {config.oversample}")
    if isinstance(data, HostBuffer):
        host_in = data
    else:
        host_in = machine.host_buffer(np.asarray(data))
    n = len(host_in.data)
    if n == 0:
        raise SortError("cannot sort an empty array")
    host_values = None
    value_dtype = None
    if values is not None:
        values = np.asarray(values)
        if len(values) != n:
            raise SortError(f"{len(values)} values for {n} keys")
        host_values = machine.host_buffer(values, numa=host_in.numa,
                                          pinned=host_in.pinned)
        value_dtype = values.dtype

    ids = tuple(gpu_ids) if gpu_ids is not None else \
        machine.spec.preferred_gpu_set(machine.num_gpus)
    excluded = ()
    if machine.faults is not None:
        survivors, excluded = surviving_gpu_ids(machine, ids)
        if not survivors:
            raise SortError(
                f"no healthy GPUs left in {ids}: all failed or "
                "straggling past the exclusion factor")
        ids = survivors
    if len(set(ids)) != len(ids):
        raise SortError(f"duplicate GPU ids in {ids}")
    g = len(ids)
    dtype = host_in.dtype
    itemsize = dtype.itemsize
    record_bytes = itemsize + (value_dtype.itemsize if value_dtype else 0)
    chunk = -(-n // g)
    recv_capacity = max(int(chunk * config.slack) + g, chunk)
    if n <= g * g * config.oversample:
        # Tiny inputs: the splitters come from sampling *with
        # replacement*, so an unlucky draw can skew the quantiles far
        # enough that no reasonable slack covers the heaviest bucket
        # (e.g. 14 duplicates of 18 keys landing on one GPU).  The
        # whole input is a rounding error at this size — cover the
        # worst case outright.
        recv_capacity = n
    for gpu_id in ids:
        device = machine.device(gpu_id)
        need = (max(2 * chunk, 2 * recv_capacity)
                * record_bytes * machine.scale)
        if need > device.capacity_logical:
            raise SortError(
                f"{device.name}: RP sort needs {need / 1e9:.1f} GB "
                f"(logical) for chunk, partition and receive buffers, "
                f"exceeding {device.capacity_logical / 1e9:.1f} GB")

    host_out = machine.host_buffer(np.empty(n, dtype=dtype),
                                   numa=host_in.numa)
    values_out = None
    if value_dtype is not None:
        values_out = machine.host_buffer(np.empty(n, dtype=value_dtype),
                                         numa=host_in.numa)
    stats = {"exchange_bytes": 0.0}
    start = machine.env.now

    def run():
        env = machine.env
        devices = [machine.device(i) for i in ids]
        sizes = [max(0, min(chunk, n - slot * chunk)) for slot in range(g)]
        primaries = [devices[slot].alloc(sizes[slot], dtype,
                                         label=f"rp_chunk{slot}")
                     for slot in range(g)]
        value_primaries = None
        if value_dtype is not None:
            value_primaries = [devices[slot].alloc(
                sizes[slot], value_dtype, label=f"rp_vals{slot}")
                for slot in range(g)]

        starts = [min(n, slot * chunk) for slot in range(g)]
        htod = [env.process(copy_async(
            machine, span(primaries[slot]),
            span(host_in, starts[slot], starts[slot] + sizes[slot]),
            phase="HtoD")) for slot in range(g) if sizes[slot]]
        if value_primaries is not None:
            htod += [env.process(copy_async(
                machine, span(value_primaries[slot]),
                span(host_values, starts[slot],
                     starts[slot] + sizes[slot]),
                phase="HtoD")) for slot in range(g) if sizes[slot]]
        yield env.all_of(htod)

        # -- sampling and splitter selection (host-side, tiny) ---------
        partition_start = env.now
        active = [slot for slot in range(g) if sizes[slot] > 0]
        sample_size = min(config.oversample * g,
                          min(sizes[slot] for slot in active))
        rng = np.random.default_rng(0xC0FFEE)
        samples = []
        sample_copies = []
        staged_buffers = []
        for slot in active:
            picks = np.sort(rng.integers(0, sizes[slot],
                                         size=sample_size))
            sample = primaries[slot].data[picks].copy()
            samples.append(sample)
            sample_buf = machine.host_buffer(np.empty(sample_size, dtype),
                                             numa=host_in.numa)
            staged = devices[slot].alloc(sample_size, dtype)
            staged.data[:] = sample
            staged_buffers.append(staged)
            sample_copies.append(env.process(copy_async(
                machine, span(sample_buf), span(staged))))
        yield env.all_of(sample_copies)
        for staged in staged_buffers:
            staged.free()
        splitters, tie_fractions = _splitters(
            np.concatenate(samples), g)
        # Broadcasting g-1 splitters to each GPU: latency-bound.
        yield env.timeout(g * 20 * US)

        # -- one-pass bucket partition, all GPUs concurrently ------------
        from repro.gpuprims.common import stable_counting_permutation

        partitioned = [devices[slot].alloc(sizes[slot], dtype,
                                           label=f"rp_part{slot}")
                       for slot in range(g)]
        value_partitioned = None
        if value_dtype is not None:
            value_partitioned = [devices[slot].alloc(
                sizes[slot], value_dtype, label=f"rp_vpart{slot}")
                for slot in range(g)]
        bucket_bounds: List[np.ndarray] = [np.zeros(g + 1, dtype=np.int64)
                                           for _ in range(g)]

        def partition_one(slot: int):
            device = devices[slot]
            size = sizes[slot]
            logical = size * record_bytes * machine.scale
            yield env.timeout(_partition_seconds(
                machine, device, logical, config, itemsize))
            keys = primaries[slot].data[:size]
            buckets = _assign_buckets(keys, splitters, g,
                                       tie_fractions)
            order = stable_counting_permutation(buckets, g)
            # Gather straight into the partition buffer — no fancy-index
            # temporary between the device buffers.
            np.take(keys, order, out=partitioned[slot].data[:size])
            if value_partitioned is not None:
                np.take(value_primaries[slot].data[:size], order,
                        out=value_partitioned[slot].data[:size])
            counts = np.bincount(buckets, minlength=g)
            np.cumsum(counts, out=bucket_bounds[slot][1:])
            machine.trace.record("Partition", device.name,
                                 partition_start, bytes=logical)

        yield env.all_of([env.process(partition_one(slot))
                          for slot in range(g) if sizes[slot]])
        for primary in primaries:
            primary.free()
        if value_primaries is not None:
            for buffer in value_primaries:
                buffer.free()

        # -- the single all-to-all exchange -----------------------------
        recv_counts = [
            int(sum(bucket_bounds[src][dst + 1] - bucket_bounds[src][dst]
                    for src in range(g)))
            for dst in range(g)
        ]
        for dst in range(g):
            if recv_counts[dst] > recv_capacity:
                raise SortError(
                    f"partition imbalance: GPU slot {dst} receives "
                    f"{recv_counts[dst]} keys, buffer holds "
                    f"{recv_capacity}; increase RPConfig.slack or "
                    "oversample")
        receives = [devices[slot].alloc(recv_capacity, dtype,
                                        label=f"rp_recv{slot}")
                    for slot in range(g)]
        value_receives = None
        if value_dtype is not None:
            value_receives = [devices[slot].alloc(
                recv_capacity, value_dtype, label=f"rp_vrecv{slot}")
                for slot in range(g)]
        offsets = [0] * g
        copies = []
        for src in range(g):
            for dst in range(g):
                lo = int(bucket_bounds[src][dst])
                hi = int(bucket_bounds[src][dst + 1])
                if lo == hi:
                    continue
                length = hi - lo
                target = span(receives[dst], offsets[dst],
                              offsets[dst] + length)
                source = span(partitioned[src], lo, hi)
                copies.append(env.process(copy_async(
                    machine, target, source, phase="Exchange")))
                if value_receives is not None:
                    copies.append(env.process(copy_async(
                        machine,
                        span(value_receives[dst], offsets[dst],
                             offsets[dst] + length),
                        span(value_partitioned[src], lo, hi),
                        phase="Exchange")))
                offsets[dst] += length
                if src != dst:
                    stats["exchange_bytes"] += (length * record_bytes
                                                * machine.scale)
        yield env.all_of(copies)
        for aux in partitioned:
            aux.free()
        if value_partitioned is not None:
            for aux in value_partitioned:
                aux.free()

        # -- local sorts and gather --------------------------------------
        # The local radix sort needs its auxiliary buffer (Section 5.1),
        # accounted here so the capacity math stays honest.
        sort_aux = [devices[slot].alloc(recv_counts[slot], dtype,
                                        label=f"rp_sort_aux{slot}")
                    for slot in range(g)]
        value_sort_aux = []
        if value_dtype is not None:
            value_sort_aux = [devices[slot].alloc(
                recv_counts[slot], value_dtype,
                label=f"rp_vsort_aux{slot}") for slot in range(g)]
        sorts = [env.process(sort_on_device(
            machine, span(receives[slot], 0, recv_counts[slot]),
            primitive=config.primitive, phase="Sort",
            values=span(value_receives[slot], 0, recv_counts[slot])
            if value_receives is not None else None))
            for slot in range(g) if recv_counts[slot]]
        yield env.all_of(sorts)
        for aux in sort_aux + value_sort_aux:
            aux.free()

        out_offsets = np.zeros(g + 1, dtype=np.int64)
        np.cumsum(recv_counts, out=out_offsets[1:])
        dtoh = [env.process(copy_async(
            machine,
            span(host_out, int(out_offsets[slot]),
                 int(out_offsets[slot + 1])),
            span(receives[slot], 0, recv_counts[slot]), phase="DtoH"))
            for slot in range(g) if recv_counts[slot]]
        if value_receives is not None:
            dtoh += [env.process(copy_async(
                machine,
                span(values_out, int(out_offsets[slot]),
                     int(out_offsets[slot + 1])),
                span(value_receives[slot], 0, recv_counts[slot]),
                phase="DtoH"))
                for slot in range(g) if recv_counts[slot]]
        yield env.all_of(dtoh)
        for buffer in receives:
            buffer.free()
        if value_receives is not None:
            for buffer in value_receives:
                buffer.free()

    stats_before = machine.resilience_stats.snapshot()
    machine.run(run())
    duration = machine.env.now - start

    recovery = machine.resilience_stats.delta(stats_before)
    fault_downtime = (machine.faults.downtime_between(start, machine.env.now)
                      if machine.faults is not None else 0.0)
    degraded = bool(excluded or recovery.retries or recovery.reroutes
                    or recovery.timeouts or fault_downtime > 0.0)

    phases = {name: value for name, value in
              machine.trace.phase_durations().items()
              if name in ("HtoD", "Partition", "Exchange", "Sort", "DtoH")}
    return SortResult(
        algorithm="rp",
        system=machine.spec.name,
        gpu_ids=ids,
        physical_keys=n,
        logical_keys=n * machine.scale,
        dtype=str(dtype),
        duration=duration,
        phase_durations=phases,
        p2p_bytes=stats["exchange_bytes"],
        merge_stages=1,
        output=host_out.data,
        output_values=values_out.data if values_out is not None else None,
        degraded=degraded,
        retries=recovery.retries,
        reroutes=recovery.reroutes,
        timeouts=recovery.timeouts,
        fault_downtime=fault_downtime,
        excluded_gpus=excluded,
    )
