"""The out-of-place P2P block swap of the merge phase (Section 5.2).

Given two GPU chunks divided by a pivot ``p``, the merge step exchanges
the last ``p`` keys of the left chunk with the first ``p`` keys of the
right chunk.  Following Tanasic et al., the swap is *out-of-place*:
each GPU assembles its post-swap chunk in its auxiliary buffer — the
kept block arrives via a device-local copy (orders of magnitude faster
than the interconnect, Section 5.2) that runs concurrently with the
inbound P2P copy; no synchronization between the streams is needed
because they write disjoint ranges.  The auxiliary buffer is the one
``thrust::sort`` already requires, so the swap adds no memory overhead.

After the swap each chunk consists of two sorted runs; the caller
merges them locally (GPU merge kernel).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.errors import SortError
from repro.runtime.kernels import merge_two_on_device
from repro.runtime.memcpy import copy_async, span

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine
    from repro.sort.p2p import _Chunk


def _p2p_copy(machine: "Machine", dst, src, multihop: bool, phase: str):
    """One P2P leg: direct, host-staged, or GPU-relayed (Section 7)."""
    if multihop:
        from repro.runtime.multihop import (
            copy_multihop,
            multihop_rate_estimate,
            relay_gpu_ids,
        )

        src_gpu = src.buffer.device.id
        dst_gpu = dst.buffer.device.id
        relays = relay_gpu_ids(machine, src_gpu, dst_gpu)
        if relays:
            route = machine.spec.topology.route(
                machine.spec.gpu_name(src_gpu),
                machine.spec.gpu_name(dst_gpu))
            staged_rate = (machine.spec.p2p_traverse_efficiency
                           * route.bottleneck)
            relayed_rate = multihop_rate_estimate(machine, src_gpu, dst_gpu)
            if relayed_rate and relayed_rate > staged_rate:
                result = yield from copy_multihop(machine, dst, src,
                                                  relays, phase=phase)
                return result
    result = yield from copy_async(machine, dst, src, phase=phase)
    return result


def _no_check() -> None:
    """Default ``check``: unsupervised runs have no failure to stop on."""


def swap_and_merge_pair(machine: "Machine", left: "_Chunk",
                        right: "_Chunk", pivot: int,
                        merge_phase: str = "Merge",
                        multihop: bool = False,
                        spawn=None, check=None):
    """Process: execute the pivot swap between two chunks, then merge.

    ``left`` and ``right`` are chunk holders exposing ``primary`` and
    ``aux`` device buffers of equal element count ``n``; ``pivot`` is
    the number of keys exchanged.  Zero pivots skip all copies; full
    pivots (``p == n``) skip the local merges (whole chunks change
    sides already sorted, like C1/C2 in the paper's Figure 9).

    ``spawn``/``check`` are the supervision seam: a supervised run
    spawns the concurrent copies and merges through its task group's
    shield (so a failing child never crashes the event loop) and calls
    ``check`` after each barrier to stop on a recorded failure before
    touching the chunks again.  Left unset, children are plain
    processes and ``check`` does nothing — bit-identical to the
    unsupervised path.

    Returns the logical byte volume moved over P2P links.
    """
    env = machine.env
    if spawn is None:
        spawn = env.process
    if check is None:
        check = _no_check
    n = left.size
    if right.size != n:
        raise SortError(
            f"chunk size mismatch: {n} vs {right.size}")
    if not 0 <= pivot <= n:
        raise SortError(f"pivot {pivot} out of range for chunks of {n}")
    if pivot == 0:
        # Leftmost-pivot optimization: nothing to exchange.
        return 0.0

    keep_left = n - pivot
    done = [
        # P2P: left's tail block becomes the head of right's new chunk,
        # right's head block becomes the tail of left's new chunk.
        spawn(_p2p_copy(
            machine, span(right.aux, 0, pivot),
            span(left.primary, keep_left, n), multihop, merge_phase)),
        spawn(_p2p_copy(
            machine, span(left.aux, keep_left, n),
            span(right.primary, 0, pivot), multihop, merge_phase)),
    ]
    if keep_left:
        # Device-local copies of the kept blocks into the aux buffers,
        # concurrent with the P2P streams (disjoint target ranges).
        done.append(spawn(copy_async(
            machine, span(left.aux, 0, keep_left),
            span(left.primary, 0, keep_left), phase=merge_phase)))
        done.append(spawn(copy_async(
            machine, span(right.aux, pivot, n),
            span(right.primary, pivot, n), phase=merge_phase)))
    p2p_bytes = 2.0 * pivot * left.primary.dtype.itemsize * machine.scale
    if left.has_values:
        # Payloads travel with their key blocks, doubling the traffic.
        done.append(spawn(_p2p_copy(
            machine, span(right.value_aux, 0, pivot),
            span(left.value_primary, keep_left, n), multihop,
            merge_phase)))
        done.append(spawn(_p2p_copy(
            machine, span(left.value_aux, keep_left, n),
            span(right.value_primary, 0, pivot), multihop, merge_phase)))
        if keep_left:
            done.append(spawn(copy_async(
                machine, span(left.value_aux, 0, keep_left),
                span(left.value_primary, 0, keep_left),
                phase=merge_phase)))
            done.append(spawn(copy_async(
                machine, span(right.value_aux, pivot, n),
                span(right.value_primary, pivot, n), phase=merge_phase)))
        p2p_bytes += (2.0 * pivot * left.value_primary.dtype.itemsize
                      * machine.scale)
    yield env.all_of(done)
    check()

    # The assembled chunks live in the aux buffers: swap the roles.
    left.flip_buffers()
    right.flip_buffers()

    if pivot < n:
        merges = [
            spawn(merge_two_on_device(
                machine, span(left.primary, 0, n), keep_left,
                phase=merge_phase,
                values=span(left.value_primary, 0, n)
                if left.has_values else None)),
            spawn(merge_two_on_device(
                machine, span(right.primary, 0, n), pivot,
                phase=merge_phase,
                values=span(right.value_primary, 0, n)
                if right.has_values else None)),
        ]
        yield env.all_of(merges)
        check()
    return p2p_bytes


def block_swap_sizes(pivot: int, chunk: int, pairs: int) -> Tuple[int, ...]:
    """Per-pair swap sizes for a multi-chunk (global) merge stage.

    A global stage over ``2 * pairs`` chunks of ``chunk`` keys each
    exchanges the last ``pivot`` keys of the left half with the first
    ``pivot`` keys of the right half under mirrored pairing: pair ``m``
    couples the ``m``-th chunk left of the middle with the ``m``-th
    chunk right of it (GPU sets ``(i, j, k, l)`` swap between ``(j, k)``
    and ``(i, l)``, Section 5.4).  Pair ``m`` exchanges
    ``clamp(pivot - m * chunk, 0, chunk)`` keys: the innermost pair is
    consumed first (a whole-chunk swap once the pivot exceeds one chunk,
    like C1/C2 in Figure 9), outer pairs move the remainder (the
    pivot-determined blocks of C0 and C3).
    """
    if pivot < 0 or pivot > chunk * pairs:
        raise SortError(
            f"pivot {pivot} out of range for {pairs} pairs of {chunk}")
    return tuple(min(max(pivot - m * chunk, 0), chunk)
                 for m in range(pairs))
