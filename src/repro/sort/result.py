"""Result records of the sorting algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class SortResult:
    """Outcome of one simulated multi-GPU sort run.

    ``duration`` and ``phase_durations`` are simulated seconds; the
    phase breakdown follows the paper's convention (a phase ends when
    the last GPU completes it, Section 6.1).  ``logical_keys`` is the
    number of keys the run *represents* (physical keys times the
    machine scale).
    """

    algorithm: str
    system: str
    gpu_ids: Tuple[int, ...]
    physical_keys: int
    logical_keys: float
    dtype: str
    duration: float
    phase_durations: Dict[str, float] = field(default_factory=dict)
    #: Logical bytes moved over P2P links in the merge phase (P2P sort).
    p2p_bytes: float = 0.0
    #: Number of merge stages executed (P2P sort).
    merge_stages: int = 0
    #: Pivot chosen at every merge-stage execution (P2P sort), in
    #: completion order; zero pivots mean the swap was skipped entirely
    #: (the leftmost-pivot optimization, Section 5.2).
    pivots: Tuple[int, ...] = ()
    #: Number of chunk groups processed (HET sort).
    chunk_groups: int = 0
    #: Sorted output (physical payload); ``None`` for timing-only runs.
    output: Optional[np.ndarray] = None
    #: Payload values reordered alongside the keys (key-value sorts).
    output_values: Optional[np.ndarray] = None
    #: Whether the run was touched by faults or recovery work at all:
    #: excluded GPUs, retried/re-routed/timed-out copies, or any fault
    #: window overlapping the run.
    degraded: bool = False
    #: Copy attempts resubmitted after transient failures/timeouts.
    retries: int = 0
    #: Copies routed around a down link.
    reroutes: int = 0
    #: Per-copy watchdog expirations.
    timeouts: int = 0
    #: Simulated seconds of the run with at least one fault window open
    #: (union, not sum, of overlapping windows).
    fault_downtime: float = 0.0
    #: GPUs dropped from the requested set (failed or straggling past
    #: the policy's exclusion factor).
    excluded_gpus: Tuple[int, ...] = ()
    #: Hierarchical sorts only: cluster nodes dropped from the run
    #: (dead at planning time or lost mid-run and re-planned around).
    excluded_nodes: Tuple[int, ...] = ()
    #: Hierarchical sorts only: exchange waves re-executed after a
    #: transient wave failure or a node-loss repair pass.
    waves_replayed: int = 0
    #: Supervised sorts only: times the supervisor re-planned the run
    #: after a mid-phase device/transfer failure.
    replans: int = 0
    #: Supervised sorts only: phase checkpoints written during the run.
    checkpoints: int = 0
    #: Supervised sorts only: checkpoints restored while re-planning
    #: (host-staged chunk copies reused instead of re-fetching).
    checkpoints_restored: int = 0
    #: Supervised sorts only: speculative backup executions launched
    #: for straggling phase tasks.
    speculations: int = 0
    #: Supervised sorts only: speculative backups that beat the
    #: original straggler (the loser was cancelled).
    speculative_wins: int = 0
    #: Supervised sorts only: ``True`` when the sort's deadline budget
    #: expired and the run was cancelled mid-phase.  The result is then
    #: *partial*: ``output`` is ``None`` and ``completed_phases`` lists
    #: how far the run got.
    deadline_exceeded: bool = False
    #: Supervised sorts only: names of the phases that fully completed
    #: (checkpointed), in execution order.
    completed_phases: Tuple[str, ...] = ()

    @property
    def keys_per_second(self) -> float:
        """Logical sorting throughput."""
        return self.logical_keys / self.duration if self.duration else 0.0

    def phase_fraction(self, phase: str) -> float:
        """Share of the total duration one phase accounts for."""
        if not self.duration:
            return 0.0
        return self.phase_durations.get(phase, 0.0) / self.duration

    def summary(self) -> str:
        """One-line human-readable summary."""
        phases = ", ".join(f"{name}={seconds:.3f}s"
                           for name, seconds in self.phase_durations.items())
        line = (f"{self.algorithm} on {self.system} GPUs{self.gpu_ids}: "
                f"{self.logical_keys / 1e9:.2f}B keys in "
                f"{self.duration:.3f}s ({phases})")
        if self.degraded:
            line += (f" [degraded: retries={self.retries} "
                     f"reroutes={self.reroutes} "
                     f"downtime={self.fault_downtime:.3f}s"
                     + (f" excluded={self.excluded_gpus}"
                        if self.excluded_gpus else "")
                     + (f" excluded_nodes={self.excluded_nodes}"
                        if self.excluded_nodes else "")
                     + (f" replans={self.replans}"
                        if self.replans else "")
                     + (f" waves_replayed={self.waves_replayed}"
                        if self.waves_replayed else "")
                     + (f" speculative_wins={self.speculative_wins}"
                        if self.speculative_wins else "") + "]")
        if self.deadline_exceeded:
            line += (f" [DEADLINE EXCEEDED after "
                     f"{'/'.join(self.completed_phases) or 'no'} "
                     "completed phase(s); partial result]")
        return line
