"""Multi-GPU sorting algorithms: the paper's primary contribution.

* :func:`repro.sort.p2p.p2p_sort` — GPU-only sort-merge with P2P block
  swaps (builds on Tanasic et al., extended to any ``g = 2^k`` GPUs),
* :func:`repro.sort.het.het_sort` — heterogeneous GPU-sort / CPU-merge
  for in-core and out-of-core data (2n/3n pipelining, optional eager
  merging),
* :mod:`repro.sort.pivot` — leftmost pivot selection (Algorithm 1),
* :mod:`repro.sort.gpu_set` — GPU set selection and ordering (5.4).
"""

from repro.sort.advisor import Plan, Recommendation, recommend
from repro.sort.het import HetConfig, het_sort
from repro.sort.hier import HierConfig, hier_sort
from repro.sort.p2p import P2PConfig, p2p_sort
from repro.sort.pivot import select_pivot, select_pivot_paper
from repro.sort.gpu_set import best_gpu_order_for_p2p, preferred_gpu_ids
from repro.sort.radix_partition import RPConfig, rp_sort
from repro.sort.result import SortResult

__all__ = [
    "HetConfig",
    "HierConfig",
    "Plan",
    "Recommendation",
    "P2PConfig",
    "RPConfig",
    "SortResult",
    "best_gpu_order_for_p2p",
    "het_sort",
    "hier_sort",
    "p2p_sort",
    "preferred_gpu_ids",
    "recommend",
    "rp_sort",
    "select_pivot",
    "select_pivot_paper",
]
