"""NUMA-aware input placement (Section 7, implemented).

The paper stores all input in NUMA node 0's memory and observes that
this makes involving the AC922's remote GPUs infeasible: every copy to
GPUs 2/3 crosses the X-Bus.  Its discussion notes the conditional —
*"if the input data resides in the host memory of a single NUMA
node"*.  This module implements the other branch: stage each GPU's
chunk in the host memory of the GPU's *own* NUMA node, so every
CPU-GPU copy is node-local.

Two accounting modes:

* ``charge_redistribution=True`` (default) — the input genuinely sits
  on node 0 first; moving the remote GPUs' chunks to node 1 is paid as
  host-to-host flows over the CPU interconnect (phase
  ``Redistribute``).  This answers: is it worth shuffling first?
* ``charge_redistribution=False`` — the data was *loaded* NUMA-spread
  to begin with (e.g. a partitioned table); only the placement benefit
  shows.  This answers: what should a NUMA-aware database do?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.runtime.buffer import HostBuffer
from repro.runtime.context import Machine
from repro.runtime.memcpy import copy_async, span

#: Input placement strategies.
NODE0 = "node0"
NUMA_LOCAL = "numa-local"


@dataclass
class PlacedChunk:
    """One GPU's chunk staged on a chosen NUMA node."""

    gpu_id: int
    staging: HostBuffer
    #: Range of the original input this chunk covers.
    src_start: int
    src_stop: int


def place_chunks(machine: Machine, host_in: HostBuffer,
                 gpu_ids: Sequence[int],
                 ranges: Sequence[Tuple[int, int]],
                 placement: str = NODE0) -> List[PlacedChunk]:
    """Stage per-GPU input chunks according to ``placement``.

    ``ranges`` gives each GPU's ``(start, stop)`` slice of the input.
    With ``node0`` every chunk is a view of the original buffer; with
    ``numa-local`` each chunk gets a staging buffer on its GPU's NUMA
    node (copy the payload now, charge the transfer separately via
    :func:`redistribute`).
    """
    chunks: List[PlacedChunk] = []
    for gpu_id, (start, stop) in zip(gpu_ids, ranges):
        if placement == NUMA_LOCAL:
            numa = machine.spec.gpu_numa[machine.spec.gpu_name(gpu_id)]
            staging = machine.host_buffer(
                host_in.data[start:stop].copy(), numa=numa,
                pinned=host_in.pinned)
        else:
            staging = HostBuffer(host_in.data[start:stop],
                                 numa=host_in.numa, pinned=host_in.pinned)
        chunks.append(PlacedChunk(gpu_id=gpu_id, staging=staging,
                                  src_start=start, src_stop=stop))
    return chunks


def redistribute(machine: Machine, host_in: HostBuffer,
                 chunks: Sequence[PlacedChunk],
                 phase: str = "Redistribute"):
    """Process: charge the host-to-host moves of off-node chunks.

    Chunks staged on the input's own node cost nothing; the others pay
    one concurrent host-to-host flow each over the CPU interconnect.
    """
    env = machine.env
    procs = []
    for chunk in chunks:
        if chunk.staging.numa == host_in.numa:
            continue
        source = HostBuffer(host_in.data[chunk.src_start:chunk.src_stop],
                            numa=host_in.numa, pinned=host_in.pinned)
        procs.append(env.process(copy_async(
            machine, span(chunk.staging), span(source), phase=phase)))
    if procs:
        yield env.all_of(procs)
    return None


def output_buffer_for(machine: Machine, gpu_id: int, size: int, dtype,
                      placement: str, default_numa: int) -> HostBuffer:
    """Host buffer for one GPU's output slice under ``placement``."""
    if placement == NUMA_LOCAL:
        numa = machine.spec.gpu_numa[machine.spec.gpu_name(gpu_id)]
    else:
        numa = default_numa
    return machine.host_buffer(np.empty(size, dtype=dtype), numa=numa)
