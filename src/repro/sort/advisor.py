"""Algorithm advisor: let the calibrated model pick the configuration.

The paper's practical upshot is that the right algorithm depends on the
machine: P2P sort on NVSwitch boxes, HET sort beyond the combined GPU
memory, GPU order and placement mattering on NUMA-split topologies.
This module automates that judgement — the payoff of having a
calibrated model is that candidate plans can be *priced* in
milliseconds of host time before touching real data.

>>> from repro.hw import dgx_a100
>>> from repro.sort.advisor import recommend
>>> plan = recommend(dgx_a100(), n_keys=2_000_000_000)
>>> plan.algorithm in ("p2p", "rp")
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.data import generate
from repro.errors import SortError
from repro.hw.systems import SystemSpec
from repro.runtime.context import Machine
from repro.sort.gpu_set import best_gpu_order_for_p2p
from repro.sort.het import HetConfig, het_sort
from repro.sort.p2p import P2PConfig, p2p_sort
from repro.sort.radix_partition import RPConfig, rp_sort

#: Physical keys per probe run.
_PROBE_KEYS = 100_000


@dataclass(frozen=True)
class Plan:
    """One priced execution plan."""

    algorithm: str
    gpu_ids: Tuple[int, ...]
    predicted_seconds: float
    config: object
    notes: str = ""

    def describe(self) -> str:
        """One line for humans."""
        return (f"{self.algorithm} on GPUs {self.gpu_ids}: "
                f"{self.predicted_seconds:.3f} s predicted"
                + (f" ({self.notes})" if self.notes else ""))


@dataclass
class Recommendation:
    """The winner plus every candidate considered."""

    best: Plan
    candidates: List[Plan] = field(default_factory=list)

    @property
    def algorithm(self) -> str:
        return self.best.algorithm

    @property
    def gpu_ids(self) -> Tuple[int, ...]:
        return self.best.gpu_ids

    @property
    def predicted_seconds(self) -> float:
        return self.best.predicted_seconds

    def table(self) -> str:
        """All candidates, best first."""
        ordered = sorted(self.candidates,
                         key=lambda plan: plan.predicted_seconds)
        return "\n".join(plan.describe() for plan in ordered)


def _probe(spec_factory: Callable[[], SystemSpec], scale: float,
           sorter, keys: np.ndarray, **kwargs) -> Optional[float]:
    machine = Machine(spec_factory(), scale=scale, fast_functional=True)
    try:
        return sorter(machine, keys, **kwargs).duration
    except SortError:
        return None


def recommend(spec: SystemSpec, n_keys: float, dtype=np.int32,
              distribution: str = "uniform",
              numa_local_input: bool = False,
              seed: int = 7) -> Recommendation:
    """Pick the fastest plan for sorting ``n_keys`` keys on ``spec``.

    Every applicable candidate — P2P sort (with the GPU-order
    optimizer, and multi-hop routing where relays exist), HET sort
    (with GPU-merged groups out of core), and RP sort — is simulated at
    scale and ranked.  ``numa_local_input=True`` prices the NUMA-local
    placement variants as well (for inputs already partitioned across
    nodes, no redistribution charge).

    The recommendation carries the exact ``config`` object to pass back
    into the corresponding sort function.
    """
    dtype = np.dtype(dtype)
    if n_keys < 1:
        raise SortError(f"n_keys must be >= 1, got {n_keys}")
    physical = int(min(_PROBE_KEYS, n_keys))
    scale = max(1.0, float(n_keys) / physical)
    keys = generate(physical, distribution, dtype, seed=seed)
    spec_name = spec.name

    from repro.hw import system_by_name

    def factory() -> SystemSpec:
        try:
            return system_by_name(spec_name)
        except Exception:
            return spec

    candidates: List[Plan] = []

    # GPU counts to consider: powers of two up to the machine, plus the
    # full machine for the algorithms that allow any count.
    counts = []
    count = 1
    while count <= spec.num_gpus:
        counts.append(count)
        count *= 2
    if spec.num_gpus not in counts:
        counts.append(spec.num_gpus)

    for gpus in counts:
        ids = spec.preferred_gpu_set(gpus)
        placements = [("node0", False)]
        if numa_local_input:
            placements.append(("numa-local", False))
        # P2P sort (power-of-two counts only), with the order optimizer.
        if gpus > 1 and not (gpus & (gpus - 1)):
            ordered = best_gpu_order_for_p2p(spec, ids)
            for placement, charge in placements:
                for multihop in (False, True):
                    config = P2PConfig(multihop=multihop,
                                       input_placement=placement,
                                       charge_redistribution=charge)
                    seconds = _probe(factory, scale, p2p_sort, keys,
                                     gpu_ids=ordered, config=config)
                    if seconds is None:
                        continue
                    notes = []
                    if ordered != ids:
                        notes.append("reordered")
                    if multihop:
                        notes.append("multihop")
                    if placement != "node0":
                        notes.append(placement)
                    candidates.append(Plan("p2p", ordered, seconds, config,
                                           ", ".join(notes)))
        # RP sort: any GPU count.
        if gpus > 1:
            seconds = _probe(factory, scale, rp_sort, keys, gpu_ids=ids,
                             config=RPConfig())
            if seconds is not None:
                candidates.append(Plan("rp", ids, seconds, RPConfig()))
        # HET sort: always applicable (also the single-GPU baseline).
        for gpu_merge in ((False, True) if gpus > 1
                          and not (gpus & (gpus - 1)) else (False,)):
            config = HetConfig(gpu_merge_groups=gpu_merge)
            seconds = _probe(factory, scale, het_sort, keys, gpu_ids=ids,
                             config=config)
            if seconds is not None:
                candidates.append(Plan(
                    "het", ids, seconds, config,
                    "gpu-merged groups" if gpu_merge else ""))

    if not candidates:
        raise SortError(
            f"no algorithm can sort {n_keys:.3g} keys on {spec.name}")
    best = min(candidates, key=lambda plan: plan.predicted_seconds)
    return Recommendation(best=best, candidates=candidates)
