"""Pivot selection for the P2P merge (Section 5.2, Algorithm 1).

Given two sorted arrays ``A`` and ``B`` of equal length ``n``, a pivot
``p`` determines the block swap of the P2P merge: the last ``p`` keys
of ``A`` are exchanged with the first ``p`` keys of ``B``, after which
every key on the ``A`` side is <= every key on the ``B`` side.

``p`` is *valid* iff

* ``A[n-p-1] <= B[p]``  (unless ``p == n``) — the kept prefix of ``A``
  precedes the kept suffix of ``B``, and
* ``B[p-1] <= A[n-p]``  (unless ``p == 0``) — the moved prefix of ``B``
  precedes the moved suffix of ``A``.

The set of valid pivots is a contiguous interval (the first condition
is monotone in ``p``, the second anti-monotone); with duplicate keys it
can contain many values.  :func:`select_pivot` returns the *leftmost*
valid pivot — the paper's optimization that minimizes the number of
keys transferred over the P2P interconnects, and skips the swap
entirely when the pivot is zero (already-ordered inputs).

:func:`select_pivot_paper` transcribes the paper's Algorithm 1
literally for comparison; the tests check both return valid pivots and
that :func:`select_pivot` is minimal.

Both functions only *read* ``O(log n)`` elements — on real hardware
these are P2P remote memory reads; the sort charges a per-probe
latency for them (Section 5.2 measures pivot selection at 0.03% of the
total execution time).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SortError


def _check(a: Sequence, b: Sequence) -> int:
    n = len(a)
    if len(b) != n:
        raise SortError(
            f"pivot selection requires equally sized arrays, got "
            f"{n} and {len(b)}")
    if n == 0:
        raise SortError("pivot selection requires non-empty arrays")
    return n


def is_valid_pivot(a: Sequence, b: Sequence, p: int) -> bool:
    """Whether swapping the last ``p`` of ``a`` with the first ``p`` of
    ``b`` yields the two-sided partition described above."""
    n = _check(a, b)
    if not 0 <= p <= n:
        return False
    if p < n and not a[n - p - 1] <= b[p]:
        return False
    if p > 0 and not b[p - 1] <= a[n - p]:
        return False
    return True


def select_pivot(a: Sequence, b: Sequence) -> int:
    """The leftmost (minimal) valid pivot for sorted ``a`` and ``b``.

    Binary search over the monotone first validity condition; ``O(log
    n)`` element reads.
    """
    n = _check(a, b)
    # Find the minimal p with A[n-p-1] <= B[p] (true for p = n by
    # convention, monotone increasing in p).
    lo, hi = 0, n
    while lo < hi:
        mid = (lo + hi) // 2
        if mid == n or a[n - mid - 1] <= b[mid]:
            hi = mid
        else:
            lo = mid + 1
    pivot = lo
    # The leftmost pivot satisfying condition 1 must satisfy condition 2
    # as well — a valid pivot always exists, and validity is an interval.
    if not is_valid_pivot(a, b, pivot):  # pragma: no cover - invariant
        raise SortError(
            f"internal error: leftmost pivot {pivot} is not valid")
    return pivot


def select_pivot_paper(a: Sequence, b: Sequence) -> int:
    """Literal transcription of the paper's Algorithm 1.

    Kept for comparison with :func:`select_pivot`; returns a valid
    pivot for the inputs exercised in our tests, though not always the
    leftmost one under heavy duplication.
    """
    n = _check(a, b)
    low, high = 0, n
    while low < high:
        mid = high - (high - low) // 2
        if a[len(a) - mid] <= b[mid - 1]:
            high = mid - 1
        else:
            low = mid
    return low
