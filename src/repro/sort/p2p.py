"""P2P sort: GPU-only multi-GPU sorting (Section 5.2).

The algorithm of Tanasic et al., extended to any ``g = 2^k`` GPUs
(Algorithm 2):

1. partition the input into ``g`` equal chunks, copy one to each GPU,
2. sort every chunk locally (fastest single-GPU primitive, Table 2),
3. merge the chunks into the globally sorted order through a series of
   merge stages: recursively merge each half, run the global
   pivot-swap-merge step across the halves, then recursively merge the
   halves again,
4. copy the chunks back to the host.

Implementation notes carried over from the paper:

* leftmost-pivot selection minimizes (and can entirely skip) P2P
  traffic,
* swaps are out-of-place into the sort's auxiliary buffer, overlapping
  the inbound P2P stream with a device-local copy of the kept block,
* the GPU *order* matters on partially-connected topologies
  (Section 5.4) — pass an explicitly ordered ``gpu_ids`` or let
  :func:`repro.sort.gpu_set.best_gpu_order_for_p2p` pick.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import SortError
from repro.faults.policy import ResiliencePolicy
from repro.runtime.buffer import DeviceBuffer, HostBuffer, default_pool
from repro.runtime.context import Machine
from repro.runtime.kernels import sort_on_device
from repro.runtime.memcpy import copy_async, span
from repro.sort.gpu_set import surviving_gpu_ids
from repro.sort.pivot import is_valid_pivot, select_pivot, select_pivot_paper
from repro.sort.result import SortResult
from repro.sort.swap import block_swap_sizes, swap_and_merge_pair
from repro.units import US


@dataclass
class P2PConfig:
    """Tunables of the P2P sort (defaults follow the paper)."""

    #: Single-GPU sort primitive (Table 2; ``thrust`` is the fastest).
    primitive: str = "thrust"
    #: Use the leftmost valid pivot (skips empty swaps).  ``False``
    #: falls back to the paper's literal Algorithm 1 for the ablation.
    leftmost_pivot: bool = True
    #: Overlap the P2P streams with device-local copies (out-of-place
    #: swap).  ``False`` serializes the two P2P copy directions — the
    #: ablation for the Section 5.2 claim that the optimization holds.
    out_of_place_swap: bool = True
    #: Route host-staged P2P swaps through relay GPUs when a faster
    #: all-NVLink path exists (Section 7 future work, implemented here;
    #: see :mod:`repro.runtime.multihop`).
    multihop: bool = False
    #: Where the input chunks are staged: ``"node0"`` (the paper's
    #: setup — everything in NUMA node 0) or ``"numa-local"`` (each
    #: GPU's chunk on its own node; see :mod:`repro.sort.placement`).
    input_placement: str = "node0"
    #: With ``numa-local`` placement, charge the one-time host-to-host
    #: shuffle that moves remote chunks across the CPU interconnect.
    charge_redistribution: bool = True
    #: Latency of one remote P2P memory read during pivot selection.
    pivot_probe_latency_s: float = 2 * US


@dataclass
class _Stats:
    p2p_bytes: float = 0.0
    stages: int = 0
    pivots: List[int] = field(default_factory=list)


class _Chunk:
    """One GPU's chunk: primary/auxiliary key buffers, optional payloads."""

    def __init__(self, device, primary: DeviceBuffer, aux: DeviceBuffer,
                 value_primary: Optional[DeviceBuffer] = None,
                 value_aux: Optional[DeviceBuffer] = None):
        self.device = device
        self.primary = primary
        self.aux = aux
        self.value_primary = value_primary
        self.value_aux = value_aux

    @property
    def size(self) -> int:
        return self.primary.capacity

    @property
    def has_values(self) -> bool:
        return self.value_primary is not None

    def flip_buffers(self) -> None:
        """Swap primary and auxiliary roles (after an out-of-place swap)."""
        self.primary, self.aux = self.aux, self.primary
        if self.has_values:
            self.value_primary, self.value_aux = (self.value_aux,
                                                  self.value_primary)

    def all_buffers(self):
        """Every allocated buffer (for freeing)."""
        buffers = [self.primary, self.aux]
        if self.has_values:
            buffers += [self.value_primary, self.value_aux]
        return buffers


class _ConcatView:
    """Read-only view of several equal chunks as one sorted array.

    Pivot selection reads single elements across the chunk group; on
    real hardware those are remote P2P reads.
    """

    def __init__(self, chunks: Sequence[_Chunk]):
        self.chunks = list(chunks)
        self.chunk_size = chunks[0].size

    def __len__(self) -> int:
        return self.chunk_size * len(self.chunks)

    def __getitem__(self, index: int):
        chunk, offset = divmod(index, self.chunk_size)
        return self.chunks[chunk].primary.data[offset]


def _pivot_for(config: P2PConfig, left: _ConcatView, right: _ConcatView) -> int:
    if config.leftmost_pivot:
        return select_pivot(left, right)
    pivot = select_pivot_paper(left, right)
    if not is_valid_pivot(left, right, pivot):
        # Algorithm 1 as printed can miss under heavy duplication; fall
        # back to the verified leftmost pivot (documented deviation).
        pivot = select_pivot(left, right)
    return pivot


def _no_check() -> None:
    """Default ``check``: unsupervised runs have no failure to stop on."""


def _serialized_swap(machine: Machine, left: _Chunk, right: _Chunk,
                     pivot: int, spawn=None, check=None):
    """In-place-style swap for the ablation: staged, serialized copies."""
    from repro.runtime.kernels import merge_two_on_device

    if spawn is None:
        spawn = machine.env.process
    if check is None:
        check = _no_check
    n = left.size
    keep_left = n - pivot
    if pivot == 0:
        return 0.0
    # Stage left's tail in left's aux, then the two P2P legs one after
    # the other (no bidirectional overlap), then merge.
    legs = [(left.aux, left.primary, right.primary)]
    bytes_moved = 2.0 * pivot * left.primary.dtype.itemsize * machine.scale
    if left.has_values:
        legs.append((left.value_aux, left.value_primary,
                     right.value_primary))
        bytes_moved += (2.0 * pivot * left.value_primary.dtype.itemsize
                        * machine.scale)
    for aux, left_buf, right_buf in legs:
        yield from copy_async(machine, span(aux, 0, pivot),
                              span(left_buf, keep_left, n), phase="Merge")
        yield from copy_async(machine, span(left_buf, keep_left, n),
                              span(right_buf, 0, pivot), phase="Merge")
        yield from copy_async(machine, span(right_buf, 0, pivot),
                              span(aux, 0, pivot), phase="Merge")
    if pivot < n:
        env = machine.env
        merges = [
            spawn(merge_two_on_device(
                machine, span(left.primary, 0, n), keep_left, phase="Merge",
                values=span(left.value_primary, 0, n)
                if left.has_values else None)),
            spawn(merge_two_on_device(
                machine, span(right.primary, 0, n), pivot, phase="Merge",
                values=span(right.value_primary, 0, n)
                if right.has_values else None)),
        ]
        yield env.all_of(merges)
        check()
    return bytes_moved


def _merge_chunks(machine: Machine, chunks: List[_Chunk],
                  config: P2PConfig, stats: _Stats, spawn=None, check=None):
    """Algorithm 2: recursive merge of ``len(chunks)`` sorted chunks.

    ``spawn``/``check`` thread the supervision seam down the recursion
    and into the swaps (see :func:`repro.sort.swap.swap_and_merge_pair`);
    unset, the merge runs exactly as before supervision existed.
    """
    g = len(chunks)
    if g < 2:
        return
    env = machine.env
    if spawn is None:
        spawn = env.process
    if check is None:
        check = _no_check
    half = g // 2
    left_chunks, right_chunks = chunks[:half], chunks[half:]

    if g > 2:
        pre = [spawn(_merge_chunks(machine, left_chunks, config, stats,
                                   spawn, check)),
               spawn(_merge_chunks(machine, right_chunks, config, stats,
                                   spawn, check))]
        yield env.all_of(pre)
        check()

    left = _ConcatView(left_chunks)
    right = _ConcatView(right_chunks)
    # O(log n) remote reads for the binary search (Section 5.2: ~0.03%
    # of total time; we charge two probes per bisection step).
    probes = 2 * max(1, math.ceil(math.log2(len(left) + 1)))
    yield env.timeout(probes * config.pivot_probe_latency_s)
    check()
    pivot = _pivot_for(config, left, right)
    stats.pivots.append(pivot)

    if pivot > 0:
        chunk_size = chunks[0].size
        sizes = block_swap_sizes(pivot, chunk_size, half)
        swaps = []
        for m, size in enumerate(sizes):
            if size == 0:
                continue
            pair_left = chunks[half - 1 - m]
            pair_right = chunks[half + m]
            if config.out_of_place_swap:
                op = swap_and_merge_pair(machine, pair_left, pair_right,
                                         size, multihop=config.multihop,
                                         spawn=spawn, check=check)
            else:
                op = _serialized_swap(machine, pair_left, pair_right, size,
                                      spawn=spawn, check=check)
            swaps.append(spawn(op))
        if swaps:
            done = yield env.all_of(swaps)
            check()
            # Shielded swap tasks resolve to ``None`` when they failed
            # mid-flight; their bytes never fully moved.
            stats.p2p_bytes += sum(v for v in done.values() if v)

    if g > 2:
        post = [spawn(_merge_chunks(machine, left_chunks, config, stats,
                                    spawn, check)),
                spawn(_merge_chunks(machine, right_chunks, config, stats,
                                    spawn, check))]
        yield env.all_of(post)
        check()


def _pad_value(dtype: np.dtype):
    if dtype.kind == "f":
        return np.finfo(dtype).max
    return np.iinfo(dtype).max


def p2p_sort(machine: Machine, data: Union[np.ndarray, HostBuffer],
             gpu_ids: Optional[Sequence[int]] = None,
             config: Optional[P2PConfig] = None,
             values: Optional[np.ndarray] = None,
             resilience: Optional[ResiliencePolicy] = None) -> SortResult:
    """Sort ``data`` across GPUs with the P2P algorithm; returns the result.

    ``data`` may be a NumPy array (wrapped as a pinned buffer on NUMA
    node 0, the paper's setup) or an existing :class:`HostBuffer`.
    ``gpu_ids`` is an *ordered* GPU set of power-of-two size; it
    defaults to the platform's paper-faithful choice.  The input is not
    modified; the sorted keys are in ``result.output``.

    Pass ``values`` (one payload per key) to sort records: payloads
    travel with their keys through every copy, swap and merge —
    doubling or tripling the transfer volume depending on the payload
    width — and come back in ``result.output_values``.

    ``resilience`` overrides the machine's policy for this run.  On a
    machine with an installed fault plan, failed or badly straggling
    GPUs are dropped and the chunks re-planned over the largest
    power-of-two prefix of the survivors; recovery work (retries,
    re-routes, downtime) is reported on the result.
    """
    config = config or P2PConfig()
    if resilience is not None:
        machine.resilience = resilience
    if isinstance(data, HostBuffer):
        host_in = data
    else:
        host_in = machine.host_buffer(np.asarray(data))
    n = len(host_in.data)
    if n == 0:
        raise SortError("cannot sort an empty array")
    host_values = None
    if values is not None:
        values = np.asarray(values)
        if len(values) != n:
            raise SortError(
                f"{len(values)} values for {n} keys")
        host_values = machine.host_buffer(values, numa=host_in.numa,
                                          pinned=host_in.pinned)

    ids = tuple(gpu_ids) if gpu_ids is not None else None
    if ids is None:
        count = min(machine.num_gpus, 1 << int(math.log2(machine.num_gpus)))
        ids = machine.spec.preferred_gpu_set(count)
    excluded = ()
    if machine.faults is not None:
        survivors, excluded = surviving_gpu_ids(machine, ids)
        if not survivors:
            raise SortError(
                f"no healthy GPUs left in {ids}: all failed or "
                "straggling past the exclusion factor")
        if excluded:
            # Re-plan over the largest power-of-two prefix of the
            # survivors (the merge needs 2^k chunks; order preserved).
            keep = 1 << int(math.log2(len(survivors)))
            ids = tuple(survivors[:keep])
    g = len(ids)
    if g & (g - 1):
        raise SortError(f"P2P sort needs a power-of-two GPU count, got {g}")
    if len(set(ids)) != g:
        raise SortError(f"duplicate GPU ids in {ids}")

    dtype = host_in.dtype
    chunk = -(-n // g)
    padded = chunk * g
    itemsize = dtype.itemsize
    value_itemsize = host_values.dtype.itemsize if host_values else 0
    for gpu_id in ids:
        need = 2 * chunk * (itemsize + value_itemsize) * machine.scale
        device = machine.device(gpu_id)
        if need > device.capacity_logical:
            raise SortError(
                f"{device.name}: chunk of {chunk} keys needs "
                f"{need / 1e9:.1f} GB (primary + auxiliary buffer), "
                f"exceeding {device.capacity_logical / 1e9:.1f} GB; "
                "use HET sort for out-of-core data")

    staging = host_in
    value_staging = host_values
    pad_record = None
    # Padded staging arrays are pure scratch — dead once the HtoD copies
    # have run — so they come from the workspace pool instead of fresh
    # allocations and go back after the run.
    borrowed: List[np.ndarray] = []
    if padded != n:
        padded_data = default_pool.take(padded, dtype)
        borrowed.append(padded_data)
        padded_data[:n] = host_in.data
        if host_values is None:
            # Key-only padding: dtype-max sentinels sort to the tail.
            padded_data[n:] = _pad_value(dtype)
        else:
            # Key-value padding duplicates a real maximal record so the
            # pads are indistinguishable from (and interchangeable
            # with) a genuine record; the extras are dropped after the
            # sort without disturbing any real payload.
            pad_index = int(np.argmax(host_in.data))
            pad_record = (host_in.data[pad_index],
                          host_values.data[pad_index])
            padded_data[n:] = pad_record[0]
            padded_values = default_pool.take(padded, host_values.dtype)
            borrowed.append(padded_values)
            padded_values[:n] = host_values.data
            padded_values[n:] = pad_record[1]
            value_staging = machine.host_buffer(
                padded_values, numa=host_in.numa, pinned=host_in.pinned)
        staging = machine.host_buffer(padded_data, numa=host_in.numa,
                                      pinned=host_in.pinned)
    host_out = machine.host_buffer(np.empty(padded, dtype=dtype),
                                   numa=staging.numa, pinned=staging.pinned)
    values_out = None
    if host_values is not None:
        values_out = machine.host_buffer(
            np.empty(padded, dtype=host_values.dtype),
            numa=staging.numa, pinned=staging.pinned)

    # Input placement (Section 7 / repro.sort.placement): the paper's
    # default keeps everything on node 0; "numa-local" stages each
    # GPU's chunk (and payloads) on the GPU's own node.
    from repro.sort import placement as pl

    if config.input_placement not in (pl.NODE0, pl.NUMA_LOCAL):
        raise SortError(
            f"unknown input_placement {config.input_placement!r}")
    ranges = [(i * chunk, (i + 1) * chunk) for i in range(g)]
    placed = pl.place_chunks(machine, staging, ids, ranges,
                             placement=config.input_placement)
    placed_values = None
    if host_values is not None:
        placed_values = pl.place_chunks(machine, value_staging, ids,
                                        ranges,
                                        placement=config.input_placement)
    out_buffers = [pl.output_buffer_for(machine, gpu_id, chunk, dtype,
                                        config.input_placement,
                                        staging.numa)
                   for gpu_id in ids]
    out_value_buffers = None
    if host_values is not None:
        out_value_buffers = [pl.output_buffer_for(
            machine, gpu_id, chunk, host_values.dtype,
            config.input_placement, staging.numa) for gpu_id in ids]

    stats = _Stats()
    start = machine.env.now
    stats_before = machine.resilience_stats.snapshot()
    # With observability on, bracket the run in a root span: every
    # phase span recorded inside becomes its child, so the timeline
    # nests sort -> phase -> flows.  Off, no span is added and the
    # trace stays bit-identical to the pre-observability engine.
    root_id = None
    if machine.obs is not None:
        root_id = machine.trace.allocate_id()
        machine.trace.push_parent(root_id)

    def run():
        env = machine.env
        if (config.input_placement == pl.NUMA_LOCAL
                and config.charge_redistribution):
            yield from pl.redistribute(machine, staging, placed)
            if placed_values is not None:
                yield from pl.redistribute(machine, value_staging,
                                           placed_values)
        chunks: List[_Chunk] = []
        for gpu_id in ids:
            device = machine.device(gpu_id)
            primary = device.alloc(chunk, dtype, label=f"chunk{gpu_id}")
            aux = device.alloc(chunk, dtype, label=f"aux{gpu_id}")
            value_primary = value_aux = None
            if host_values is not None:
                value_primary = device.alloc(chunk, host_values.dtype,
                                             label=f"vals{gpu_id}")
                value_aux = device.alloc(chunk, host_values.dtype,
                                         label=f"vaux{gpu_id}")
            chunks.append(_Chunk(device, primary, aux,
                                 value_primary, value_aux))

        htod = []
        for i, c in enumerate(chunks):
            htod.append(env.process(copy_async(
                machine, span(c.primary),
                span(placed[i].staging), phase="HtoD")))
            if c.has_values:
                htod.append(env.process(copy_async(
                    machine, span(c.value_primary),
                    span(placed_values[i].staging), phase="HtoD")))
        yield env.all_of(htod)

        sorts = [env.process(sort_on_device(
            machine, span(c.primary), primitive=config.primitive,
            phase="Sort",
            values=span(c.value_primary) if c.has_values else None))
            for c in chunks]
        yield env.all_of(sorts)

        yield from _merge_chunks(machine, chunks, config, stats)

        dtoh = []
        for i, c in enumerate(chunks):
            dtoh.append(env.process(copy_async(
                machine, span(out_buffers[i]),
                span(c.primary), phase="DtoH")))
            if c.has_values:
                dtoh.append(env.process(copy_async(
                    machine, span(out_value_buffers[i]),
                    span(c.value_primary), phase="DtoH")))
        yield env.all_of(dtoh)

        for c in chunks:
            for buffer in c.all_buffers():
                buffer.free()

    try:
        machine.run(run())
    finally:
        if root_id is not None:
            machine.trace.pop_parent()
            machine.trace.record("P2PSort", "sort", start,
                                 bytes=n * itemsize * machine.scale,
                                 id=root_id)
        for array in borrowed:
            default_pool.give(array)
    # Assemble the full output array (with numa-local placement the
    # sorted slices physically live on both nodes; this view is for the
    # caller's convenience and is not charged).
    for i in range(g):
        host_out.data[i * chunk:(i + 1) * chunk] = out_buffers[i].data
        if values_out is not None:
            values_out.data[i * chunk:(i + 1) * chunk] = \
                out_value_buffers[i].data
    duration = machine.env.now - start
    output = host_out.data[:n]
    output_values = values_out.data[:n] if values_out is not None else None
    if pad_record is not None:
        # Drop the duplicated pad records (any copies are equivalent).
        keys_all = host_out.data
        vals_all = values_out.data
        duplicates = np.flatnonzero((keys_all == pad_record[0])
                                    & (vals_all == pad_record[1]))
        keep = np.ones(padded, dtype=bool)
        keep[duplicates[-(padded - n):]] = False
        output = keys_all[keep]
        output_values = vals_all[keep]

    recovery = machine.resilience_stats.delta(stats_before)
    fault_downtime = (machine.faults.downtime_between(start, machine.env.now)
                      if machine.faults is not None else 0.0)
    degraded = bool(excluded or recovery.retries or recovery.reroutes
                    or recovery.timeouts or fault_downtime > 0.0)

    phases = {name: value for name, value in
              machine.trace.phase_durations().items()
              if name in ("Redistribute", "HtoD", "Sort", "Merge", "DtoH")}
    return SortResult(
        algorithm="p2p",
        system=machine.spec.name,
        gpu_ids=ids,
        physical_keys=n,
        logical_keys=n * machine.scale,
        dtype=str(dtype),
        duration=duration,
        phase_durations=phases,
        p2p_bytes=stats.p2p_bytes,
        # Sequential merge-stage depth: pairwise stages surround each
        # higher-level global stage (3 for four GPUs, Figure 9).
        merge_stages=2 * int(math.log2(g)) - 1 if g > 1 else 0,
        pivots=tuple(stats.pivots),
        output=output,
        output_values=output_values,
        degraded=degraded,
        retries=recovery.retries,
        reroutes=recovery.reroutes,
        timeouts=recovery.timeouts,
        fault_downtime=fault_downtime,
        excluded_gpus=excluded,
    )
