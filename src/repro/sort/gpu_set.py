"""GPU set selection and ordering (Section 5.4).

Two decisions precede a multi-GPU sort:

* **Which GPUs** — the set with the best aggregate transfer
  performance.  On the DGX A100, pair (0, 2) beats (0, 1) because
  (0, 1) share one PCIe switch (Section 6 intro).
* **In what order** (P2P sort only) — the order fixes which pairs swap
  in each merge stage: set ``(i, j, k, l)`` merges ``(i, j)`` and
  ``(k, l)`` pairwise and swaps between ``(j, k)`` and ``(i, l)``
  globally.  On the AC922, ``(0, 1, 2, 3)`` beats ``(0, 2, 1, 3)``
  because the pairwise merges then run over NVLink.

:func:`preferred_gpu_ids` returns the paper's choices;
:func:`best_gpu_order_for_p2p` searches orders by a static cost model
over the topology (bottleneck bandwidth of every stage's swap pairs).
Interestingly, on the DELTA topology the search finds the order
``(1, 0, 2, 3)``, whose global-stage pairs (1, 3) and (0, 2) are both
NVLink-connected — an all-NVLink merge phase the paper's default order
``(0, 1, 2, 3)`` misses; ``benchmarks/bench_ablation_gpu_order.py``
quantifies the difference.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.errors import SortError
from repro.hw.systems import SystemSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Machine


def preferred_gpu_ids(spec: SystemSpec, count: int) -> Tuple[int, ...]:
    """The paper-faithful ordered GPU set for ``count`` GPUs."""
    return spec.preferred_gpu_set(count)


def _pair_bandwidth(spec: SystemSpec, a: int, b: int,
                    cache: Dict[Tuple[int, int], float]) -> float:
    """Effective P2P bandwidth between two GPUs (one direction)."""
    key = (min(a, b), max(a, b))
    if key not in cache:
        route = spec.topology.route(spec.gpu_name(a), spec.gpu_name(b))
        bandwidth = route.bottleneck
        if route.host_traversing:
            bandwidth *= spec.p2p_traverse_efficiency
        cache[key] = bandwidth
    return cache[key]


def _stage_pairs(order: Sequence[int]) -> List[List[Tuple[int, int]]]:
    """Swap pairs of every merge-stage level for an ordered GPU set.

    Level ``s`` (block size ``2^(s+1)``) swaps mirrored pairs within
    each block: for a block ``(i, j, k, l)`` the pairs are ``(j, k)``
    and ``(i, l)``.
    """
    g = len(order)
    levels: List[List[Tuple[int, int]]] = []
    size = 2
    while size <= g:
        pairs: List[Tuple[int, int]] = []
        for block in range(0, g, size):
            half = size // 2
            for m in range(half):
                pairs.append((order[block + half - 1 - m],
                              order[block + half + m]))
        levels.append(pairs)
        size *= 2
    return levels


def p2p_order_cost(spec: SystemSpec, order: Sequence[int]) -> float:
    """Static cost of one P2P merge order: expected stage transfer time.

    Per level, each pair swaps (in expectation, for uniform data) half
    a chunk in both directions concurrently; the level's cost is its
    slowest pair.  Lower levels run twice (before and after each global
    stage), which the weighting reflects.
    """
    g = len(order)
    if g & (g - 1) or g < 2:
        raise SortError(f"order must have power-of-two length >= 2, got {g}")
    cache: Dict[Tuple[int, int], float] = {}
    levels = _stage_pairs(order)
    cost = 0.0
    for level, pairs in enumerate(levels):
        slowest = max(1.0 / _pair_bandwidth(spec, a, b, cache)
                      for a, b in pairs)
        # Level 0 (pairwise) executes 2^(k-1) times across the
        # recursion, level k-1 (global) once.
        executions = 2 ** (len(levels) - 1 - level)
        cost += executions * slowest
    return cost


def best_gpu_order_for_p2p(spec: SystemSpec,
                           gpu_ids: Sequence[int]) -> Tuple[int, ...]:
    """The minimum-cost ordering of ``gpu_ids`` for the P2P merge.

    Exhaustive search modulo the symmetries that do not change the swap
    pairs (within-pair order at the lowest level).  Falls back to the
    given order for a single GPU.
    """
    ids = tuple(gpu_ids)
    g = len(ids)
    if g == 1:
        return ids
    if g & (g - 1):
        raise SortError(f"P2P sort needs a power-of-two GPU count, got {g}")
    best_order = ids
    best_cost = p2p_order_cost(spec, ids)
    seen = set()
    for perm in itertools.permutations(ids):
        # Reversing the whole order mirrors every stage's pairs, which
        # are bidirectional anyway — prune that one symmetry.
        if perm[::-1] in seen:
            continue
        seen.add(perm)
        cost = p2p_order_cost(spec, perm)
        if cost < best_cost - 1e-15:
            best_cost = cost
            best_order = perm
    return best_order


def rank_gpu_sets(spec: SystemSpec, count: int) -> List[Tuple[Tuple[int, ...], float]]:
    """All size-``count`` GPU subsets ranked by CPU-GPU transfer cost.

    The cost approximates the parallel-copy phase: every chosen GPU
    copies one chunk, shared hops divide their capacity among the
    routes crossing them.  Lower is better; the first entry is the best
    set.
    """
    if not 1 <= count <= spec.num_gpus:
        raise SortError(
            f"count must be in [1, {spec.num_gpus}], got {count}")
    results = []
    for subset in itertools.combinations(range(spec.num_gpus), count):
        usage: Dict[int, List[float]] = {}
        routes = []
        for gpu_id in subset:
            route = spec.topology.route("cpu0", spec.gpu_name(gpu_id))
            routes.append(route)
            for resource, _direction in route.hops:
                usage.setdefault(id(resource), []).append(
                    resource.raw_capacity(_direction))
        cost = 0.0
        for route in routes:
            per_hop = []
            for resource, direction in route.hops:
                sharers = len(usage[id(resource)])
                per_hop.append(resource.raw_capacity(direction) / sharers)
            cost = max(cost, 1.0 / min(per_hop))
        results.append((subset, cost))
    results.sort(key=lambda item: (item[1], item[0]))
    return results


def best_gpu_set(spec: SystemSpec, count: int,
                 order_for_p2p: bool = False) -> Tuple[int, ...]:
    """Pick (and optionally order) the best ``count``-GPU set."""
    subset = rank_gpu_sets(spec, count)[0][0]
    if order_for_p2p and count > 1 and not (count & (count - 1)):
        return best_gpu_order_for_p2p(spec, subset)
    return subset


def surviving_gpu_ids(
        machine: "Machine",
        gpu_ids: Sequence[int]) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Split an ordered GPU set into ``(survivors, excluded)``.

    A GPU is excluded when the machine's fault injector reports it hard-
    failed, or when its active straggler slowdown is at least the
    resilience policy's ``straggler_exclude_factor`` (a device that slow
    would bottleneck every phase barrier; re-planning the chunks over
    the healthy devices is faster).  Order is preserved — P2P merge
    orders stay meaningful.  On a machine without faults everything
    survives.
    """
    faults = getattr(machine, "faults", None)
    if faults is None:
        return tuple(gpu_ids), ()
    threshold = machine.resilience.straggler_exclude_factor
    failed = faults.failed_gpu_ids()
    excluded = tuple(
        gpu for gpu in gpu_ids
        if gpu in failed or faults.straggler_factor(gpu) >= threshold)
    survivors = tuple(gpu for gpu in gpu_ids if gpu not in excluded)
    return survivors, excluded
