"""Exception hierarchy of the repro library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class TopologyError(ReproError):
    """Raised for invalid topologies or unroutable transfers."""


class AllocationError(ReproError):
    """Raised when a device memory allocation exceeds capacity."""


class RuntimeApiError(ReproError):
    """Raised for misuse of the virtual CUDA runtime API."""


class PoolError(RuntimeApiError):
    """Raised for misuse of a :class:`~repro.runtime.buffer.WorkspacePool`.

    Covers double-releasing a borrowed view and returning a view to a
    pool it was not taken from — both of which would silently corrupt
    the free list (the same base handed out twice) if accepted.
    """


class QuotaExceededError(ReproError):
    """A workspace-pool take would exceed the pool's byte quota.

    Quotas back per-tenant isolation in :mod:`repro.serve`: one
    tenant's oversized job fails with this typed error instead of
    growing the shared host's scratch memory without bound.
    """


class SortError(ReproError):
    """Raised for invalid sorting inputs or configurations."""


class CalibrationError(ReproError):
    """Raised when calibration constants are inconsistent."""


class TransferError(ReproError):
    """Base class for failures of an in-flight copy."""


class TransientTransferError(TransferError):
    """A copy failed in a way that retrying may recover from.

    Raised by the fault injector into flows it kills (link flaps,
    injected per-flow failures); :func:`repro.runtime.memcpy.copy_async`
    retries these with exponential backoff up to the machine's
    :class:`~repro.faults.policy.ResiliencePolicy` limit.
    """


class CopyTimeoutError(TransferError):
    """A copy exceeded the resilience policy's per-copy timeout."""


class DeviceFaultError(ReproError):
    """A GPU failed hard (injected device fault); not retryable."""


class NodeFaultError(DeviceFaultError):
    """A whole cluster node died (injected ``NodeDown``); not retryable.

    Subclasses :class:`DeviceFaultError` so every existing
    non-retryable-failure path (the resilient copy loop, the
    supervisor's replan trigger) treats a node loss exactly like a
    device loss; the hierarchical sort additionally re-shards the dead
    node's input over the survivors.
    """


class DeadlineExceededError(SortError):
    """A supervised sort ran past its deadline budget.

    Raised internally when the :class:`~repro.recovery.SortSupervisor`
    cancels a phase mid-flight; the supervisor converts it into a typed
    partial :class:`~repro.sort.result.SortResult` rather than letting
    it escape to the caller.
    """


class RecoveryError(SortError):
    """A supervised sort could not be re-planned onto the survivors.

    Covers exhausted replan budgets and unrestorable checkpoints; the
    all-GPUs-failed case raises a plain :class:`SortError` (same as the
    unsupervised sorts) so callers can treat both uniformly.
    """


class ServiceError(ReproError):
    """Raised for misuse of the multi-tenant sort service."""


class AdmissionRejected(ServiceError):
    """The sort service refused to admit a job (load shedding).

    ``reason`` is one of the :data:`REASONS` — the service *chooses* to
    reject rather than queue unboundedly, so callers can react per
    reason (back off, shrink the request, try another tenant budget).
    """

    #: The closed set of rejection reasons the service emits.
    REASONS = ("queue-full", "deadline-infeasible", "quota-exceeded",
               "draining")

    def __init__(self, reason: str, message: str):
        if reason not in self.REASONS:
            raise ValueError(f"unknown admission rejection reason "
                             f"{reason!r} (expected one of {self.REASONS})")
        super().__init__(f"[{reason}] {message}")
        self.reason = reason
