"""Exception hierarchy of the repro library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class TopologyError(ReproError):
    """Raised for invalid topologies or unroutable transfers."""


class AllocationError(ReproError):
    """Raised when a device memory allocation exceeds capacity."""


class RuntimeApiError(ReproError):
    """Raised for misuse of the virtual CUDA runtime API."""


class SortError(ReproError):
    """Raised for invalid sorting inputs or configurations."""


class CalibrationError(ReproError):
    """Raised when calibration constants are inconsistent."""
