"""Key distributions of the Section 6.3 experiments.

Figure 16 evaluates five distributions: ``uniform``, ``normal``,
``sorted``, ``reverse-sorted`` and ``nearly-sorted``.  All generators
are deterministic under a seed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import SortError


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform(n: int, dtype=np.int32, seed: Optional[int] = None) -> np.ndarray:
    """Uniformly distributed keys over the full dtype range."""
    dtype = np.dtype(dtype)
    rng = _rng(seed)
    if dtype.kind == "f":
        return (rng.random(n) * 2.0 - 1.0).astype(dtype) * dtype.type(1e6)
    info = np.iinfo(dtype)
    return rng.integers(info.min, info.max, size=n, dtype=dtype,
                        endpoint=True)


def normal(n: int, dtype=np.int32, seed: Optional[int] = None) -> np.ndarray:
    """Normally distributed keys (mean 0, spread 1/8 of the dtype range)."""
    dtype = np.dtype(dtype)
    rng = _rng(seed)
    if dtype.kind == "f":
        return rng.normal(0.0, 1e6, size=n).astype(dtype)
    info = np.iinfo(dtype)
    spread = (float(info.max) - float(info.min)) / 8.0
    values = rng.normal(0.0, spread, size=n)
    return np.clip(values, info.min, info.max).astype(dtype)


def sorted_keys(n: int, dtype=np.int32, seed: Optional[int] = None) -> np.ndarray:
    """Already-sorted uniform keys."""
    values = uniform(n, dtype=dtype, seed=seed)
    values.sort()
    return values


def reverse_sorted(n: int, dtype=np.int32,
                   seed: Optional[int] = None) -> np.ndarray:
    """Descending uniform keys — the P2P-swap worst case (Section 6.3)."""
    return sorted_keys(n, dtype=dtype, seed=seed)[::-1].copy()


def nearly_sorted(n: int, dtype=np.int32, seed: Optional[int] = None,
                  disorder: float = 0.01) -> np.ndarray:
    """Sorted keys with a ``disorder`` fraction of random swaps."""
    if not 0.0 <= disorder <= 1.0:
        raise SortError(f"disorder must be in [0, 1], got {disorder}")
    values = sorted_keys(n, dtype=dtype, seed=seed)
    rng = _rng(None if seed is None else seed + 1)
    swaps = int(n * disorder / 2)
    if swaps:
        left = rng.integers(0, n, size=swaps)
        right = rng.integers(0, n, size=swaps)
        values[left], values[right] = values[right].copy(), values[left].copy()
    return values


def zipf(n: int, dtype=np.int32, seed: Optional[int] = None,
         alpha: float = 1.3, universe: int = 1 << 20) -> np.ndarray:
    """Zipf-skewed keys: few heavy hitters, a long tail.

    Not part of the paper's Figure 16 grid, but the stress case for
    partition-based algorithms (heavy duplication concentrates keys in
    few buckets) and for the leftmost-pivot optimization.
    """
    if alpha <= 1.0:
        raise SortError(f"alpha must be > 1, got {alpha}")
    rng = _rng(seed)
    ranks = rng.zipf(alpha, size=n)
    values = np.minimum(ranks, universe).astype(np.int64)
    if np.dtype(dtype).kind == "f":
        return values.astype(dtype)
    info = np.iinfo(dtype)
    return np.clip(values, info.min, info.max).astype(dtype)


DISTRIBUTIONS: Dict[str, Callable[..., np.ndarray]] = {
    "uniform": uniform,
    "normal": normal,
    "sorted": sorted_keys,
    "reverse-sorted": reverse_sorted,
    "nearly-sorted": nearly_sorted,
    "zipf": zipf,
}


def generate(n: int, distribution: str = "uniform", dtype=np.int32,
             seed: Optional[int] = None) -> np.ndarray:
    """Generate ``n`` keys from a named distribution."""
    try:
        generator = DISTRIBUTIONS[distribution]
    except KeyError:
        known = ", ".join(sorted(DISTRIBUTIONS))
        raise SortError(
            f"unknown distribution {distribution!r} (known: {known})"
        ) from None
    return generator(n, dtype=dtype, seed=seed)
