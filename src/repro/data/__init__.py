"""Workload data generation for the sorting experiments."""

from repro.data.generators import (
    DISTRIBUTIONS,
    generate,
    nearly_sorted,
    normal,
    reverse_sorted,
    sorted_keys,
    uniform,
    zipf,
)
from repro.data.datatypes import KEY_TYPES, key_dtype

__all__ = [
    "DISTRIBUTIONS",
    "KEY_TYPES",
    "generate",
    "key_dtype",
    "nearly_sorted",
    "normal",
    "reverse_sorted",
    "sorted_keys",
    "uniform",
    "zipf",
]
