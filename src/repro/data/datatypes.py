"""Key data types of the Section 6.3 experiments."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import SortError

#: The four key types the paper sorts (Section 6.3): 32- and 64-bit
#: integers and floating-point numbers.
KEY_TYPES: Dict[str, np.dtype] = {
    "int": np.dtype(np.int32),
    "float": np.dtype(np.float32),
    "long": np.dtype(np.int64),
    "double": np.dtype(np.float64),
}


def key_dtype(name: str) -> np.dtype:
    """Resolve a paper-style type name (or NumPy dtype name) to a dtype."""
    if name in KEY_TYPES:
        return KEY_TYPES[name]
    try:
        dtype = np.dtype(name)
    except TypeError:
        raise SortError(f"unknown key type {name!r}") from None
    if dtype.kind not in "iuf":
        raise SortError(f"key type must be numeric, got {dtype}")
    return dtype
