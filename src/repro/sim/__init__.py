"""Discrete-event simulation kernel and flow-level bandwidth model.

This subpackage is the foundation the virtual hardware runs on.  It
provides a small SimPy-style event loop (:mod:`repro.sim.engine`), shared
directional resources with duplex and sharing-efficiency effects
(:mod:`repro.sim.resources`), and a max-min fair flow network that rates
concurrent data transfers (:mod:`repro.sim.flows`).
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.flows import Flow, FlowNetwork
from repro.sim.resources import Direction, Resource, SharingCurve

__all__ = [
    "AllOf",
    "AnyOf",
    "Direction",
    "Environment",
    "Event",
    "Flow",
    "FlowNetwork",
    "Interrupt",
    "Process",
    "Resource",
    "SharingCurve",
    "SimulationError",
    "Timeout",
]
