"""Span-based tracing of simulated activity.

The sorting algorithms annotate their work with named spans ("HtoD",
"Sort", "Merge", "DtoH", ...).  The paper's sort-duration breakdowns
(Figures 12-14, bottom) define a phase to end *when the last GPU
completes it*; :meth:`Trace.phase_durations` implements exactly that
reduction over the recorded spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.engine import Environment


@dataclass(frozen=True)
class Span:
    """One completed activity interval on one actor."""

    phase: str
    actor: str
    start: float
    end: float
    bytes: float = 0.0

    @property
    def duration(self) -> float:
        """Length of the span in simulated seconds."""
        return self.end - self.start


class Trace:
    """Collects :class:`Span` records during a simulation run."""

    def __init__(self, env: Environment):
        self.env = env
        self.spans: List[Span] = []

    def record(self, phase: str, actor: str, start: float,
               end: Optional[float] = None, bytes: float = 0.0) -> Span:
        """Append a completed span (``end`` defaults to *now*)."""
        if end is None:
            end = self.env.now
        if end < start:
            raise ValueError(f"span ends before it starts: {start} > {end}")
        span = Span(phase=phase, actor=actor, start=start, end=end, bytes=bytes)
        self.spans.append(span)
        return span

    def span(self, phase: str, actor: str, bytes: float = 0.0):
        """Context manager recording a span around a ``with`` block.

        Only meaningful inside process code that advances simulated time
        via ``yield`` *outside* the block; use :meth:`record` from
        processes instead when the span brackets yields.
        """
        return _SpanContext(self, phase, actor, bytes)

    def phases(self) -> List[str]:
        """Distinct phase names in first-appearance order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.phase, None)
        return list(seen)

    def phase_window(self, phase: str) -> Optional[tuple]:
        """(earliest start, latest end) over all spans of ``phase``."""
        matching = [s for s in self.spans if s.phase == phase]
        if not matching:
            return None
        return (min(s.start for s in matching), max(s.end for s in matching))

    def phase_durations(self) -> Dict[str, float]:
        """Per-phase wall duration: last end minus first start.

        This matches the paper's definition of a phase ending when the
        last GPU completes it.
        """
        result: Dict[str, float] = {}
        for phase in self.phases():
            start, end = self.phase_window(phase)
            result[phase] = end - start
        return result

    def busy_time(self, actor: str, phase: Optional[str] = None) -> float:
        """Total span time of one actor (optionally one phase only)."""
        return sum(s.duration for s in self.spans
                   if s.actor == actor and (phase is None or s.phase == phase))

    def total_bytes(self, phase: Optional[str] = None) -> float:
        """Total bytes attributed to spans (optionally one phase only)."""
        return sum(s.bytes for s in self.spans
                   if phase is None or s.phase == phase)

    def clear(self) -> None:
        """Drop all recorded spans."""
        self.spans.clear()


@dataclass
class _SpanContext:
    trace: Trace
    phase: str
    actor: str
    bytes: float
    _start: float = field(default=0.0, init=False)

    def __enter__(self) -> "_SpanContext":
        self._start = self.trace.env.now
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.trace.record(self.phase, self.actor, self._start,
                              bytes=self.bytes)
