"""Span-based tracing of simulated activity.

The sorting algorithms annotate their work with named spans ("HtoD",
"Sort", "Merge", "DtoH", ...).  The paper's sort-duration breakdowns
(Figures 12-14, bottom) define a phase to end *when the last GPU
completes it*; :meth:`Trace.phase_durations` implements exactly that
reduction over the recorded spans.

Spans form a hierarchy: every span carries a unique ``id`` and an
optional ``parent`` id, so a phase span (an ``HtoD`` on one GPU, say)
can decompose into the flow-level activity the observability layer
records beneath it.  Parents are assigned two ways:

* explicitly, by passing ``parent=`` (or a pre-allocated ``id=``) to
  :meth:`Trace.record` — used by the runtime to tie a copy's flows to
  its phase span;
* implicitly, from the *parent stack*: a sort pushes its root span id
  via :meth:`Trace.push_parent`, and every span recorded until the
  matching :meth:`Trace.pop_parent` becomes a child of that root.

Phase breakdowns are served from a per-phase index maintained on
insert — distinct phase names, per-phase ``(first start, last end)``
bounds and per-phase span lists — so :meth:`phases`,
:meth:`phase_window` and :meth:`phase_durations` cost O(phases), not
O(phases x spans), even on flow-level traces with hundreds of
thousands of spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Environment


@dataclass(frozen=True)
class Span:
    """One completed activity interval on one actor.

    ``id`` is unique within its :class:`Trace` (0 for spans recorded by
    code that does not care about hierarchy); ``parent`` is the id of
    the enclosing span, or ``None`` at the root.
    """

    phase: str
    actor: str
    start: float
    end: float
    bytes: float = 0.0
    id: int = 0
    parent: Optional[int] = None

    @property
    def duration(self) -> float:
        """Length of the span in simulated seconds."""
        return self.end - self.start


class Trace:
    """Collects :class:`Span` records during a simulation run."""

    def __init__(self, env: Environment):
        self.env = env
        self.spans: List[Span] = []
        self._next_id = 1
        self._parent_stack: List[int] = []
        #: Per-phase index, maintained on insert: name -> spans.
        self._by_phase: Dict[str, List[Span]] = {}
        #: Per-phase (first start, last end) bounds.
        self._bounds: Dict[str, List[float]] = {}

    def allocate_id(self) -> int:
        """Reserve a span id before the span completes.

        Lets long-running operations hand their id to child activity
        (flows, sub-spans) while still in flight; pass the id back via
        ``record(..., id=...)`` when the span ends.
        """
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def push_parent(self, span_id: int) -> None:
        """Make ``span_id`` the default parent of spans recorded next."""
        self._parent_stack.append(span_id)

    def pop_parent(self) -> int:
        """Undo the innermost :meth:`push_parent`; returns its id."""
        return self._parent_stack.pop()

    @property
    def current_parent(self) -> Optional[int]:
        """Top of the parent stack (or ``None``)."""
        return self._parent_stack[-1] if self._parent_stack else None

    def record(self, phase: str, actor: str, start: float,
               end: Optional[float] = None, bytes: float = 0.0,
               id: Optional[int] = None,
               parent: Optional[int] = None) -> Span:
        """Append a completed span (``end`` defaults to *now*).

        ``id`` attaches a pre-allocated id (see :meth:`allocate_id`);
        without one a fresh id is assigned.  ``parent`` defaults to the
        top of the parent stack.
        """
        if end is None:
            end = self.env.now
        if end < start:
            raise ValueError(f"span ends before it starts: {start} > {end}")
        if id is None:
            id = self._next_id
            self._next_id += 1
        if parent is None:
            parent = self.current_parent
        span = Span(phase=phase, actor=actor, start=start, end=end,
                    bytes=bytes, id=id, parent=parent)
        self.spans.append(span)
        bucket = self._by_phase.get(phase)
        if bucket is None:
            self._by_phase[phase] = [span]
            self._bounds[phase] = [start, end]
        else:
            bucket.append(span)
            bounds = self._bounds[phase]
            if start < bounds[0]:
                bounds[0] = start
            if end > bounds[1]:
                bounds[1] = end
        return span

    def span(self, phase: str, actor: str, bytes: float = 0.0):
        """Context manager recording a span around a ``with`` block.

        Only meaningful inside process code that advances simulated time
        via ``yield`` *outside* the block; use :meth:`record` from
        processes instead when the span brackets yields.
        """
        return _SpanContext(self, phase, actor, bytes)

    def phases(self) -> List[str]:
        """Distinct phase names in first-appearance order."""
        return list(self._by_phase)

    def phase_spans(self, phase: str) -> List[Span]:
        """All spans of one phase, in record order."""
        return list(self._by_phase.get(phase, ()))

    def phase_window(self, phase: str) -> Optional[tuple]:
        """(earliest start, latest end) over all spans of ``phase``."""
        bounds = self._bounds.get(phase)
        if bounds is None:
            return None
        return (bounds[0], bounds[1])

    def phase_durations(self) -> Dict[str, float]:
        """Per-phase wall duration: last end minus first start.

        This matches the paper's definition of a phase ending when the
        last GPU completes it.
        """
        return {phase: bounds[1] - bounds[0]
                for phase, bounds in self._bounds.items()}

    def children_of(self, span_id: int) -> List[Span]:
        """Spans recorded with ``parent == span_id``."""
        return [s for s in self.spans if s.parent == span_id]

    def busy_time(self, actor: str, phase: Optional[str] = None) -> float:
        """Total span time of one actor (optionally one phase only)."""
        spans = (self.spans if phase is None
                 else self._by_phase.get(phase, ()))
        return sum(s.duration for s in spans if s.actor == actor)

    def total_bytes(self, phase: Optional[str] = None) -> float:
        """Total bytes attributed to spans (optionally one phase only)."""
        spans = (self.spans if phase is None
                 else self._by_phase.get(phase, ()))
        return sum(s.bytes for s in spans)

    def clear(self) -> None:
        """Drop all recorded spans (ids keep counting up)."""
        self.spans.clear()
        self._by_phase.clear()
        self._bounds.clear()
        self._parent_stack.clear()


@dataclass
class _SpanContext:
    trace: Trace
    phase: str
    actor: str
    bytes: float
    _start: float = field(default=0.0, init=False)

    def __enter__(self) -> "_SpanContext":
        self._start = self.trace.env.now
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.trace.record(self.phase, self.actor, self._start,
                              bytes=self.bytes)
