"""Shared, directional bandwidth resources.

A :class:`Resource` models one physical medium a data transfer can cross:
an NVLink bundle, a PCIe switch uplink, a CPU interconnect (X-Bus, UPI,
Infinity Fabric), a NUMA node's memory controller, or a GPU's own memory
system.  Resources are *directional*: each has a forward and a reverse
capacity, because several of the paper's measurements are asymmetric
(e.g. the AC922's X-Bus sustains ~41 GB/s HtoD but only ~35 GB/s DtoH,
Figure 2a).

Two empirical effects from the paper's interconnect analysis (Section 4)
are modelled explicitly:

* **Duplex overhead** — when both directions are active at once the
  per-direction capacity drops.  On the AC922, two local GPUs reach
  141 GB/s HtoD or 109 GB/s DtoH alone, but only 136 GB/s combined when
  copying bidirectionally (Figure 2b).  A ``duplex_factor`` in (0, 1]
  scales each direction's capacity while the opposite direction carries
  at least one flow.
* **Sharing efficiency** — some media lose efficiency as more concurrent
  flows cross them (the X-Bus retry pathology, Section 4.2).  A
  :class:`SharingCurve` maps the number of concurrent flows on the
  resource to a capacity multiplier.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple


class Direction(enum.Enum):
    """Logical direction of travel across a resource."""

    FWD = "fwd"
    REV = "rev"

    def flipped(self) -> "Direction":
        """The opposite direction."""
        return Direction.REV if self is Direction.FWD else Direction.FWD


class SharingCurve:
    """Capacity multiplier as a function of concurrent flow count.

    The curve is specified at a few support points and evaluated with
    step-and-hold semantics: the factor for ``n`` flows is the factor of
    the largest specified point ``<= n``.  Points default to ``{1: 1.0}``
    (no degradation).
    """

    __slots__ = ("_points", "_trivial")

    def __init__(self, points: Optional[Dict[int, float]] = None):
        pts = dict(points or {})
        pts.setdefault(1, 1.0)
        for n, factor in pts.items():
            if n < 1:
                raise ValueError(f"flow count must be >= 1, got {n}")
            if not 0.0 < factor <= 1.0:
                raise ValueError(f"sharing factor must be in (0, 1], got {factor}")
        self._points: Tuple[Tuple[int, float], ...] = tuple(sorted(pts.items()))
        #: Whether every support point maps to 1.0 (no degradation) —
        #: lets hot paths skip the step search entirely.
        self._trivial = all(f == 1.0 for _n, f in self._points)

    def factor(self, flows: int) -> float:
        """Capacity multiplier when ``flows`` flows share the resource."""
        if self._trivial or flows < 1:
            return 1.0
        result = 1.0
        for n, f in self._points:
            if n <= flows:
                result = f
            else:
                break
        return result

    def __repr__(self) -> str:
        return f"SharingCurve({dict(self._points)!r})"


#: A sharing curve with no degradation, shared by default resources.
NO_DEGRADATION = SharingCurve()


class Resource:
    """One directional bandwidth medium in the machine.

    Parameters
    ----------
    name:
        Human-readable identifier (used in traces and error messages).
    capacity_fwd / capacity_rev:
        Sustainable throughput per direction in bytes/second.  These are
        *effective* (measured) capacities, not datasheet peaks; the
        platform catalog calibrates them against the paper's Figures 2-7.
    duplex_factor:
        Factor in (0, 1] applied to each direction's capacity while both
        directions are simultaneously busy.
    sharing:
        Optional :class:`SharingCurve` degrading capacity with the number
        of concurrent flows on the resource (both directions combined).
    latency_s:
        One-way traversal latency in seconds, paid once per hop before
        a transfer's first byte moves.  Irrelevant for the paper's 4 GB
        copies, but it puts small transfers in the latency-bound regime
        real interconnects show.
    """

    __slots__ = ("name", "_cap_fwd", "_cap_rev", "duplex_factor",
                 "sharing", "latency_s", "_load_sensitive", "_fault_factor")

    def __init__(
        self,
        name: str,
        capacity_fwd: float,
        capacity_rev: Optional[float] = None,
        duplex_factor: float = 1.0,
        sharing: Optional[SharingCurve] = None,
        latency_s: float = 0.0,
    ):
        if capacity_fwd <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_fwd}")
        if capacity_rev is not None and capacity_rev <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_rev}")
        if not 0.0 < duplex_factor <= 1.0:
            raise ValueError(f"duplex_factor must be in (0, 1], got {duplex_factor}")
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.name = name
        self._cap_fwd = float(capacity_fwd)
        self._cap_rev = float(capacity_rev if capacity_rev is not None
                              else capacity_fwd)
        self.duplex_factor = float(duplex_factor)
        self.sharing = sharing or NO_DEGRADATION
        self.latency_s = float(latency_s)
        #: Whether load changes the capacity at all; an insensitive
        #: resource answers :meth:`effective_capacity` without touching
        #: the duplex factor or the sharing curve (the common case —
        #: NVLink bundles and switch ports carry no penalty).
        self._load_sensitive = (self.duplex_factor != 1.0
                                or not self.sharing._trivial)
        #: Externally imposed capacity multiplier (fault injection).
        #: Exactly 1.0 when healthy; the capacity math skips it then, so
        #: a fault-free run is bit-identical to a build without faults.
        self._fault_factor = 1.0

    @property
    def fault_factor(self) -> float:
        """Current externally imposed capacity multiplier (1.0 = healthy)."""
        return self._fault_factor

    def set_fault_factor(self, factor: float) -> None:
        """Impose (or, with 1.0, lift) a capacity degradation.

        Called by the fault injector; callers owning a
        :class:`~repro.sim.flows.FlowNetwork` must follow up with
        :meth:`~repro.sim.flows.FlowNetwork.requery_capacity` so active
        flows are re-rated under the new capacity.
        """
        if factor <= 0.0:
            raise ValueError(f"fault factor must be positive, got {factor}")
        self._fault_factor = float(factor)

    def raw_capacity(self, direction: Direction) -> float:
        """Configured capacity of one direction, ignoring load effects."""
        return self._cap_fwd if direction is Direction.FWD else self._cap_rev

    def effective_capacity(
        self,
        direction: Direction,
        flows_this_direction: int,
        flows_other_direction: int,
    ) -> float:
        """Capacity of ``direction`` under the given concurrent load."""
        capacity = (self._cap_fwd if direction is Direction.FWD
                    else self._cap_rev)
        if self._fault_factor != 1.0:
            capacity *= self._fault_factor
        if not self._load_sensitive:
            return capacity
        if flows_other_direction > 0 and flows_this_direction > 0:
            capacity *= self.duplex_factor
        total = flows_this_direction + flows_other_direction
        capacity *= self.sharing.factor(total)
        return capacity

    def __repr__(self) -> str:
        return (f"<Resource {self.name} fwd={self._cap_fwd:.3g} "
                f"rev={self._cap_rev:.3g}>")
