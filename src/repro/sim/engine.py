"""A small discrete-event simulation kernel.

The kernel follows the SimPy process-based model: simulation logic is
written as generator functions ("processes") that ``yield`` events.  A
process is suspended until the yielded event is *triggered*, at which
point the event's value is sent back into the generator.

Only the features the virtual GPU runtime needs are implemented:

* :class:`Event` — one-shot condition with callbacks and a value,
* :class:`Timeout` — event triggered after a simulated delay,
* :class:`Process` — generator wrapper, itself an event (its completion),
* :class:`AllOf` / :class:`AnyOf` — condition events over several events,
* :class:`Environment` — the event queue and clock.

The implementation is deterministic: events scheduled for the same time
fire in scheduling order (a monotonically increasing sequence number
breaks ties).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, List, Optional

import numpy as np


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupts.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet triggered" from a triggered ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, is *triggered* with a value via
    :meth:`succeed` (or :meth:`fail` with an exception), and then has its
    callbacks run by the environment at the current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set by ``fail`` so unhandled failures can be detected.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for a failed event)."""
        if self._value is _PENDING:
            raise SimulationError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # Support ``yield evt_a & evt_b`` / ``yield evt_a | evt_b``.
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a process on the next loop iteration."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self)


class Process(Event):
    """Wraps a generator; the process *is* the event of its termination.

    Yield events from the generator to wait for them.  The process event
    succeeds with the generator's return value, or fails with any
    uncaught exception.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """``True`` until the wrapped generator has terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        # Detach from the event currently waited on so its later triggering
        # does not resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process yielded a non-event: {next_event!r}")
        if next_event.env is not self.env:
            raise SimulationError("cannot wait on an event from another environment")
        if next_event.callbacks is None:
            # Already processed: resume immediately on the next loop step.
            immediate = Event(self.env)
            immediate._ok = next_event._ok
            immediate._value = next_event._value
            immediate.defused = True
            immediate.callbacks.append(self._resume)
            self.env._schedule(immediate)
            self._target = immediate
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event


class _Condition(Event):
    """Base class of :class:`AllOf` and :class:`AnyOf`.

    An input event counts as *done* once it has been processed (its
    callbacks ran) — being merely scheduled, like a fresh
    :class:`Timeout`, does not count.
    """

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._count = 0
        for event in self.events:
            if event.env is not self.env:
                raise SimulationError("all events must share one environment")
        for event in self.events:
            if event.callbacks is None:
                # Already processed before the condition was created.
                if not event._ok:
                    event.defused = True
                    self.fail(event._value)
                    return
                self._count += 1
            else:
                event.callbacks.append(self._on_event)
        if not self.triggered and self._evaluate():
            self._finish()

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate():
            self._finish()

    def _evaluate(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def _finish(self) -> None:
        self.succeed({e: e._value for e in self.events
                      if e.callbacks is None and e._ok})


class AllOf(_Condition):
    """Succeeds once every given event has succeeded."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._count >= len(self.events)


class AnyOf(_Condition):
    """Succeeds once at least one given event has succeeded."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return len(self.events) == 0 or self._count >= 1


class SimProfile:
    """Per-phase wall-clock cost breakdown of a simulation run.

    Attached via :attr:`Environment.profile` (``simcore --profile``),
    the engine and the flow network charge their hot sections here so a
    throughput regression can be attributed to a phase — water-fill
    rounds, event-calendar maintenance, heap operations or callback
    dispatch — instead of showing up as an opaque slowdown.  Timing is
    only ever *read* from the simulation, so enabling it never changes
    simulated results; it does add real wall-clock overhead (two
    ``perf_counter`` calls per measured section).
    """

    __slots__ = ("fill_s", "fills", "fill_rounds", "advance_s",
                 "schedule_s", "rebuilds", "heap_s", "calendar_s",
                 "dispatched")

    def __init__(self) -> None:
        #: Seconds inside the max-min water-fill solver, and its call
        #: and round counts.
        self.fill_s = 0.0
        self.fills = 0
        self.fill_rounds = 0
        #: Seconds advancing flow progress (the vectorized sweep).
        self.advance_s = 0.0
        #: Seconds staging + rebuilding the completion calendar.
        self.schedule_s = 0.0
        self.rebuilds = 0
        #: Seconds popping + dispatching object-heap events.
        self.heap_s = 0.0
        #: Seconds popping + dispatching calendar completions.
        self.calendar_s = 0.0
        self.dispatched = 0

    def to_json(self) -> dict:
        """JSON-serializable breakdown (seconds and counts)."""
        return {
            "fill_s": self.fill_s,
            "fills": self.fills,
            "fill_rounds": self.fill_rounds,
            "advance_s": self.advance_s,
            "schedule_s": self.schedule_s,
            "rebuilds": self.rebuilds,
            "heap_s": self.heap_s,
            "calendar_s": self.calendar_s,
            "events_dispatched": self.dispatched,
        }


class ArrayCalendar:
    """Array-of-struct event calendar for flow completions.

    Completion events are the engine's fast path: a full reallocation
    reschedules *every* active flow, so representing each completion as
    a Python heap entry (the previous ``_Completion`` event objects)
    made reallocation cost O(F) object constructions plus O(F log F)
    heap pushes — and every superseded entry was later popped again as
    a no-op.  This calendar stores completions as parallel NumPy arrays
    of ``(time, seq, flow slot, token)`` instead:

    * a full reallocation *stages* the new completion set in O(1) —
      slot, sequence-id and token arrays are recorded, and every
      previously staged or materialized entry is discarded in bulk
      (counted in :attr:`invalidated`: the engine retired them without
      dispatching);
    * the stage is *rebuilt* lazily at the next ``peek``/``step`` —
      completion times are computed vectorized and sorted once, which
      batches any number of same-timestamp reallocations into a single
      O(F log F) pass;
    * single disjoint-flow completions (the fast-start path) go to a
      small side heap, merged at the head.

    Sequence ids are reserved from the environment's global counter at
    staging time, exactly as the per-object events consumed them, so
    the (time, seq) order of every surviving event — and therefore the
    simulated result — is bit-identical to the per-object engine.

    Plain ``Timeout``/``Event`` objects stay on the binary heap: they
    are scheduled one at a time (where C ``heapq`` is already optimal)
    and carry arbitrary callback lists.  The array calendar wins where
    events are bulk-(re)scheduled and homogeneous.
    """

    __slots__ = ("env", "times", "eids", "slots", "tokens", "ptr",
                 "_extra", "_staged", "dirty", "invalidated",
                 "dispatch", "times_of", "valid_of")

    def __init__(self, env: "Environment", dispatch: Callable,
                 times_of: Callable, valid_of: Callable):
        self.env = env
        #: Materialized entries, sorted by (time, eid); consumed from
        #: ``ptr`` forward.
        self.times = np.empty(0)
        self.eids = np.empty(0, dtype=np.int64)
        self.slots = np.empty(0, dtype=np.int64)
        self.tokens = np.empty(0, dtype=np.int64)
        self.ptr = 0
        #: Singly pushed entries: (time, eid, slot, token) tuples.
        self._extra: List[tuple] = []
        #: Staged-but-unmaterialized bulk reschedule, or ``None``.
        self._staged: Optional[tuple] = None
        self.dirty = False
        #: Entries retired without dispatch (superseded in bulk by a
        #: later reallocation, or staged for a flow that finished in
        #: the same instant).  ``Environment.events_retired`` adds this
        #: to the dispatched count so throughput metrics stay
        #: comparable with the per-object engine, which popped each of
        #: these as an explicit no-op event.
        self.invalidated = 0
        #: ``dispatch(slot, token)`` — deliver one due completion.
        self.dispatch = dispatch
        #: ``times_of(slots) -> ndarray`` — completion times of the
        #: staged flows, computed at rebuild.
        self.times_of = times_of
        #: ``valid_of(slots, tokens) -> bool ndarray`` — which staged
        #: entries are still current at rebuild.
        self.valid_of = valid_of

    def __len__(self) -> int:
        staged = len(self._staged[0]) if self.dirty and self._staged else 0
        return (len(self.times) - self.ptr) + len(self._extra) + staged

    def stage(self, slots: np.ndarray, eids: np.ndarray,
              tokens: np.ndarray) -> None:
        """Replace the whole bulk completion set (O(1) until rebuilt)."""
        if self._staged is not None:
            self.invalidated += len(self._staged[0])
        self.invalidated += len(self.times) - self.ptr
        self.times = np.empty(0)
        self.ptr = 0
        self._staged = (slots, eids, tokens)
        self.dirty = True

    def push(self, time: float, eid: int, slot: int, token: int) -> None:
        """Schedule one completion (the disjoint fast-start path)."""
        heapq.heappush(self._extra, (time, eid, slot, token))

    def _rebuild(self) -> None:
        slots, eids, tokens = self._staged
        self._staged = None
        self.dirty = False
        mask = self.valid_of(slots, tokens)
        self.invalidated += int(len(mask) - mask.sum())
        slots = slots[mask]
        times = self.times_of(slots)
        order = np.argsort(times, kind="stable")
        self.times = times[order]
        self.eids = eids[mask][order]
        self.slots = slots[order]
        self.tokens = tokens[mask][order]
        self.ptr = 0

    def head(self) -> Optional[tuple]:
        """(time, eid) of the earliest entry, or ``None`` when empty."""
        if self.dirty:
            prof = self.env._profile
            if prof is None:
                self._rebuild()
            else:
                t0 = perf_counter()
                self._rebuild()
                prof.schedule_s += perf_counter() - t0
                prof.rebuilds += 1
        array_key = None
        if self.ptr < len(self.times):
            array_key = (self.times[self.ptr], int(self.eids[self.ptr]))
        if self._extra:
            extra = self._extra[0]
            extra_key = (extra[0], extra[1])
            if array_key is None or extra_key < array_key:
                return extra_key
        return array_key

    def pop(self) -> tuple:
        """Remove and return the earliest entry (time, slot, token).

        Callers must have checked :meth:`head` first; the head call
        also rebuilds a dirty stage.
        """
        if self.ptr < len(self.times):
            array_key = (self.times[self.ptr], int(self.eids[self.ptr]))
        else:
            array_key = None
        if self._extra and (array_key is None
                            or (self._extra[0][0], self._extra[0][1])
                            < array_key):
            time, _eid, slot, token = heapq.heappop(self._extra)
            return time, slot, token
        i = self.ptr
        self.ptr = i + 1
        return float(self.times[i]), int(self.slots[i]), int(self.tokens[i])


class Environment:
    """Execution environment: the clock and the event queue."""

    __slots__ = ("_now", "_queue", "_eid", "_active_process",
                 "events_processed", "_obs", "_calendar", "_profile")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Number of events whose callbacks have run (for sim-throughput
        #: metrics; see the ``simcore`` benchmark).
        self.events_processed = 0
        #: Observability recorder (:mod:`repro.obs`), or ``None``.  The
        #: loop pays one ``is None`` check per event when disabled; the
        #: recorder only *reads* simulation state, so enabling it never
        #: changes simulated time.
        self._obs = None
        #: Array-backed completion calendar (registered by the flow
        #: network), or ``None``.
        self._calendar: Optional[ArrayCalendar] = None
        #: Cost-breakdown collector (``simcore --profile``), or ``None``.
        self._profile: Optional[SimProfile] = None

    @property
    def obs(self):
        """The attached observability recorder, or ``None``."""
        return self._obs

    @obs.setter
    def obs(self, recorder) -> None:
        self._obs = recorder

    @property
    def profile(self) -> Optional[SimProfile]:
        """The attached cost-breakdown collector, or ``None``."""
        return self._profile

    @profile.setter
    def profile(self, collector: Optional[SimProfile]) -> None:
        self._profile = collector

    @property
    def events_retired(self) -> int:
        """Events dispatched plus calendar entries bulk-invalidated.

        The per-object engine popped every superseded completion as an
        explicit no-op, so its ``events_processed`` counted them; the
        array calendar discards them without a pop.  Throughput metrics
        compare like with like by using this total.
        """
        cal = self._calendar
        return self.events_processed + (cal.invalidated if cal is not None
                                        else 0)

    def register_calendar(self, dispatch: Callable, times_of: Callable,
                          valid_of: Callable) -> ArrayCalendar:
        """Attach the array completion calendar (one per environment)."""
        if self._calendar is not None:
            raise SimulationError(
                "environment already has an array calendar; one flow "
                "network per environment")
        self._calendar = ArrayCalendar(self, dispatch, times_of, valid_of)
        return self._calendar

    def _reserve_eids(self, count: int) -> int:
        """Reserve ``count`` sequence ids, returning the first.

        Bulk reschedules consume one id per flow — the same ids the
        per-object events would have consumed — so surviving calendar
        entries keep a bit-identical (time, seq) order.
        """
        first = self._eid + 1
        self._eid += count
        return first

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (or ``None``)."""
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """Create a pending event to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition that succeeds once all ``events`` succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition that succeeds once any of ``events`` succeeded."""
        return AnyOf(self, events)

    # -- scheduling & the loop -------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        when = self._queue[0][0] if self._queue else float("inf")
        cal = self._calendar
        if cal is not None:
            key = cal.head()
            if key is not None and key[0] < when:
                return key[0]
        return when

    def step(self) -> None:
        """Process the next scheduled event."""
        queue = self._queue
        cal = self._calendar
        if cal is not None:
            cal_key = cal.head()
            if cal_key is not None and (
                    not queue or cal_key < (queue[0][0], queue[0][1])):
                prof = self._profile
                if prof is not None:
                    t0 = perf_counter()
                when, slot, token = cal.pop()
                self._now = when
                self.events_processed += 1
                cal.dispatch(slot, token)
                if prof is not None:
                    prof.calendar_s += perf_counter() - t0
                    prof.dispatched += 1
                obs = self._obs
                if obs is not None:
                    obs.engine_stepped(when, len(queue) + len(cal))
                return
        if not queue:
            raise SimulationError("no scheduled events")
        when, _, event = heapq.heappop(queue)
        self._now = when
        self.events_processed += 1
        prof = self._profile
        if prof is not None:
            t0 = perf_counter()
        callbacks, event.callbacks = event.callbacks, None
        if len(callbacks) == 1:
            # The overwhelmingly common case: one waiter (a process
            # resume or a flow-completion handler).
            callbacks[0](event)
        else:
            for callback in callbacks:
                callback(event)
        if prof is not None:
            prof.heap_s += perf_counter() - t0
            prof.dispatched += 1
        if not event._ok and not event.defused:
            raise event._value
        obs = self._obs
        if obs is not None:
            depth = len(queue) if cal is None else len(queue) + len(cal)
            obs.engine_stepped(when, depth)

    def _exhausted(self) -> bool:
        """No object events and no live calendar entries remain."""
        if self._queue:
            return False
        cal = self._calendar
        return cal is None or cal.head() is None

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (an event, a time, or queue exhaustion).

        Returns the value of the ``until`` event, if one was given.
        """
        if until is None:
            if self._calendar is None:
                while self._queue:
                    self.step()
                return None
            while not self._exhausted():
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if self._exhausted():
                    raise SimulationError(
                        "event queue ran dry before the awaited event fired")
                self.step()
            if not stop._ok:
                raise stop._value
            return stop._value
        deadline = float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} lies in the past (now={self._now})")
        while self.peek() <= deadline:
            self.step()
        self._now = deadline
        return None
