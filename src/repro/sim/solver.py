"""Data-oriented state for the flow network's hot path.

The per-object implementation in :mod:`repro.sim.flows` topped out
around 80-100k events/sec (``BENCH_simcore.json``): every allocation
change iterated Python dicts of :class:`~repro.sim.flows.Flow` objects,
and every progress sweep touched each flow's attributes one by one.
This module replaces those inner loops with preallocated NumPy arrays:

* :class:`FlowTable` — one slot per flow, holding ``remaining``,
  ``rate``, ``rate_cap``, finish threshold, completion token and
  liveness as parallel arrays, plus a padded CSR-style membership
  matrix of the (resource, direction) key slots each flow crosses;
* :class:`KeyTable` — one slot per active ``(resource, direction)``
  membership key, holding member counts, raw capacity, fault factor,
  the partner (opposite-direction) slot and a load-sensitivity flag;
* :func:`water_fill_arrays` — the progressive-filling max-min solver
  over those arrays, replacing the dict-of-set fill.

**Bit-exactness contract.**  The vectorized solver performs *the same
IEEE-754 operations in the same order* as the retained reference
implementation (:func:`water_fill_reference`): shares are the same
``capacity / count`` divisions, freezing picks the same first-minimum
bottleneck (NumPy ``argmin`` ties resolve to the lowest index, matching
the reference's insertion-order scan), and charging repeats the same
``max(0.0, cap - rate)`` per frozen crossing instead of subtracting
``k * rate`` in one step (which would round differently).  The
determinism goldens (``tests/sim/test_determinism.py``) and the
property tests (``tests/sim/test_solver_properties.py``) pin this down.

Slots are assigned in arrival order and never recycled between
compactions, so ``np.nonzero`` enumerates flows (and membership keys)
in exactly the insertion order the reference dicts iterate in.
Compaction preserves relative order.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.sim.engine import SimulationError
from repro.sim.resources import Direction, Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.flows import Flow

#: Initial slot capacity of the flow and key tables.
_INITIAL_CAPACITY = 64
#: Initial hop-matrix width (grown on demand for longer routes).
_INITIAL_WIDTH = 4


class FlowTable:
    """Array-of-struct storage for active flows.

    One slot per flow, assigned in arrival order.  A slot stays
    allocated (marked dead) after its flow finishes until
    :meth:`compact` reclaims it, so live slots always enumerate in
    arrival order — the property every ordering guarantee of the
    vectorized solver rests on.
    """

    def __init__(self) -> None:
        n, w = _INITIAL_CAPACITY, _INITIAL_WIDTH
        self.remaining = np.zeros(n)
        self.rate = np.zeros(n)
        self.rate_cap = np.full(n, np.inf)
        self.threshold = np.zeros(n)
        self.token = np.zeros(n, dtype=np.int64)
        self.active = np.zeros(n, dtype=bool)
        #: Padded membership matrix: row ``s`` holds the key slots flow
        #: ``s`` crosses, right-padded with -1.
        self.hops = np.full((n, w), -1, dtype=np.int64)
        #: Slot -> Flow object (``None`` for dead slots).
        self.objs: List[Optional["Flow"]] = [None] * n
        #: Next never-used slot; live slots are a subset of ``[0, top)``.
        self.top = 0
        #: Number of live (active) slots.
        self.live = 0

    def _grow(self, rows: int) -> None:
        n = len(self.active)
        while rows > n:
            n *= 2
        if n == len(self.active):
            return
        for name in ("remaining", "rate", "rate_cap", "threshold",
                     "token", "active"):
            old = getattr(self, name)
            new = np.zeros(n, dtype=old.dtype)
            if name == "rate_cap":
                new[:] = np.inf
            new[:len(old)] = old
            setattr(self, name, new)
        hops = np.full((n, self.hops.shape[1]), -1, dtype=np.int64)
        hops[:len(self.hops)] = self.hops
        self.hops = hops
        self.objs.extend([None] * (n - len(self.objs)))

    def _widen(self, width: int) -> None:
        w = self.hops.shape[1]
        while width > w:
            w *= 2
        if w == self.hops.shape[1]:
            return
        hops = np.full((len(self.active), w), -1, dtype=np.int64)
        hops[:, :self.hops.shape[1]] = self.hops
        self.hops = hops

    def insert(self, flow: "Flow", key_slots: List[int]) -> int:
        """Allocate the next slot for ``flow``; returns the slot."""
        slot = self.top
        self._grow(slot + 1)
        self._widen(len(key_slots))
        self.top = slot + 1
        self.live += 1
        self.remaining[slot] = flow.size
        self.rate[slot] = 0.0
        self.rate_cap[slot] = (np.inf if flow.rate_cap is None
                               else flow.rate_cap)
        self.threshold[slot] = flow._finish_threshold
        self.token[slot] = 0
        self.active[slot] = True
        self.hops[slot, :] = -1
        self.hops[slot, :len(key_slots)] = key_slots
        self.objs[slot] = flow
        return slot

    def deactivate(self, slot: int) -> None:
        """Mark ``slot`` dead (the flow finished or was aborted)."""
        self.active[slot] = False
        self.live -= 1

    def active_slots(self) -> np.ndarray:
        """Live slots in arrival order."""
        return np.nonzero(self.active[:self.top])[0]

    def compact(self) -> None:
        """Reclaim dead slots, preserving arrival order of live ones.

        Dead flows' final values are written back onto their objects
        (detaching them from the table) and live flows are renumbered.
        The caller must ensure no external structure still references
        old slot numbers (the flow network compacts only at a full
        reallocation, right before the completion calendar is restaged).
        """
        keep = self.active_slots()
        for slot in range(self.top):
            flow = self.objs[slot]
            if flow is not None and not self.active[slot]:
                flow._detach(float(self.remaining[slot]),
                             float(self.rate[slot]))
                self.objs[slot] = None
        n = len(keep)
        for name in ("remaining", "rate", "rate_cap", "threshold",
                     "token", "active"):
            arr = getattr(self, name)
            arr[:n] = arr[keep]
            if name == "active":
                arr[n:self.top] = False
            elif name == "rate_cap":
                arr[n:self.top] = np.inf
            else:
                arr[n:self.top] = 0
        self.hops[:n] = self.hops[keep]
        self.hops[n:self.top] = -1
        objs = [self.objs[int(s)] for s in keep]
        for new_slot, flow in enumerate(objs):
            flow._slot = new_slot
            self.objs[new_slot] = flow
        for slot in range(n, self.top):
            self.objs[slot] = None
        self.top = n

    def remap_keys(self, lut: np.ndarray) -> None:
        """Renumber key slots in the hop matrix via lookup table ``lut``.

        ``lut`` maps old key slots to new ones; its final element must
        be -1 so the -1 padding maps to itself.
        """
        self.hops[:self.top] = lut[self.hops[:self.top]]


class KeyTable:
    """Array-of-struct storage for (resource, direction) membership keys.

    Key slots are assigned in first-crossing order and tombstoned when
    their member count drops to zero; a key that later becomes active
    again gets a *new* slot at the end.  That reproduces the reference
    implementation's dict semantics (delete + re-insert appends), so
    enumerating alive slots in increasing order visits keys exactly as
    ``dict.items()`` does in the reference fill — which is what makes
    NumPy ``argmin`` tie-breaking match the reference's first-minimum
    scan bit for bit.
    """

    def __init__(self) -> None:
        n = _INITIAL_CAPACITY
        self.count = np.zeros(n, dtype=np.int64)
        self.cap_raw = np.zeros(n)
        self.fault = np.ones(n)
        self.alive = np.zeros(n, dtype=bool)
        #: Slot of the opposite-direction key, or -1 while it has no
        #: members.
        self.partner = np.full(n, -1, dtype=np.int64)
        #: Whether capacity depends on load (duplex factor or a
        #: non-trivial sharing curve) at all.
        self.sensitive = np.zeros(n, dtype=bool)
        #: The resource's duplex factor (1.0 when none) — lets the fill
        #: apply duplex-only sensitivity as one vectorized multiply.
        self.duplex = np.ones(n)
        #: Whether the key needs the Python ``effective_capacity`` path
        #: in the fill: a non-trivial sharing curve or an overridden
        #: method.  Duplex-only keys (the overwhelming majority on
        #: cluster fabrics — every link is duplex-penalized, few carry
        #: sharing curves) stay vectorized.
        self.curved = np.zeros(n, dtype=bool)
        self.resources: List[object] = [None] * n
        self.dirbit = np.zeros(n, dtype=bool)
        #: Packed (id(resource) << 1 | direction) key -> slot.
        self.slot_of: Dict[int, int] = {}
        self.top = 0
        self.live = 0

    def _grow(self, rows: int) -> None:
        n = len(self.alive)
        while rows > n:
            n *= 2
        if n == len(self.alive):
            return
        for name in ("count", "cap_raw", "fault", "alive", "partner",
                     "sensitive", "duplex", "curved", "dirbit"):
            old = getattr(self, name)
            new = np.zeros(n, dtype=old.dtype)
            if name == "partner":
                new[:] = -1
            elif name in ("fault", "duplex"):
                new[:] = 1.0
            new[:len(old)] = old
            setattr(self, name, new)
        self.resources.extend([None] * (n - len(self.resources)))

    def add_member(self, key: int, resource) -> int:
        """Count one more flow on packed ``key``; returns its slot."""
        slot = self.slot_of.get(key)
        if slot is None:
            slot = self.top
            self._grow(slot + 1)
            self.top = slot + 1
            self.live += 1
            self.slot_of[key] = slot
            direction = Direction.REV if key & 1 else Direction.FWD
            self.count[slot] = 1
            self.cap_raw[slot] = resource.raw_capacity(direction)
            self.fault[slot] = resource._fault_factor
            self.alive[slot] = True
            # Subclasses may override effective_capacity (tests model
            # pathological media that way); only the stock
            # load-insensitive implementation may be vectorized away.
            overridden = (type(resource).effective_capacity
                          is not Resource.effective_capacity)
            self.sensitive[slot] = resource._load_sensitive or overridden
            self.duplex[slot] = resource.duplex_factor
            self.curved[slot] = (overridden
                                 or not resource.sharing._trivial)
            self.resources[slot] = resource
            self.dirbit[slot] = bool(key & 1)
            other = self.slot_of.get(key ^ 1)
            if other is not None:
                self.partner[slot] = other
                self.partner[other] = slot
            else:
                self.partner[slot] = -1
        else:
            self.count[slot] += 1
        return slot

    def remove_member(self, key: int) -> None:
        """Count one less flow on packed ``key``; tombstone at zero."""
        slot = self.slot_of[key]
        self.count[slot] -= 1
        if self.count[slot] == 0:
            self.alive[slot] = False
            self.live -= 1
            del self.slot_of[key]
            other = self.partner[slot]
            if other >= 0:
                self.partner[other] = -1
            self.partner[slot] = -1
            self.resources[slot] = None

    def refresh_faults(self) -> None:
        """Re-read every alive key's resource fault factor.

        Called from ``requery_capacity`` after the fault injector
        touched :meth:`~repro.sim.resources.Resource.set_fault_factor`
        on an unknown subset of resources.
        """
        for slot in np.nonzero(self.alive[:self.top])[0]:
            self.fault[slot] = self.resources[slot]._fault_factor

    def compact(self) -> np.ndarray:
        """Reclaim tombstoned slots; returns the old->new lookup table.

        The returned table has ``top + 1`` entries with the final entry
        -1, so callers can remap padded hop matrices in one take.
        """
        keep = np.nonzero(self.alive[:self.top])[0]
        lut = np.full(self.top + 1, -1, dtype=np.int64)
        lut[keep] = np.arange(len(keep))
        n = len(keep)
        for name in ("count", "cap_raw", "fault", "alive", "partner",
                     "sensitive", "duplex", "curved", "dirbit"):
            arr = getattr(self, name)
            arr[:n] = arr[keep]
            if name == "partner":
                arr[n:self.top] = -1
            elif name in ("fault", "duplex"):
                arr[n:self.top] = 1.0
            else:
                arr[n:self.top] = 0
        # Partners were old slot numbers; remap (dead partners are -1
        # already since tombstoning severs the link both ways).
        mask = self.partner[:n] >= 0
        self.partner[:n][mask] = lut[self.partner[:n][mask]]
        objs = [self.resources[int(s)] for s in keep]
        for slot in range(n):
            self.resources[slot] = objs[slot]
        for slot in range(n, self.top):
            self.resources[slot] = None
        self.slot_of = {key: int(lut[slot])
                        for key, slot in self.slot_of.items()}
        self.top = n
        return lut


def water_fill_reference(flows, members, resources) -> Dict["Flow", float]:
    """Progressive filling over dicts — the retained reference solver.

    This is the pre-vectorization implementation, kept as the oracle
    the property tests compare :func:`water_fill_arrays` against.  It
    computes the max-min fair allocation by repeatedly finding the
    tightest bottleneck (``remaining capacity / open flows``), freezing
    that bottleneck's flows at the fair share (rate-capped flows first
    when their cap is tighter), and charging the frozen rates to every
    crossed resource direction.

    ``flows`` is the insertion-ordered dict of active flows,
    ``members`` the packed-key -> flow-dict membership index, and
    ``resources`` the packed-resource-id -> resource map.  Returns the
    flow -> rate mapping.
    """
    remaining_cap: Dict[int, float] = {}
    open_count: Dict[int, int] = {}
    for key, flows_here in members.items():
        n_this = len(flows_here)
        other_bucket = members.get(key ^ 1)
        n_other = len(other_bucket) if other_bucket else 0
        direction = Direction.REV if key & 1 else Direction.FWD
        remaining_cap[key] = resources[key >> 1].effective_capacity(
            direction, n_this, n_other)
        open_count[key] = n_this

    frozen: Dict["Flow", float] = {}
    unfrozen: Dict["Flow", None] = dict(flows)

    def charge(flow, rate):
        for key in flow.hop_keys:
            remaining_cap[key] = max(0.0, remaining_cap[key] - rate)
            open_count[key] -= 1

    while unfrozen:
        best_share = math.inf
        best_key = -1
        for key, count in open_count.items():
            if count <= 0:
                continue
            share = remaining_cap[key] / count
            if share < best_share:
                best_share = share
                best_key = key

        capped = [f for f in unfrozen
                  if f.rate_cap is not None and f.rate_cap < best_share]
        if capped:
            tightest = min(f.rate_cap for f in capped)
            for flow in capped:
                if flow.rate_cap == tightest:
                    frozen[flow] = tightest
                    del unfrozen[flow]
                    charge(flow, tightest)
            continue

        if best_key < 0:
            for flow in unfrozen:
                if flow.rate_cap is None:
                    raise SimulationError(
                        f"flow {flow.label!r} is unconstrained")
                frozen[flow] = flow.rate_cap
            unfrozen.clear()
            break

        if best_share <= 0.0:
            resource = resources[best_key >> 1]
            direction = "rev" if best_key & 1 else "fwd"
            squeezed = [f.label or repr(f) for f in members[best_key]
                        if f not in frozen]
            raise SimulationError(
                f"resource {resource.name!r} ({direction}) has zero "
                f"effective capacity left for flow(s) "
                f"{', '.join(squeezed)}; its bandwidth is fully "
                "consumed by rate-capped or multi-hop flows")

        for flow in members[best_key]:
            if flow not in frozen:
                frozen[flow] = best_share
                del unfrozen[flow]
                charge(flow, best_share)

    return frozen


def water_fill_arrays(ft: FlowTable, kt: KeyTable,
                      active: np.ndarray,
                      members: Optional[Dict[int, Dict]] = None,
                      profile=None) -> np.ndarray:
    """Vectorized progressive filling; returns per-flow rates.

    ``active`` is the arrival-ordered array of live flow slots.  The
    returned rate array is parallel to it.  ``members`` is only touched
    on the zero-capacity error path (for the squeezed-flow labels in
    the diagnostic).

    Every float operation mirrors :func:`water_fill_reference` — see
    the module docstring for the bit-exactness contract.
    """
    F = len(active)
    caps_f = ft.rate_cap[active]
    hops_f = ft.hops[active]

    alive = np.nonzero(kt.alive[:kt.top])[0]
    K = len(alive)
    counts = kt.count[alive]
    partner = kt.partner[alive]
    n_other = np.where(partner >= 0,
                       kt.count[np.maximum(partner, 0)], 0)
    # Effective capacities under this load.  Load-insensitive keys are
    # raw capacity times the fault factor (multiplying by an exact 1.0
    # is the identity, so healthy resources round identically to the
    # reference's skip).  Duplex-only sensitive keys vectorize too:
    # the reference multiplies the faulted capacity by duplex_factor
    # while both directions are busy, then by the sharing factor — an
    # exact 1.0 for trivial curves, another identity multiply it skips.
    # Only curved keys (non-trivial sharing curve or an overridden
    # effective_capacity) take the Python method the reference calls.
    cap = kt.cap_raw[alive] * kt.fault[alive]
    sensitive = kt.sensitive[alive]
    curved = kt.curved[alive]
    dup = sensitive & ~curved & (counts > 0) & (n_other > 0)
    if dup.any():
        cap[dup] *= kt.duplex[alive[dup]]
    for i in np.nonzero(curved)[0]:
        slot = alive[i]
        direction = Direction.REV if kt.dirbit[slot] else Direction.FWD
        cap[i] = kt.resources[slot].effective_capacity(
            direction, int(counts[i]), int(n_other[i]))

    # Hop matrix in compact key positions.  The -1 padding indexes the
    # deliberately -1-valued final element of ``pos``, mapping to -1.
    pos = np.full(kt.top + 1, -1, dtype=np.int64)
    pos[alive] = np.arange(K)
    hp = pos[hops_f]

    remaining = cap
    open_ = counts.astype(np.int64, copy=True)
    unfrozen = np.ones(F, dtype=bool)
    rates = np.zeros(F)
    rounds = 0

    while unfrozen.any():
        rounds += 1
        valid = open_ > 0
        if valid.any():
            shares = np.where(valid,
                              remaining / np.where(valid, open_, 1),
                              np.inf)
            b = int(np.argmin(shares))
            best_share = float(shares[b])
        else:
            b = -1
            best_share = math.inf

        capped = unfrozen & (caps_f < best_share)
        if capped.any():
            tightest = float(caps_f[capped].min())
            freeze = unfrozen & (caps_f == tightest)
            rate = tightest
        elif b < 0:
            first = int(np.argmax(unfrozen))
            flow = ft.objs[int(active[first])]
            raise SimulationError(
                f"flow {flow.label!r} is unconstrained")
        else:
            if best_share <= 0.0:
                key_slot = int(alive[b])
                resource = kt.resources[key_slot]
                direction = "rev" if kt.dirbit[key_slot] else "fwd"
                packed = (id(resource) << 1) | int(kt.dirbit[key_slot])
                frozen_flows = {ft.objs[int(active[i])]
                                for i in np.nonzero(~unfrozen)[0]}
                bucket = (members or {}).get(packed, {})
                squeezed = [f.label or repr(f) for f in bucket
                            if f not in frozen_flows]
                raise SimulationError(
                    f"resource {resource.name!r} ({direction}) has zero "
                    f"effective capacity left for flow(s) "
                    f"{', '.join(squeezed)}; its bandwidth is fully "
                    "consumed by rate-capped or multi-hop flows")
            freeze = unfrozen & (hp == b).any(axis=1)
            rate = best_share

        rates[freeze] = rate
        unfrozen &= ~freeze
        if not unfrozen.any():
            break

        # Charge the frozen rates: the reference subtracts ``rate``
        # once per frozen crossing with an intermediate max(0, .)
        # clamp, so a key crossed k times is charged by k sequential
        # subtractions, not one fused k*rate (different rounding).
        fh = hp[freeze].ravel()
        fh = fh[fh >= 0]
        mult = np.bincount(fh, minlength=K)
        open_ -= mult
        pending = mult > 0
        while pending.any():
            remaining[pending] = np.maximum(0.0, remaining[pending] - rate)
            mult[pending] -= 1
            pending = mult > 0

    if profile is not None:
        profile.fill_rounds += rounds
    return rates
