"""Fluid flow network with max-min fair bandwidth allocation.

Every in-flight data transfer is a :class:`Flow` over a *route*: an
ordered list of ``(resource, direction)`` hops.  Whenever the set of
active flows changes, the network re-computes each flow's rate with the
classic progressive-filling (water-filling) algorithm, which yields the
max-min fair allocation subject to every hop's effective capacity.  This
mirrors how concurrent DMA copy streams share links on real multi-GPU
machines closely enough to reproduce the paper's parallel-copy results
(Figures 2-7): flows crossing an uncontended NVSwitch port rate at full
speed, while flows squeezed through a shared PCIe switch or the AC922's
X-Bus split its capacity.

The network is a *fluid* model: between allocation changes each flow
progresses linearly at its rate, so completion times can be scheduled
exactly and re-scheduled whenever the allocation changes.

The implementation is data-oriented, sized for simulations with many
thousands of flow arrivals (see :mod:`repro.sim.solver`):

* per-flow hot state (remaining bytes, rate, cap, completion token)
  lives in the parallel NumPy arrays of a :class:`~repro.sim.solver.FlowTable`;
  the :class:`Flow` objects expose it through properties;
* the max-min fill runs vectorized over those arrays
  (:func:`~repro.sim.solver.water_fill_arrays`), bit-identical to the
  retained dict reference;
* progress sweeps advance every flow with one vectorized subtraction —
  all active flows share a single last-advanced timestamp;
* completions live in the engine's :class:`~repro.sim.engine.ArrayCalendar`:
  a full reallocation *stages* the whole completion set in O(1) and the
  calendar sorts it once, lazily, so a burst of same-instant starts or
  finishes costs one rebuild instead of N heap storms.  Stale entries
  are invalidated by token, exactly like the previous per-object
  completion events.

A Python-dict membership index (packed ``(id(resource) << 1 | direction
bit)`` key -> arrival-ordered flow dict) is still maintained: the
observability recorder, the diagnostics in error paths and the retained
reference solver all read it, and keeping it costs O(route) per
transition.

A :class:`~repro.sim.engine.SimulationError` raised mid-fill (zero
effective capacity) leaves the network's indices consistent but its
rates stale; like the previous implementation, callers that catch it
should not keep simulating the affected flows.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.resources import Direction, Resource
from repro.sim.solver import (FlowTable, KeyTable, water_fill_arrays,
                              water_fill_reference)

Hop = Tuple[Resource, Direction]

#: Relative tolerance when deciding a flow has finished.
_EPSILON_BYTES = 1e-6

#: Active-flow count at or below which a reallocation dispatches to the
#: dict-walking reference solver instead of the vectorized one.  Each
#: fill round costs the vectorized solver a flat ~40-60us of NumPy
#: dispatch but the reference only ~2us per flow, so small fills are
#: faster in plain Python; both produce bit-identical rates (pinned by
#: tests/sim/test_solver_properties.py), so the switch is invisible.
_SMALL_FILL_N = 64

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class Flow:
    """One in-flight transfer of ``size`` bytes over a fixed route.

    The flow's :attr:`done` event succeeds (with the flow) when the last
    byte has been delivered.  ``rate_cap`` optionally limits the flow to
    a source/sink-specific rate, e.g. a GPU copy engine's bandwidth.

    While the flow is active its ``remaining`` and ``rate`` live in the
    network's flow table (slot ``_slot``); on finish or abort the final
    values are written back here and the slot is released.
    """

    __slots__ = ("network", "route", "size", "rate_cap", "label",
                 "started_at", "finished_at", "done",
                 "hops", "hop_keys", "resources",
                 "_finish_threshold", "_credited", "_slot", "_rem", "_rate")

    def __init__(
        self,
        network: "FlowNetwork",
        route: Sequence[Hop],
        size: float,
        rate_cap: Optional[float] = None,
        label: str = "",
    ):
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {rate_cap}")
        self.network = network
        self.route: Tuple[Hop, ...] = tuple(route)
        self.size = float(size)
        self.rate_cap = rate_cap
        self.label = label
        self.started_at = network.env.now
        self.finished_at: Optional[float] = None
        self.done: Event = network.env.event()
        self._finish_threshold = _EPSILON_BYTES * max(self.size, 1.0)
        #: Bytes already credited to the network's delivered counters.
        self._credited = 0.0
        #: Flow-table slot while active; ``None`` once detached.
        self._slot: Optional[int] = None
        self._rem = self.size
        self._rate = 0.0
        # Deduplicated hops, resolved once: `hops` keeps the first
        # occurrence of every (resource, direction); `hop_keys` are the
        # packed integer membership keys; `resources` each distinct
        # resource once, regardless of direction.
        hops: List[Hop] = []
        keys: List[int] = []
        resources: List[Resource] = []
        seen_keys = set()
        seen_rids = set()
        for resource, direction in self.route:
            key = (id(resource) << 1) | (direction is Direction.REV)
            if key not in seen_keys:
                seen_keys.add(key)
                hops.append((resource, direction))
                keys.append(key)
            rid = id(resource)
            if rid not in seen_rids:
                seen_rids.add(rid)
                resources.append(resource)
        self.hops: Tuple[Hop, ...] = tuple(hops)
        self.hop_keys: Tuple[int, ...] = tuple(keys)
        self.resources: Tuple[Resource, ...] = tuple(resources)

    @property
    def remaining(self) -> float:
        """Bytes not yet delivered (as of the last progress sweep)."""
        slot = self._slot
        if slot is None:
            return self._rem
        return float(self.network._ft.remaining[slot])

    @property
    def rate(self) -> float:
        """Currently allocated rate in bytes/second."""
        slot = self._slot
        if slot is None:
            return self._rate
        return float(self.network._ft.rate[slot])

    @property
    def active(self) -> bool:
        """Whether the flow still has bytes to deliver."""
        return self.finished_at is None

    def _detach(self, remaining: float, rate: float) -> None:
        """Freeze final values on the object and release the table slot."""
        self._rem = remaining
        self._rate = rate
        self._slot = None

    def __repr__(self) -> str:
        return (f"<Flow {self.label or id(self)} size={self.size:.3g} "
                f"remaining={self.remaining:.3g} rate={self.rate:.3g}>")


class FlowNetwork:
    """Tracks active flows and keeps their max-min fair rates current."""

    def __init__(self, env: Environment):
        self.env = env
        #: Active flows in arrival order (insertion-ordered dict-as-set).
        self._flows: Dict[Flow, None] = {}
        #: Membership index: packed (resource, direction) key -> the
        #: active flows crossing it, in arrival order.
        self._members: Dict[int, Dict[Flow, None]] = {}
        #: Resources currently crossed by at least one active flow.
        self._resources: Dict[int, Resource] = {}
        #: Per-resource active-flow reference counts (both directions).
        self._refs: Dict[int, int] = {}
        self._delivered: Dict[Tuple[Resource, Direction], float] = {}
        #: Array-of-struct flow and membership-key state (the hot path).
        self._ft = FlowTable()
        self._kt = KeyTable()
        #: Array completion calendar, registered with the engine.
        self._cal = env.register_calendar(
            self._on_completion_slot, self._times_of, self._valid_of)
        #: Monotone completion-token counter.  Tokens are globally
        #: unique per (re)schedule, so a stale calendar entry can never
        #: collide with a later assignment — not even across table
        #: compactions that renumber slots.
        self._next_token = 1
        #: Simulated time of the last full advancement sweep.  Every
        #: active flow is advanced at every sweep, so one timestamp
        #: serves them all (the invariant the vectorized sweep needs).
        self._advanced_at = -math.inf
        #: Whether a flow may already sit below its finish threshold
        #: (forces the next sweep even with no time elapsed).
        self._may_have_finished = False
        #: Whether a fault factor may have changed since the last
        #: reallocation (set by :meth:`requery_capacity`).  Gates the
        #: ``refresh_faults`` sweep: on a healthy machine no key ever
        #: needs re-reading, so the per-reallocation cost is one flag
        #: test instead of an O(alive keys) Python loop.
        self._faults_dirty = False
        #: Allocation statistics (for the ``simcore`` benchmark).
        self.full_reallocations = 0
        self.fast_starts = 0
        self.fast_finishes = 0
        self.batched_starts = 0
        self.completion_events = 0
        #: Flows removed before completion (faults, timeouts, interrupts).
        self.aborted_flows = 0
        #: Observability recorder (:mod:`repro.obs`), or ``None``.  Every
        #: hook below is gated on a plain ``is None`` check so a network
        #: without observers pays one pointer test per transition; the
        #: recorder only reads, so rates and completion times are
        #: bit-identical with it attached.
        self.obs = None

    # -- public API -------------------------------------------------------
    def start_flow(
        self,
        route: Sequence[Hop],
        size: float,
        rate_cap: Optional[float] = None,
        label: str = "",
    ) -> Flow:
        """Begin transferring ``size`` bytes along ``route``.

        Returns the new :class:`Flow`; wait on ``flow.done`` for
        completion.  Zero-byte flows complete immediately.
        """
        flow = Flow(self, route, size, rate_cap=rate_cap, label=label)
        if flow.size <= 0.0:
            flow.finished_at = self.env.now
            flow._rem = 0.0
            flow.done.succeed(flow)
            return flow
        if not flow.route and flow.rate_cap is None:
            raise SimulationError(
                f"flow {label!r} has neither a route nor a rate cap; "
                "its rate would be unbounded")
        finished = self._advance_all()
        refs = self._refs
        disjoint = not finished and not any(
            refs.get(id(resource), 0) for resource in flow.resources)
        self._insert(flow)
        if flow.size <= flow._finish_threshold:
            # Sub-epsilon (but non-zero) flow: make sure the next sweep
            # picks it up even if no simulated time passes first.
            self._may_have_finished = True
        if disjoint:
            self._allocate_single(flow)
        else:
            self._reallocate()
        obs = self.obs
        if obs is not None:
            obs.flow_started(self, flow)
            obs.rates_changed(self)
        return flow

    def start_flows(
        self,
        requests: Sequence[Tuple[Sequence[Hop], float,
                                 Optional[float], str]],
    ) -> List[Flow]:
        """Start several flows at one instant with a *single* fill.

        ``requests`` is a sequence of ``(route, size, rate_cap, label)``
        tuples.  Semantically this equals N :meth:`start_flow` calls at
        the same simulated instant — the final max-min allocation over
        the combined flow set is identical — but the progressive fill
        runs once instead of once per arrival.  The cross-node exchange
        of the hierarchical sort launches whole waves of fabric flows
        this way; without batching, a 64-node all-to-all round would
        pay 63 intermediate fills whose rates are superseded within
        the same instant.  Returns the flows in request order.
        """
        self._advance_all()
        flows: List[Flow] = []
        started: List[Flow] = []
        for route, size, rate_cap, label in requests:
            flow = Flow(self, route, size, rate_cap=rate_cap, label=label)
            flows.append(flow)
            if flow.size <= 0.0:
                flow.finished_at = self.env.now
                flow._rem = 0.0
                flow.done.succeed(flow)
                continue
            if not flow.route and flow.rate_cap is None:
                raise SimulationError(
                    f"flow {label!r} has neither a route nor a rate cap; "
                    "its rate would be unbounded")
            self._insert(flow)
            if flow.size <= flow._finish_threshold:
                self._may_have_finished = True
            started.append(flow)
        if started:
            self.batched_starts += 1
            self._reallocate()
        obs = self.obs
        if obs is not None:
            for flow in started:
                obs.flow_started(self, flow)
            if started:
                obs.rates_changed(self)
        return flows

    def transfer(self, route: Sequence[Hop], size: float,
                 rate_cap: Optional[float] = None, label: str = ""):
        """Process-style helper: ``yield from network.transfer(...)``."""
        flow = self.start_flow(route, size, rate_cap=rate_cap, label=label)
        yield flow.done
        return flow

    @property
    def active_flows(self) -> List[Flow]:
        """Snapshot of the currently active flows, in arrival order."""
        return list(self._flows)

    def flows_crossing(self, resource: Resource) -> List[Flow]:
        """Active flows crossing ``resource`` in either direction."""
        rid2 = id(resource) << 1
        seen: Dict[Flow, None] = {}
        for key in (rid2, rid2 | 1):
            bucket = self._members.get(key)
            if bucket:
                for flow in bucket:
                    seen[flow] = None
        return list(seen)

    def abort_flow(self, flow: Flow, exc: Optional[BaseException] = None):
        """Remove an active flow before its last byte is delivered.

        Progress up to *now* is credited to the delivered counters, the
        flow leaves the network (surviving flows are re-rated), and any
        scheduled completion is invalidated via the completion token.
        With ``exc`` the flow's ``done`` event fails with it (pre-defused,
        so a waiter that already raced past — e.g. an ``AnyOf`` timeout —
        does not crash the environment); without, ``done`` stays pending
        and the caller is expected to stop waiting on it.

        A flow that already finished (or reaches its finish threshold in
        the catch-up sweep at this very instant) is left untouched.
        """
        if not flow.active:
            return
        self._advance_all()
        if not flow.active:
            return
        del self._flows[flow]
        self._remove(flow)
        ft = self._ft
        slot = flow._slot
        remaining = float(ft.remaining[slot])
        partial = flow.size - remaining - flow._credited
        if partial > 0:
            self._credit(flow, partial)
        flow.finished_at = self.env.now
        ft.objs[slot] = None
        flow._detach(remaining, 0.0)
        self.aborted_flows += 1
        if exc is not None:
            flow.done.fail(exc)
            flow.done.defused = True
        if self._flows:
            self._reallocate()
        obs = self.obs
        if obs is not None:
            obs.flow_aborted(self, flow)
            obs.rates_changed(self)

    def requery_capacity(self) -> None:
        """Re-rate every active flow after an external capacity change.

        Called when a resource's effective capacity changed for reasons
        the membership index cannot see — e.g. the fault injector
        setting a :meth:`~repro.sim.resources.Resource.set_fault_factor`
        degradation window.
        """
        self._faults_dirty = True
        self._advance_all()
        if self._flows:
            self._reallocate()
        if self.obs is not None:
            self.obs.rates_changed(self)

    @property
    def delivered(self) -> Dict[Tuple[Resource, Direction], float]:
        """Total bytes delivered over each resource direction (for traces).

        Progress of *active* flows is accounted lazily — reading this
        property credits every flow's uncredited progress first, so the
        returned counters are exact as of the current simulated time.
        """
        now = self.env.now
        ft = self._ft
        elapsed = now - self._advanced_at
        for flow in self._flows:
            slot = flow._slot
            rate = float(ft.rate[slot])
            rem = float(ft.remaining[slot])
            progress = flow.size - rem - flow._credited
            if elapsed > 0 and rate > 0:
                progress += min(rate * elapsed, rem)
            if progress > 0:
                self._credit(flow, progress)
        return self._delivered

    def _credit(self, flow: Flow, progress: float) -> None:
        """Attribute ``progress`` bytes to every hop of ``flow``."""
        delivered = self._delivered
        for hop in flow.route:
            delivered[hop] = delivered.get(hop, 0.0) + progress
        flow._credited += progress

    def utilization(self, resource: Resource, direction: Direction) -> float:
        """Aggregate current rate crossing ``resource`` in ``direction``."""
        key = (id(resource) << 1) | (direction is Direction.REV)
        flows_here = self._members.get(key)
        if not flows_here:
            return 0.0
        total = 0.0
        for flow in flows_here:
            total += flow.rate
        return total

    # -- membership index -------------------------------------------------
    def _insert(self, flow: Flow) -> None:
        self._flows[flow] = None
        members = self._members
        for key in flow.hop_keys:
            bucket = members.get(key)
            if bucket is None:
                members[key] = {flow: None}
            else:
                bucket[flow] = None
        refs = self._refs
        resources = self._resources
        for resource in flow.resources:
            rid = id(resource)
            count = refs.get(rid, 0)
            if count == 0:
                resources[rid] = resource
            refs[rid] = count + 1
        kt = self._kt
        key_slots = [kt.add_member(key, resource)
                     for (resource, _d), key in zip(flow.hops,
                                                    flow.hop_keys)]
        flow._slot = self._ft.insert(flow, key_slots)

    def _remove(self, flow: Flow) -> None:
        members = self._members
        for key in flow.hop_keys:
            bucket = members[key]
            del bucket[flow]
            if not bucket:
                del members[key]
        refs = self._refs
        for resource in flow.resources:
            rid = id(resource)
            count = refs[rid] - 1
            if count:
                refs[rid] = count
            else:
                del refs[rid]
                del self._resources[rid]
        kt = self._kt
        for key in flow.hop_keys:
            kt.remove_member(key)
        self._ft.deactivate(flow._slot)

    # -- calendar callbacks ----------------------------------------------
    def _times_of(self, slots: np.ndarray) -> np.ndarray:
        ft = self._ft
        return self.env._now + ft.remaining[slots] / ft.rate[slots]

    def _valid_of(self, slots: np.ndarray, tokens: np.ndarray) -> np.ndarray:
        ft = self._ft
        return ft.active[slots] & (ft.token[slots] == tokens)

    # -- internals --------------------------------------------------------
    def _advance_all(self) -> List[Flow]:
        """Account progress of every flow since the last sweep.

        Returns the flows that reached (epsilon-)completion and were
        finished in the process.

        Delivered-bytes accounting is *not* done here — progress is
        credited lazily (on finish, or when :attr:`delivered` is read),
        so the sweep is one vectorized subtraction.  Sweeps repeated at
        one simulated instant short-circuit.
        """
        now = self.env.now
        if now == self._advanced_at and not self._may_have_finished:
            return []
        prof = self.env._profile
        if prof is not None:
            t0 = perf_counter()
        ft = self._ft
        act = ft.active_slots()
        finished: List[Flow] = []
        if len(act):
            elapsed = now - self._advanced_at
            if elapsed > 0:
                remaining = ft.remaining
                moved = np.minimum(ft.rate[act] * elapsed, remaining[act])
                remaining[act] -= moved
            below = ft.remaining[act] <= ft.threshold[act]
            if below.any():
                finished = [ft.objs[int(s)] for s in act[below]]
        self._advanced_at = now
        self._may_have_finished = False
        if prof is not None:
            prof.advance_s += perf_counter() - t0
        for flow in finished:
            self._finish(flow)
        return finished

    def _finish(self, flow: Flow) -> None:
        if flow in self._flows:
            del self._flows[flow]
            self._remove(flow)
        if flow.finished_at is None:
            ft = self._ft
            slot = flow._slot
            if slot is not None:
                finale = (flow.size - float(ft.remaining[slot])
                          - flow._credited)
                rate = float(ft.rate[slot])
                ft.objs[slot] = None
                flow._detach(0.0, rate)
            else:
                finale = flow.size - flow._rem - flow._credited
                flow._rem = 0.0
            if finale > 0:
                self._credit(flow, finale)
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            obs = self.obs
            if obs is not None:
                obs.flow_retired(self, flow)

    def _on_completion_slot(self, slot: int, token: int) -> None:
        """A scheduled completion fired (dispatched by the calendar)."""
        ft = self._ft
        if not ft.active[slot] or ft.token[slot] != token:
            return  # superseded by a later reallocation
        flow = ft.objs[slot]
        self.completion_events += 1
        finished = self._advance_all()
        if flow.active:
            # Numerical slack: force-finish, the residual is < epsilon.
            self._finish(flow)
            finished.append(flow)
        refs = self._refs
        for done in finished:
            for resource in done.resources:
                if refs.get(id(resource), 0):
                    # A surviving flow shares a resource with a finished
                    # one; its effective capacity changed.
                    self._reallocate()
                    if self.obs is not None:
                        self.obs.rates_changed(self)
                    return
        # Disjoint removal: every surviving flow keeps its rate and its
        # already-scheduled completion.
        self.fast_finishes += 1
        if self.obs is not None:
            # Even without a reallocation the finished flows' links
            # dropped their contribution — refresh the link gauges.
            self.obs.rates_changed(self)

    def _allocate_single(self, flow: Flow) -> None:
        """Fast path: rate a flow whose resources nobody else crosses.

        The flow's max-min rate is then simply the minimum effective
        capacity along its (deduplicated) hops, further limited by its
        rate cap; no other flow's allocation changes.
        """
        members = self._members
        rate = math.inf
        for (resource, direction), key in zip(flow.hops, flow.hop_keys):
            other_bucket = members.get(key ^ 1)
            cap = resource.effective_capacity(
                direction, 1, 1 if other_bucket else 0)
            if cap < rate:
                rate = cap
        if flow.rate_cap is not None and flow.rate_cap < rate:
            rate = flow.rate_cap
        if rate <= 0 or math.isinf(rate):
            raise SimulationError(
                f"flow {flow.label!r} was allocated zero bandwidth")
        ft = self._ft
        slot = flow._slot
        ft.rate[slot] = rate
        self.fast_starts += 1
        token = self._next_token
        self._next_token = token + 1
        ft.token[slot] = token
        eid = self.env._reserve_eids(1)
        delay = float(ft.remaining[slot]) / rate
        self._cal.push(self.env._now + delay, eid, slot, token)

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and restage all completions."""
        self.full_reallocations += 1
        ft, kt = self._ft, self._kt
        # Compact sparsely populated tables.  Stale calendar entries may
        # survive a renumbering, but globally unique tokens make them
        # inert no-ops wherever they land.
        lut = kt.compact() if kt.top >= 64 and kt.live * 2 < kt.top else None
        if ft.top >= 128 and ft.live * 2 < ft.top:
            ft.compact()
        if lut is not None:
            ft.remap_keys(lut)
        # Fault factors can change out-of-band (the injector); re-read
        # them so the cached capacities match what the reference would
        # compute live.  The injector's contract is to follow every
        # set_fault_factor with requery_capacity, which raises the
        # dirty flag — so a healthy run never pays the sweep, and a
        # faulted one pays it once per capacity change, not once per
        # reallocation.  (add_member reads the live factor at insert,
        # so new keys are correct without it.)
        if self._faults_dirty:
            kt.refresh_faults()
            self._faults_dirty = False
        act = ft.active_slots()
        n = len(act)
        if n == 0:
            self._cal.stage(act, _EMPTY_I64, _EMPTY_I64)
            return
        prof = self.env._profile
        if prof is not None:
            t0 = perf_counter()
        if n <= _SMALL_FILL_N:
            by_flow = water_fill_reference(self._flows, self._members,
                                           self._resources)
            rates = np.array([by_flow[ft.objs[slot]] for slot in act])
        else:
            rates = water_fill_arrays(ft, kt, act, members=self._members,
                                      profile=prof)
        if prof is not None:
            prof.fill_s += perf_counter() - t0
            prof.fills += 1
        bad = rates <= 0.0
        if bad.any():
            flow = ft.objs[int(act[int(np.argmax(bad))])]
            raise SimulationError(
                f"flow {flow.label!r} was allocated zero bandwidth")
        ft.rate[act] = rates
        token0 = self._next_token
        self._next_token = token0 + n
        tokens = np.arange(token0, token0 + n, dtype=np.int64)
        ft.token[act] = tokens
        eid0 = self.env._reserve_eids(n)
        eids = np.arange(eid0, eid0 + n, dtype=np.int64)
        self._cal.stage(act, eids, tokens)
