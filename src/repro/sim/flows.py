"""Fluid flow network with max-min fair bandwidth allocation.

Every in-flight data transfer is a :class:`Flow` over a *route*: an
ordered list of ``(resource, direction)`` hops.  Whenever the set of
active flows changes, the network re-computes each flow's rate with the
classic progressive-filling (water-filling) algorithm, which yields the
max-min fair allocation subject to every hop's effective capacity.  This
mirrors how concurrent DMA copy streams share links on real multi-GPU
machines closely enough to reproduce the paper's parallel-copy results
(Figures 2-7): flows crossing an uncontended NVSwitch port rate at full
speed, while flows squeezed through a shared PCIe switch or the AC922's
X-Bus split its capacity.

The network is a *fluid* model: between allocation changes each flow
progresses linearly at its rate, so completion times can be scheduled
exactly and re-scheduled whenever the allocation changes.

The implementation is incremental, sized for simulations with thousands
of flow arrivals:

* each flow's deduplicated hops are resolved once at construction;
* a persistent per-``(resource, direction)`` membership index is
  maintained on flow add/remove instead of being re-derived from every
  route on every allocation change;
* a flow whose resources are untouched by any other active flow takes a
  fast path — its rate is the plain bottleneck minimum and nobody else
  is re-allocated (disjoint routes keep their rates);
* completions are heap-scheduled events invalidated by token, not
  watcher processes — a reallocation costs one event per flow, no
  generator churn.

Membership keys pack ``(id(resource), direction)`` into one integer
(``id << 1 | direction bit``) so the hot dictionaries never hash enum
members or tuples.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.resources import Direction, Resource

Hop = Tuple[Resource, Direction]

#: Relative tolerance when deciding a flow has finished.
_EPSILON_BYTES = 1e-6


class Flow:
    """One in-flight transfer of ``size`` bytes over a fixed route.

    The flow's :attr:`done` event succeeds (with the flow) when the last
    byte has been delivered.  ``rate_cap`` optionally limits the flow to
    a source/sink-specific rate, e.g. a GPU copy engine's bandwidth.
    """

    __slots__ = ("network", "route", "size", "remaining", "rate_cap",
                 "label", "rate", "started_at", "finished_at", "done",
                 "hops", "hop_keys", "resources",
                 "_completion_token", "_last_update", "_finish_threshold",
                 "_credited")

    def __init__(
        self,
        network: "FlowNetwork",
        route: Sequence[Hop],
        size: float,
        rate_cap: Optional[float] = None,
        label: str = "",
    ):
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {rate_cap}")
        self.network = network
        self.route: Tuple[Hop, ...] = tuple(route)
        self.size = float(size)
        self.remaining = float(size)
        self.rate_cap = rate_cap
        self.label = label
        self.rate = 0.0
        self.started_at = network.env.now
        self.finished_at: Optional[float] = None
        self.done: Event = network.env.event()
        self._completion_token = 0
        self._last_update = self.started_at
        self._finish_threshold = _EPSILON_BYTES * max(self.size, 1.0)
        #: Bytes already credited to the network's delivered counters.
        self._credited = 0.0
        # Deduplicated hops, resolved once: `hops` keeps the first
        # occurrence of every (resource, direction); `hop_keys` are the
        # packed integer membership keys; `resources` each distinct
        # resource once, regardless of direction.
        hops: List[Hop] = []
        keys: List[int] = []
        resources: List[Resource] = []
        seen_keys = set()
        seen_rids = set()
        for resource, direction in self.route:
            key = (id(resource) << 1) | (direction is Direction.REV)
            if key not in seen_keys:
                seen_keys.add(key)
                hops.append((resource, direction))
                keys.append(key)
            rid = id(resource)
            if rid not in seen_rids:
                seen_rids.add(rid)
                resources.append(resource)
        self.hops: Tuple[Hop, ...] = tuple(hops)
        self.hop_keys: Tuple[int, ...] = tuple(keys)
        self.resources: Tuple[Resource, ...] = tuple(resources)

    @property
    def active(self) -> bool:
        """Whether the flow still has bytes to deliver."""
        return self.finished_at is None

    def __repr__(self) -> str:
        return (f"<Flow {self.label or id(self)} size={self.size:.3g} "
                f"remaining={self.remaining:.3g} rate={self.rate:.3g}>")


class _Completion(Event):
    """Heap-scheduled completion of one flow at its current rate.

    Like a :class:`~repro.sim.engine.Timeout`, the event is triggered at
    creation and fires after ``delay``; unlike the old per-flow watcher
    *processes*, it is a single heap entry with a single callback.  A
    reallocation bumps the flow's ``_completion_token``, turning any
    previously scheduled completion into a no-op when it fires.
    """

    __slots__ = ("flow", "token")

    def __init__(self, network: "FlowNetwork", flow: Flow, delay: float):
        # Inlined Event.__init__ + Environment._schedule: a reallocation
        # creates one of these per flow, so construction cost is the
        # dominant term of the allocator's own overhead.
        env = network.env
        self.env = env
        self.callbacks = [network._completion_cb]
        self._value = flow
        self._ok = True
        self.defused = False
        self.flow = flow
        self.token = flow._completion_token
        env._eid += 1
        heapq.heappush(env._queue, (env._now + delay, env._eid, self))


class FlowNetwork:
    """Tracks active flows and keeps their max-min fair rates current."""

    def __init__(self, env: Environment):
        self.env = env
        #: Active flows in arrival order (insertion-ordered dict-as-set).
        self._flows: Dict[Flow, None] = {}
        #: Membership index: packed (resource, direction) key -> the
        #: active flows crossing it, in arrival order.
        self._members: Dict[int, Dict[Flow, None]] = {}
        #: Resources currently crossed by at least one active flow.
        self._resources: Dict[int, Resource] = {}
        #: Per-resource active-flow reference counts (both directions).
        self._refs: Dict[int, int] = {}
        self._delivered: Dict[Tuple[Resource, Direction], float] = {}
        #: Simulated time of the last full advancement sweep.
        self._advanced_at = -math.inf
        #: Whether a flow may already sit below its finish threshold
        #: (forces the next sweep even with no time elapsed).
        self._may_have_finished = False
        #: Pre-bound completion callback, shared by every scheduled
        #: completion event (avoids a bound-method allocation apiece).
        self._completion_cb = self._on_completion
        #: Allocation statistics (for the ``simcore`` benchmark).
        self.full_reallocations = 0
        self.fast_starts = 0
        self.fast_finishes = 0
        self.completion_events = 0
        #: Flows removed before completion (faults, timeouts, interrupts).
        self.aborted_flows = 0
        #: Observability recorder (:mod:`repro.obs`), or ``None``.  Every
        #: hook below is gated on a plain ``is None`` check so a network
        #: without observers pays one pointer test per transition; the
        #: recorder only reads, so rates and completion times are
        #: bit-identical with it attached.
        self.obs = None

    # -- public API -------------------------------------------------------
    def start_flow(
        self,
        route: Sequence[Hop],
        size: float,
        rate_cap: Optional[float] = None,
        label: str = "",
    ) -> Flow:
        """Begin transferring ``size`` bytes along ``route``.

        Returns the new :class:`Flow`; wait on ``flow.done`` for
        completion.  Zero-byte flows complete immediately.
        """
        flow = Flow(self, route, size, rate_cap=rate_cap, label=label)
        if flow.size <= 0.0:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        if not flow.route and flow.rate_cap is None:
            raise SimulationError(
                f"flow {label!r} has neither a route nor a rate cap; "
                "its rate would be unbounded")
        finished = self._advance_all()
        refs = self._refs
        disjoint = not finished and not any(
            refs.get(id(resource), 0) for resource in flow.resources)
        self._insert(flow)
        if flow.remaining <= flow._finish_threshold:
            # Sub-epsilon (but non-zero) flow: make sure the next sweep
            # picks it up even if no simulated time passes first.
            self._may_have_finished = True
        if disjoint:
            self._allocate_single(flow)
        else:
            self._reallocate()
        obs = self.obs
        if obs is not None:
            obs.flow_started(self, flow)
            obs.rates_changed(self)
        return flow

    def transfer(self, route: Sequence[Hop], size: float,
                 rate_cap: Optional[float] = None, label: str = ""):
        """Process-style helper: ``yield from network.transfer(...)``."""
        flow = self.start_flow(route, size, rate_cap=rate_cap, label=label)
        yield flow.done
        return flow

    @property
    def active_flows(self) -> List[Flow]:
        """Snapshot of the currently active flows, in arrival order."""
        return list(self._flows)

    def flows_crossing(self, resource: Resource) -> List[Flow]:
        """Active flows crossing ``resource`` in either direction."""
        rid2 = id(resource) << 1
        seen: Dict[Flow, None] = {}
        for key in (rid2, rid2 | 1):
            bucket = self._members.get(key)
            if bucket:
                for flow in bucket:
                    seen[flow] = None
        return list(seen)

    def abort_flow(self, flow: Flow, exc: Optional[BaseException] = None):
        """Remove an active flow before its last byte is delivered.

        Progress up to *now* is credited to the delivered counters, the
        flow leaves the network (surviving flows are re-rated), and any
        scheduled completion is invalidated via the completion token.
        With ``exc`` the flow's ``done`` event fails with it (pre-defused,
        so a waiter that already raced past — e.g. an ``AnyOf`` timeout —
        does not crash the environment); without, ``done`` stays pending
        and the caller is expected to stop waiting on it.

        A flow that already finished (or reaches its finish threshold in
        the catch-up sweep at this very instant) is left untouched.
        """
        if not flow.active:
            return
        self._advance_all()
        if not flow.active:
            return
        del self._flows[flow]
        self._remove(flow)
        flow._completion_token += 1
        partial = flow.size - flow.remaining - flow._credited
        if partial > 0:
            self._credit(flow, partial)
        flow.finished_at = self.env.now
        flow.rate = 0.0
        self.aborted_flows += 1
        if exc is not None:
            flow.done.fail(exc)
            flow.done.defused = True
        if self._flows:
            self._reallocate()
        obs = self.obs
        if obs is not None:
            obs.flow_aborted(self, flow)
            obs.rates_changed(self)

    def requery_capacity(self) -> None:
        """Re-rate every active flow after an external capacity change.

        Called when a resource's effective capacity changed for reasons
        the membership index cannot see — e.g. the fault injector
        setting a :meth:`~repro.sim.resources.Resource.set_fault_factor`
        degradation window.
        """
        self._advance_all()
        if self._flows:
            self._reallocate()
        if self.obs is not None:
            self.obs.rates_changed(self)

    @property
    def delivered(self) -> Dict[Tuple[Resource, Direction], float]:
        """Total bytes delivered over each resource direction (for traces).

        Progress of *active* flows is accounted lazily — reading this
        property credits every flow's uncredited progress first, so the
        returned counters are exact as of the current simulated time.
        """
        now = self.env.now
        for flow in self._flows:
            elapsed = now - flow._last_update
            progress = flow.size - flow.remaining - flow._credited
            if elapsed > 0 and flow.rate > 0:
                progress += min(flow.rate * elapsed, flow.remaining)
            if progress > 0:
                self._credit(flow, progress)
        return self._delivered

    def _credit(self, flow: Flow, progress: float) -> None:
        """Attribute ``progress`` bytes to every hop of ``flow``."""
        delivered = self._delivered
        for hop in flow.route:
            delivered[hop] = delivered.get(hop, 0.0) + progress
        flow._credited += progress

    def utilization(self, resource: Resource, direction: Direction) -> float:
        """Aggregate current rate crossing ``resource`` in ``direction``."""
        key = (id(resource) << 1) | (direction is Direction.REV)
        flows_here = self._members.get(key)
        if not flows_here:
            return 0.0
        total = 0.0
        for flow in flows_here:
            total += flow.rate
        return total

    # -- membership index -------------------------------------------------
    def _insert(self, flow: Flow) -> None:
        self._flows[flow] = None
        members = self._members
        for key in flow.hop_keys:
            bucket = members.get(key)
            if bucket is None:
                members[key] = {flow: None}
            else:
                bucket[flow] = None
        refs = self._refs
        resources = self._resources
        for resource in flow.resources:
            rid = id(resource)
            count = refs.get(rid, 0)
            if count == 0:
                resources[rid] = resource
            refs[rid] = count + 1

    def _remove(self, flow: Flow) -> None:
        members = self._members
        for key in flow.hop_keys:
            bucket = members[key]
            del bucket[flow]
            if not bucket:
                del members[key]
        refs = self._refs
        for resource in flow.resources:
            rid = id(resource)
            count = refs[rid] - 1
            if count:
                refs[rid] = count
            else:
                del refs[rid]
                del self._resources[rid]

    # -- internals --------------------------------------------------------
    def _advance_all(self) -> List[Flow]:
        """Account progress of every flow since its last update.

        Returns the flows that reached (epsilon-)completion and were
        finished in the process.

        Delivered-bytes accounting is *not* done here — progress is
        credited lazily (on finish, or when :attr:`delivered` is read),
        so the per-event sweep is a handful of float operations per
        flow.  Sweeps repeated at one simulated instant short-circuit.
        """
        now = self.env.now
        if now == self._advanced_at and not self._may_have_finished:
            return []
        finished: List[Flow] = []
        for flow in self._flows:
            elapsed = now - flow._last_update
            if elapsed > 0 and flow.rate > 0:
                moved = flow.rate * elapsed
                moved = min(moved, flow.remaining)
                flow.remaining -= moved
                flow._last_update = now
            elif elapsed > 0:
                flow._last_update = now
            if flow.remaining <= flow._finish_threshold:
                finished.append(flow)
        self._advanced_at = now
        self._may_have_finished = False
        for flow in finished:
            self._finish(flow)
        return finished

    def _finish(self, flow: Flow) -> None:
        if flow in self._flows:
            del self._flows[flow]
            self._remove(flow)
        if flow.finished_at is None:
            finale = flow.size - flow.remaining - flow._credited
            if finale > 0:
                self._credit(flow, finale)
            flow.finished_at = self.env.now
            flow.remaining = 0.0
            flow.done.succeed(flow)
            obs = self.obs
            if obs is not None:
                obs.flow_retired(self, flow)

    def _on_completion(self, event: _Completion) -> None:
        """A flow's scheduled completion time arrived."""
        flow = event.flow
        if event.token != flow._completion_token or not flow.active:
            return  # superseded by a later reallocation
        self.completion_events += 1
        finished = self._advance_all()
        if flow.active:
            # Numerical slack: force-finish, the residual is < epsilon.
            self._finish(flow)
            finished.append(flow)
        refs = self._refs
        for done in finished:
            for resource in done.resources:
                if refs.get(id(resource), 0):
                    # A surviving flow shares a resource with a finished
                    # one; its effective capacity changed.
                    self._reallocate()
                    if self.obs is not None:
                        self.obs.rates_changed(self)
                    return
        # Disjoint removal: every surviving flow keeps its rate and its
        # already-scheduled completion.
        self.fast_finishes += 1
        if self.obs is not None:
            # Even without a reallocation the finished flows' links
            # dropped their contribution — refresh the link gauges.
            self.obs.rates_changed(self)

    def _allocate_single(self, flow: Flow) -> None:
        """Fast path: rate a flow whose resources nobody else crosses.

        The flow's max-min rate is then simply the minimum effective
        capacity along its (deduplicated) hops, further limited by its
        rate cap; no other flow's allocation changes.
        """
        members = self._members
        rate = math.inf
        for (resource, direction), key in zip(flow.hops, flow.hop_keys):
            other_bucket = members.get(key ^ 1)
            cap = resource.effective_capacity(
                direction, 1, 1 if other_bucket else 0)
            if cap < rate:
                rate = cap
        if flow.rate_cap is not None and flow.rate_cap < rate:
            rate = flow.rate_cap
        if rate <= 0 or math.isinf(rate):
            raise SimulationError(
                f"flow {flow.label!r} was allocated zero bandwidth")
        flow.rate = rate
        self.fast_starts += 1
        flow._completion_token += 1
        _Completion(self, flow, flow.remaining / rate)

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and reschedule all completions."""
        self.full_reallocations += 1
        if self._flows:
            self._water_fill()
        now = self.env.now
        for flow in self._flows:
            flow._last_update = now
            flow._completion_token += 1
            if flow.rate <= 0:
                raise SimulationError(
                    f"flow {flow.label!r} was allocated zero bandwidth")
            _Completion(self, flow, flow.remaining / flow.rate)

    def _water_fill(self) -> None:
        """Progressive filling over all constrained resource directions.

        Uses the persistent membership index: effective capacities come
        from the per-direction member counts, and the per-bottleneck
        "open" (not yet frozen) flow counts are maintained incrementally
        as flows freeze.
        """
        members = self._members
        resources = self._resources

        # Effective capacity of each (resource, direction) under this load.
        remaining_cap: Dict[int, float] = {}
        open_count: Dict[int, int] = {}
        for key, flows_here in members.items():
            n_this = len(flows_here)
            other_bucket = members.get(key ^ 1)
            n_other = len(other_bucket) if other_bucket else 0
            direction = Direction.REV if key & 1 else Direction.FWD
            remaining_cap[key] = resources[key >> 1].effective_capacity(
                direction, n_this, n_other)
            open_count[key] = n_this

        frozen: Dict[Flow, float] = {}
        unfrozen: Dict[Flow, None] = dict(self._flows)

        while unfrozen:
            # Per-flow rate caps act as single-flow pseudo-resources.
            best_share = math.inf
            best_key = -1
            for key, count in open_count.items():
                if count <= 0:
                    continue
                share = remaining_cap[key] / count
                if share < best_share:
                    best_share = share
                    best_key = key

            capped = [f for f in unfrozen
                      if f.rate_cap is not None and f.rate_cap < best_share]
            if capped:
                # Freeze the most restrictive rate-capped flows first.
                tightest = min(f.rate_cap for f in capped)
                for flow in capped:
                    if flow.rate_cap == tightest:
                        frozen[flow] = tightest
                        del unfrozen[flow]
                        self._charge(flow, tightest, remaining_cap,
                                     open_count)
                continue

            if best_key < 0:
                # No constrained resource left: only rate caps bound them.
                for flow in unfrozen:
                    if flow.rate_cap is None:
                        raise SimulationError(
                            f"flow {flow.label!r} is unconstrained")
                    frozen[flow] = flow.rate_cap
                unfrozen.clear()
                break

            if best_share <= 0.0:
                resource = resources[best_key >> 1]
                direction = "rev" if best_key & 1 else "fwd"
                squeezed = [f.label or repr(f) for f in members[best_key]
                            if f not in frozen]
                raise SimulationError(
                    f"resource {resource.name!r} ({direction}) has zero "
                    f"effective capacity left for flow(s) "
                    f"{', '.join(squeezed)}; its bandwidth is fully "
                    "consumed by rate-capped or multi-hop flows")

            for flow in members[best_key]:
                if flow not in frozen:
                    frozen[flow] = best_share
                    del unfrozen[flow]
                    self._charge(flow, best_share, remaining_cap, open_count)
            # A bottleneck with zero open flows left must not be re-picked;
            # its open count is now zero, so the share search skips it.

        for flow, rate in frozen.items():
            flow.rate = rate

    @staticmethod
    def _charge(flow: Flow, rate: float,
                remaining_cap: Dict[int, float],
                open_count: Dict[int, int]) -> None:
        """Subtract a frozen flow's rate from every hop it crosses."""
        for key in flow.hop_keys:
            remaining_cap[key] = max(0.0, remaining_cap[key] - rate)
            open_count[key] -= 1
