"""Fluid flow network with max-min fair bandwidth allocation.

Every in-flight data transfer is a :class:`Flow` over a *route*: an
ordered list of ``(resource, direction)`` hops.  Whenever the set of
active flows changes, the network re-computes each flow's rate with the
classic progressive-filling (water-filling) algorithm, which yields the
max-min fair allocation subject to every hop's effective capacity.  This
mirrors how concurrent DMA copy streams share links on real multi-GPU
machines closely enough to reproduce the paper's parallel-copy results
(Figures 2-7): flows crossing an uncontended NVSwitch port rate at full
speed, while flows squeezed through a shared PCIe switch or the AC922's
X-Bus split its capacity.

The network is a *fluid* model: between allocation changes each flow
progresses linearly at its rate, so completion times can be scheduled
exactly and re-scheduled whenever the allocation changes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.resources import Direction, Resource

Hop = Tuple[Resource, Direction]

#: Relative tolerance when deciding a flow has finished.
_EPSILON_BYTES = 1e-6


class Flow:
    """One in-flight transfer of ``size`` bytes over a fixed route.

    The flow's :attr:`done` event succeeds (with the flow) when the last
    byte has been delivered.  ``rate_cap`` optionally limits the flow to
    a source/sink-specific rate, e.g. a GPU copy engine's bandwidth.
    """

    def __init__(
        self,
        network: "FlowNetwork",
        route: Sequence[Hop],
        size: float,
        rate_cap: Optional[float] = None,
        label: str = "",
    ):
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {rate_cap}")
        self.network = network
        self.route: Tuple[Hop, ...] = tuple(route)
        self.size = float(size)
        self.remaining = float(size)
        self.rate_cap = rate_cap
        self.label = label
        self.rate = 0.0
        self.started_at = network.env.now
        self.finished_at: Optional[float] = None
        self.done: Event = network.env.event()
        self._completion_token = 0

    @property
    def active(self) -> bool:
        """Whether the flow still has bytes to deliver."""
        return self.finished_at is None

    def __repr__(self) -> str:
        return (f"<Flow {self.label or id(self)} size={self.size:.3g} "
                f"remaining={self.remaining:.3g} rate={self.rate:.3g}>")


class FlowNetwork:
    """Tracks active flows and keeps their max-min fair rates current."""

    def __init__(self, env: Environment):
        self.env = env
        self._flows: Set[Flow] = set()
        #: Total bytes delivered over each resource direction (for traces).
        self.delivered: Dict[Tuple[Resource, Direction], float] = {}

    # -- public API -------------------------------------------------------
    def start_flow(
        self,
        route: Sequence[Hop],
        size: float,
        rate_cap: Optional[float] = None,
        label: str = "",
    ) -> Flow:
        """Begin transferring ``size`` bytes along ``route``.

        Returns the new :class:`Flow`; wait on ``flow.done`` for
        completion.  Zero-byte flows complete immediately.
        """
        flow = Flow(self, route, size, rate_cap=rate_cap, label=label)
        if flow.size <= 0.0:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        if not flow.route and flow.rate_cap is None:
            raise SimulationError(
                f"flow {label!r} has neither a route nor a rate cap; "
                "its rate would be unbounded")
        self._advance_all()
        self._flows.add(flow)
        self._reallocate()
        return flow

    def transfer(self, route: Sequence[Hop], size: float,
                 rate_cap: Optional[float] = None, label: str = ""):
        """Process-style helper: ``yield from network.transfer(...)``."""
        flow = self.start_flow(route, size, rate_cap=rate_cap, label=label)
        yield flow.done
        return flow

    @property
    def active_flows(self) -> List[Flow]:
        """Snapshot of the currently active flows."""
        return list(self._flows)

    def utilization(self, resource: Resource, direction: Direction) -> float:
        """Aggregate current rate crossing ``resource`` in ``direction``."""
        total = 0.0
        for flow in self._flows:
            for res, direc in flow.route:
                if res is resource and direc is direction:
                    total += flow.rate
                    break
        return total

    # -- internals --------------------------------------------------------
    def _advance_all(self) -> None:
        """Account progress of every flow since its last update."""
        now = self.env.now
        finished: List[Flow] = []
        for flow in self._flows:
            elapsed = now - flow._last_update if hasattr(flow, "_last_update") else 0.0
            if elapsed > 0 and flow.rate > 0:
                moved = flow.rate * elapsed
                moved = min(moved, flow.remaining)
                flow.remaining -= moved
                for hop in flow.route:
                    self.delivered[hop] = self.delivered.get(hop, 0.0) + moved
            flow._last_update = now
            if flow.remaining <= _EPSILON_BYTES * max(flow.size, 1.0):
                finished.append(flow)
        for flow in finished:
            self._finish(flow)

    def _finish(self, flow: Flow) -> None:
        self._flows.discard(flow)
        if flow.finished_at is None:
            flow.finished_at = self.env.now
            flow.remaining = 0.0
            flow.done.succeed(flow)

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and reschedule completions."""
        flows = [f for f in self._flows if f.active]
        if flows:
            self._water_fill(flows)
        now = self.env.now
        for flow in flows:
            flow._last_update = now
            flow._completion_token += 1
            token = flow._completion_token
            if flow.rate <= 0:
                raise SimulationError(
                    f"flow {flow.label!r} was allocated zero bandwidth")
            delay = flow.remaining / flow.rate
            self.env.process(self._completion_watch(flow, token, delay))

    def _completion_watch(self, flow: Flow, token: int, delay: float):
        yield self.env.timeout(delay)
        if flow._completion_token != token or not flow.active:
            return
        self._advance_all()
        if flow.active:
            # Numerical slack: force-finish, the residual is < epsilon.
            self._finish(flow)
        self._reallocate()

    def _water_fill(self, flows: List[Flow]) -> None:
        """Progressive filling over all constrained resource directions."""
        # Count directional usage per resource for effective capacities.
        usage: Dict[Resource, Dict[Direction, List[Flow]]] = {}
        for flow in flows:
            seen: Set[Tuple[int, Direction]] = set()
            for resource, direction in flow.route:
                key = (id(resource), direction)
                if key in seen:
                    continue
                seen.add(key)
                per_res = usage.setdefault(
                    resource, {Direction.FWD: [], Direction.REV: []})
                per_res[direction].append(flow)

        # Effective capacity of each (resource, direction) under this load.
        capacity: Dict[Tuple[int, Direction], float] = {}
        members: Dict[Tuple[int, Direction], List[Flow]] = {}
        for resource, per_dir in usage.items():
            n_fwd = len(per_dir[Direction.FWD])
            n_rev = len(per_dir[Direction.REV])
            for direction, flows_here in per_dir.items():
                if not flows_here:
                    continue
                n_this = n_fwd if direction is Direction.FWD else n_rev
                n_other = n_rev if direction is Direction.FWD else n_fwd
                cap = resource.effective_capacity(direction, n_this, n_other)
                key = (id(resource), direction)
                capacity[key] = cap
                members[key] = flows_here

        frozen: Dict[Flow, float] = {}
        remaining_cap = dict(capacity)
        unfrozen: Set[Flow] = set(flows)

        while unfrozen:
            # Per-flow rate caps act as single-flow pseudo-resources.
            best_share = math.inf
            best_key: Optional[Tuple[int, Direction]] = None
            for key, flows_here in members.items():
                open_here = [f for f in flows_here if f not in frozen]
                if not open_here:
                    continue
                share = remaining_cap[key] / len(open_here)
                if share < best_share:
                    best_share = share
                    best_key = key

            capped = [f for f in unfrozen
                      if f.rate_cap is not None and f.rate_cap < best_share]
            if capped:
                # Freeze the most restrictive rate-capped flows first.
                tightest = min(f.rate_cap for f in capped)
                for flow in [f for f in capped if f.rate_cap == tightest]:
                    frozen[flow] = tightest
                    unfrozen.discard(flow)
                    self._charge(flow, tightest, remaining_cap)
                continue

            if best_key is None:
                # No constrained resource left: only rate caps bound them.
                for flow in list(unfrozen):
                    if flow.rate_cap is None:
                        raise SimulationError(
                            f"flow {flow.label!r} is unconstrained")
                    frozen[flow] = flow.rate_cap
                    unfrozen.discard(flow)
                break

            for flow in [f for f in members[best_key] if f not in frozen]:
                frozen[flow] = best_share
                unfrozen.discard(flow)
                self._charge(flow, best_share, remaining_cap)
            # A bottleneck with zero open flows left must not be re-picked;
            # it is naturally skipped because all members are frozen.

        for flow, rate in frozen.items():
            flow.rate = rate

    @staticmethod
    def _charge(flow: Flow, rate: float,
                remaining_cap: Dict[Tuple[int, Direction], float]) -> None:
        """Subtract a frozen flow's rate from every hop it crosses."""
        seen: Set[Tuple[int, Direction]] = set()
        for resource, direction in flow.route:
            key = (id(resource), direction)
            if key in seen or key not in remaining_cap:
                continue
            seen.add(key)
            remaining_cap[key] = max(0.0, remaining_cap[key] - rate)
