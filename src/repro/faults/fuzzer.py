"""Chaos fuzzer: seeded random fault plans against real sorts.

Every seed deterministically derives one :class:`ChaosCase` — a
workload (algorithm, supervised or plain, input size) plus a
:class:`~repro.faults.plan.FaultPlan` drawn from the same seed, with
up to two hard GPU failures mixed in on top of
:meth:`FaultPlan.generate`'s link/straggler/transient chaos.

The contract under test (:func:`run_case`):

* the sort completes and its output is **element-identical** to
  ``np.sort`` of the input, or
* it fails with a *typed* error — :class:`~repro.errors.ReproError` or
  :class:`~repro.sim.engine.SimulationError` — or a typed partial
  result (``deadline_exceeded``).

Anything else — a bare ``KeyError`` out of the event loop, a sorted
but wrong output, an unsorted output — is a fuzzer catch.  When a case
fails, :func:`shrink` delta-debugs the plan down to a minimal failing
one (greedy event removal plus zeroing the transient-kill
probability), so the reproduction printed by the test is as small as
the bug allows.  Same seed, same case, same timeline — chaos stays
debuggable.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional

import numpy as np

from repro.errors import ReproError
from repro.faults.events import GpuFail, LinkFlap, NodeDown, SwitchDown
from repro.faults.plan import FaultPlan
from repro.hw import dgx_a100
from repro.runtime.context import Machine
from repro.sim.engine import SimulationError

#: Logical keys every case sorts (the physical count varies per seed).
LOGICAL_KEYS = 2e9
#: Simulated-seconds span the fault windows are drawn over — roughly
#: the duration of one sort at :data:`LOGICAL_KEYS`.
HORIZON_S = 2.5
#: Horizon of cluster cases: a 4-node hierarchical sort at
#: :data:`LOGICAL_KEYS` finishes in ~0.35 simulated seconds.
CLUSTER_HORIZON_S = 0.4
#: Nodes of every cluster chaos case.
CLUSTER_NODES = 4


@dataclass(frozen=True)
class ChaosCase:
    """One deterministic fuzz case: workload plus fault plan."""

    seed: int
    algorithm: str         # "p2p" | "het" | "rp" | "hier"
    supervised: bool
    n: int                 # physical keys
    plan: FaultPlan
    #: Cluster cases only: node count (0 = standalone machine).
    nodes: int = 0
    fabric: str = "fat-tree"


@dataclass(frozen=True)
class Outcome:
    """Result of one chaos run."""

    #: ``ok`` (sorted, element-identical), ``typed`` (typed error or
    #: typed partial result), ``crash`` (untyped exception), or
    #: ``mismatch`` (completed with wrong output).
    status: str
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("crash", "mismatch")


def case_for_seed(seed: int) -> ChaosCase:
    """Derive the chaos case for ``seed`` (same seed, same case)."""
    spec = dgx_a100()
    rng = np.random.default_rng(seed ^ 0x5EED)
    supervised = bool(rng.integers(2))
    # The supervisor drives P2P and HET; plain runs also cover RP.
    pool = ("p2p", "het") if supervised else ("p2p", "het", "rp")
    algorithm = pool[int(rng.integers(len(pool)))]
    n = int(rng.integers(8_000, 20_000))
    intensity = float(rng.uniform(0.5, 2.0))
    base = FaultPlan.generate(spec, seed, intensity=intensity,
                              horizon=HORIZON_S)
    events = list(base.events)
    for _ in range(int(rng.integers(0, 3))):
        events.append(GpuFail(
            at=float(rng.uniform(0.05, 0.9) * HORIZON_S),
            gpu=int(rng.integers(spec.num_gpus))))
    plan = FaultPlan(events=tuple(events),
                     transient_failure_prob=base.transient_failure_prob,
                     seed=seed)
    return ChaosCase(seed=seed, algorithm=algorithm,
                     supervised=supervised, n=n, plan=plan)


def case_for_cluster_seed(seed: int) -> ChaosCase:
    """Derive a cluster chaos case: hierarchical sort under
    node/switch/link-flap faults on a 4-node cluster.

    On top of :meth:`FaultPlan.generate`'s link/straggler/transient
    chaos the case mixes in up to two cluster-tier events — a
    :class:`~repro.faults.events.NodeDown`, a
    :class:`~repro.faults.events.SwitchDown` of a random fabric switch,
    or a :class:`~repro.faults.events.LinkFlap` of a random NIC link.
    Same seed, same case.
    """
    from repro.hw.cluster import make_cluster

    rng = np.random.default_rng(seed ^ 0xC105)
    fabric = ("fat-tree", "rail", "dragonfly")[int(rng.integers(3))]
    spec = make_cluster("dgx-a100", CLUSTER_NODES, fabric=fabric)
    n = int(rng.integers(8_000, 20_000))
    intensity = float(rng.uniform(0.25, 1.0))
    base = FaultPlan.generate(spec, seed, intensity=intensity,
                              horizon=CLUSTER_HORIZON_S)
    events = list(base.events)
    switches = spec.topology.fabric_switches
    nic_links = [name for node in range(CLUSTER_NODES)
                 for name in spec.node_nic_links(node)]
    for _ in range(int(rng.integers(0, 3))):
        kind = int(rng.integers(3))
        at = float(rng.uniform(0.05, 0.9) * CLUSTER_HORIZON_S)
        if kind == 0:
            events.append(NodeDown(
                at=at, node=int(rng.integers(CLUSTER_NODES))))
        elif kind == 1 and switches:
            events.append(SwitchDown(
                at=at,
                switch=switches[int(rng.integers(len(switches)))],
                duration=float(
                    rng.uniform(0.02, 0.15) * CLUSTER_HORIZON_S)))
        else:
            events.append(LinkFlap(
                at=at,
                resource=nic_links[int(rng.integers(len(nic_links)))],
                cycles=int(rng.integers(1, 4)),
                down_s=float(
                    rng.uniform(0.005, 0.03) * CLUSTER_HORIZON_S),
                up_s=float(
                    rng.uniform(0.005, 0.03) * CLUSTER_HORIZON_S)))
    plan = FaultPlan(events=tuple(events),
                     transient_failure_prob=base.transient_failure_prob,
                     seed=seed)
    return ChaosCase(seed=seed, algorithm="hier", supervised=False,
                     n=n, plan=plan, nodes=CLUSTER_NODES, fabric=fabric)


def _input_for(case: ChaosCase) -> np.ndarray:
    rng = np.random.default_rng(case.seed)
    return rng.integers(0, 2**62, size=case.n, dtype=np.int64)


def run_case(case: ChaosCase) -> Outcome:
    """Run one chaos case and classify what happened."""
    data = _input_for(case)
    if case.nodes:
        from repro.hw.cluster import make_cluster

        spec = make_cluster("dgx-a100", case.nodes, fabric=case.fabric)
    else:
        spec = dgx_a100()
    machine = Machine(spec, scale=LOGICAL_KEYS / case.n,
                      fast_functional=True)
    machine.install_faults(case.plan)
    try:
        if case.nodes:
            from repro.sort.hier import hier_sort

            result = hier_sort(machine, data)
        elif case.supervised:
            from repro.recovery import SortSupervisor

            result = SortSupervisor(machine).sort(
                data, algorithm=case.algorithm)
        else:
            from repro.sort import het_sort, p2p_sort, rp_sort

            sort = {"p2p": p2p_sort, "het": het_sort,
                    "rp": rp_sort}[case.algorithm]
            result = sort(machine, data)
    except (ReproError, SimulationError) as exc:
        return Outcome("typed", f"{type(exc).__name__}: {exc}")
    except BaseException:  # noqa: BLE001 - the fuzzer's whole point
        return Outcome("crash", traceback.format_exc())
    if getattr(result, "deadline_exceeded", False):
        return Outcome("typed", "deadline exceeded (typed partial result)")
    if result.output is None:
        return Outcome("crash", "completed without output or typed error")
    if not np.array_equal(np.asarray(result.output), np.sort(data)):
        return Outcome(
            "mismatch",
            f"output is not element-identical to np.sort "
            f"({len(result.output)} keys out, {case.n} in)")
    return Outcome("ok")


def _variants(case: ChaosCase) -> Iterator[ChaosCase]:
    """Single-step reductions of the case's fault plan."""
    plan = case.plan
    for index in range(len(plan.events)):
        events = plan.events[:index] + plan.events[index + 1:]
        yield replace(case, plan=FaultPlan(
            events=events,
            transient_failure_prob=plan.transient_failure_prob,
            seed=plan.seed))
    if plan.transient_failure_prob:
        yield replace(case, plan=FaultPlan(
            events=plan.events, transient_failure_prob=0.0,
            seed=plan.seed))


def shrink(case: ChaosCase,
           failing: Optional[Callable[[ChaosCase], bool]] = None,
           max_runs: int = 200) -> ChaosCase:
    """Greedy delta-debugging: a minimal still-failing variant of ``case``.

    Repeatedly tries every single-event removal (and zeroing the
    transient probability); takes the first reduction that still fails
    and starts over, until no single reduction keeps the case failing.
    ``failing`` defaults to actually running the case; tests inject
    synthetic predicates to pin the machinery itself.
    """
    if failing is None:
        failing = lambda variant: run_case(variant).failed  # noqa: E731
    current = case
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for variant in _variants(current):
            runs += 1
            if failing(variant):
                current = variant
                progress = True
                break
            if runs >= max_runs:
                break
    return current


def describe_case(case: ChaosCase) -> str:
    """A reproduction recipe for a (shrunken) failing case."""
    lines = [
        f"seed={case.seed} algorithm={case.algorithm} "
        f"supervised={case.supervised} n={case.n}"
        + (f" nodes={case.nodes} fabric={case.fabric}"
           if case.nodes else ""),
        f"transient_failure_prob={case.plan.transient_failure_prob}",
    ]
    if case.plan.events:
        lines.append("events:")
        lines.extend(f"  {event!r}" for event in case.plan.events)
    else:
        lines.append("events: (none)")
    return "\n".join(lines)
