"""Deterministic, seeded fault injection for the simulated machine.

The subsystem has three parts, mirroring how real clusters degrade
(De Sensi et al. 2024 measure large run-to-run bandwidth variability;
Li et al. 2019 show one slow link bottlenecking whole collectives):

* :mod:`repro.faults.events` — the fault vocabulary: link degradation,
  link down/flapping windows, copy-engine stalls, straggler GPUs, hard
  GPU failures, and scheduled transient transfer failures.
* :mod:`repro.faults.plan` — a :class:`FaultPlan`: an immutable,
  seed-reproducible schedule of fault events in simulated time, either
  hand-written or generated from a seed and an intensity knob.
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that plays
  a plan against a live :class:`~repro.runtime.context.Machine`,
  degrading resources through the flow network's water-fill, killing
  in-flight flows, and recording every fault in the trace.

:mod:`repro.faults.policy` holds the runtime's answer: the
:class:`ResiliencePolicy` (retry/backoff/timeout/re-route knobs read by
:func:`repro.runtime.memcpy.copy_async` and the sorts) and the
:class:`ResilienceStats` counters surfaced on ``SortResult``.

With no plan installed nothing here is ever consulted on a hot path —
fault-free runs stay bit-identical to a build without this package.
"""

from repro.faults.events import (
    CopyEngineStall,
    FaultEvent,
    GpuFail,
    LinkDegradation,
    LinkDown,
    LinkFlap,
    NodeDown,
    StragglerGpu,
    SwitchDown,
    TransientTransfer,
)
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import FaultPlan
from repro.faults.policy import LinkHealth, ResiliencePolicy, ResilienceStats

__all__ = [
    "CopyEngineStall",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "GpuFail",
    "LinkDegradation",
    "LinkDown",
    "LinkFlap",
    "LinkHealth",
    "NodeDown",
    "ResiliencePolicy",
    "ResilienceStats",
    "StragglerGpu",
    "SwitchDown",
    "TransientTransfer",
]
