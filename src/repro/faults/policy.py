"""Resilience policy and counters for the runtime's fault handling.

The policy is read by :func:`repro.runtime.memcpy.copy_async` (retry,
backoff, timeout, re-route) and by the sorts (straggler exclusion);
stats are accumulated machine-wide and snapshotted per sort so every
:class:`~repro.sort.result.SortResult` reports exactly the recovery
work done on its behalf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ResiliencePolicy:
    """Knobs of the resilient transfer and degraded-sort behavior."""

    #: Attempts after the first failure of one copy; exceeding it
    #: re-raises the last :class:`~repro.errors.TransientTransferError`.
    max_retries: int = 4
    #: First backoff delay; attempt ``k`` waits
    #: ``backoff_base_s * backoff_multiplier ** (k - 1)``.
    backoff_base_s: float = 1e-3
    backoff_multiplier: float = 2.0
    #: Per-copy watchdog: a flow outliving this (per attempt) is aborted
    #: with :class:`~repro.errors.CopyTimeoutError`.  ``None`` disables
    #: the watchdog (the default: a timeout needs a workload-specific
    #: bound, there is no universal one).
    copy_timeout_s: Optional[float] = None
    #: Whether a watchdog timeout counts as retryable.
    retry_on_timeout: bool = True
    #: Route around links the injector took down (host-staged detours
    #: pay the platform's ``p2p_traverse_efficiency`` cap); ``False``
    #: makes copies wait for the link to come back instead.
    reroute: bool = True
    #: A GPU whose active straggler slowdown is at least this factor is
    #: excluded from new sorts (treated like a failed device).
    straggler_exclude_factor: float = 4.0

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)


@dataclass
class ResilienceStats:
    """Machine-wide counters of recovery work (monotonic)."""

    #: Copy attempts resubmitted after a transient failure or timeout.
    retries: int = 0
    #: Copies routed around a down link.
    reroutes: int = 0
    #: Watchdog expirations.
    timeouts: int = 0
    #: Simulated seconds copies spent parked waiting for a down link
    #: with no detour to come back up.
    link_wait_s: float = 0.0

    def snapshot(self) -> "ResilienceStats":
        """An independent copy of the current counters."""
        return ResilienceStats(self.retries, self.reroutes,
                               self.timeouts, self.link_wait_s)

    def delta(self, since: "ResilienceStats") -> "ResilienceStats":
        """Counters accumulated after ``since`` was snapshotted."""
        return ResilienceStats(
            self.retries - since.retries,
            self.reroutes - since.reroutes,
            self.timeouts - since.timeouts,
            self.link_wait_s - since.link_wait_s)
