"""Resilience policy and counters for the runtime's fault handling.

The policy is read by :func:`repro.runtime.memcpy.copy_async` (retry,
backoff, timeout, re-route) and by the sorts (straggler exclusion);
stats are accumulated machine-wide and snapshotted per sort so every
:class:`~repro.sort.result.SortResult` reports exactly the recovery
work done on its behalf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ResiliencePolicy:
    """Knobs of the resilient transfer and degraded-sort behavior."""

    #: Attempts after the first failure of one copy; exceeding it
    #: re-raises the last :class:`~repro.errors.TransientTransferError`.
    max_retries: int = 4
    #: First backoff delay; attempt ``k`` waits
    #: ``backoff_base_s * backoff_multiplier ** (k - 1)``.
    backoff_base_s: float = 1e-3
    backoff_multiplier: float = 2.0
    #: Per-copy watchdog: a flow outliving this (per attempt) is aborted
    #: with :class:`~repro.errors.CopyTimeoutError`.  ``None`` disables
    #: the watchdog (the default: a timeout needs a workload-specific
    #: bound, there is no universal one).
    copy_timeout_s: Optional[float] = None
    #: Whether a watchdog timeout counts as retryable.
    retry_on_timeout: bool = True
    #: Route around links the injector took down (host-staged detours
    #: pay the platform's ``p2p_traverse_efficiency`` cap); ``False``
    #: makes copies wait for the link to come back instead.
    reroute: bool = True
    #: A GPU whose active straggler slowdown is at least this factor is
    #: excluded from new sorts (treated like a failed device).
    straggler_exclude_factor: float = 4.0
    #: Jitter fraction of the exponential backoff: retry ``k`` waits
    #: ``backoff_s(k) * (1 + backoff_jitter * u)`` for a seeded uniform
    #: draw ``u`` in [0, 1).  Zero (the default) keeps legacy timings
    #: bit-identical; a positive value de-synchronizes the retry storms
    #: a flapping link otherwise produces.
    backoff_jitter: float = 0.0
    #: Multiplicative health penalty per down edge of a link (every
    #: down window opening multiplies the link's score by this).
    health_down_factor: float = 0.5
    #: Linear health regained per simulated second a link stays up.
    health_recovery_per_s: float = 0.1
    #: Low watermark: a link whose score falls below this is
    #: quarantined — new copies avoid it like a down link (when a
    #: detour exists; quarantine never strands an only route).
    health_quarantine_below: float = 0.2
    #: High watermark releasing a quarantined link.  Keeping it well
    #: above the low watermark is the hysteresis: a link must earn
    #: sustained uptime back, not just blip over the cut line.
    health_restore_above: float = 0.7

    def backoff_s(self, attempt: int, jitter: float = 0.0) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``jitter`` is a uniform draw in [0, 1) (or 0 for none); the
        policy's :attr:`backoff_jitter` scales how much of it applies.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = (self.backoff_base_s
                * self.backoff_multiplier ** (attempt - 1))
        if jitter and self.backoff_jitter:
            base *= 1.0 + self.backoff_jitter * jitter
        return base


class LinkHealth:
    """Per-link health score with quarantine hysteresis.

    Maintained by the fault injector for every link it has ever taken
    down: each down edge multiplies the score by the policy's
    ``health_down_factor``; time spent up earns it back linearly at
    ``health_recovery_per_s``.  The score trips quarantine below the
    low watermark and releases it only above the (higher) restore
    watermark — a flapping link stays quarantined through its brief
    up windows instead of being retried into every flap.
    """

    def __init__(self, policy: "ResiliencePolicy", now: float = 0.0):
        self.policy = policy
        self.score = 1.0
        self.quarantined = False
        #: Down edges recorded so far (diagnostics / tests).
        self.down_edges = 0
        self._up_since: Optional[float] = now

    def _recover_to(self, now: float) -> None:
        if self._up_since is not None and now > self._up_since:
            self.score = min(
                1.0, self.score + self.policy.health_recovery_per_s
                * (now - self._up_since))
            self._up_since = now
        if (self.quarantined
                and self.score >= self.policy.health_restore_above):
            self.quarantined = False

    def record_down(self, now: float) -> None:
        """A down window opened on the link at ``now``."""
        self._recover_to(now)
        self._up_since = None
        self.down_edges += 1
        self.score *= self.policy.health_down_factor
        if self.score < self.policy.health_quarantine_below:
            self.quarantined = True

    def record_up(self, now: float) -> None:
        """The link's last down window closed at ``now``."""
        self._up_since = now

    def current(self, now: float) -> float:
        """The score at ``now`` (applies pending up-time recovery)."""
        self._recover_to(now)
        return self.score

    def is_quarantined(self, now: float) -> bool:
        """Whether the link is quarantined at ``now`` (hysteresis)."""
        self._recover_to(now)
        return self.quarantined


@dataclass
class ResilienceStats:
    """Machine-wide counters of recovery work (monotonic)."""

    #: Copy attempts resubmitted after a transient failure or timeout.
    retries: int = 0
    #: Copies routed around a down link.
    reroutes: int = 0
    #: Watchdog expirations.
    timeouts: int = 0
    #: Simulated seconds copies spent parked waiting for a down link
    #: with no detour to come back up.
    link_wait_s: float = 0.0

    def snapshot(self) -> "ResilienceStats":
        """An independent copy of the current counters."""
        return ResilienceStats(self.retries, self.reroutes,
                               self.timeouts, self.link_wait_s)

    def delta(self, since: "ResilienceStats") -> "ResilienceStats":
        """Counters accumulated after ``since`` was snapshotted."""
        return ResilienceStats(
            self.retries - since.retries,
            self.reroutes - since.reroutes,
            self.timeouts - since.timeouts,
            self.link_wait_s - since.link_wait_s)
