"""Fault plans: immutable, seed-reproducible fault schedules.

A :class:`FaultPlan` is the unit of chaos: a tuple of
:mod:`~repro.faults.events` plus a per-flow transient-failure
probability.  Plans are either written by hand (tests pin exact
windows) or generated from ``(spec, seed, intensity, horizon)`` — the
same arguments always produce the same plan, and installing the same
plan on two identical machines yields bit-identical simulated
timelines, which is what makes chaos runs debuggable.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.faults.events import (
    CopyEngineStall,
    FaultEvent,
    GpuFail,
    LinkDegradation,
    LinkDown,
    LinkFlap,
    NodeDown,
    StragglerGpu,
    SwitchDown,
    TransientTransfer,
)
from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.systems import SystemSpec


def _validate_event(event: FaultEvent) -> None:
    """Reject malformed events with a :class:`SimulationError` up front.

    A negative duration (or a window that would end before it starts)
    would otherwise only explode deep inside the injector's driver
    process as a ``negative delay`` at fire time — or, worse, silently
    inject nothing; GPU ids are checked for sign here and for range at
    install time (plans are machine-independent data).  Symbolic
    resource names stay lazily validated against the topology at
    install, so hand-written plans remain plain data.
    """
    if not isinstance(event.at, (int, float)) or event.at < 0:
        raise SimulationError(
            f"fault event start time must be >= 0, got {event.at!r} "
            f"in {event!r}")
    duration = getattr(event, "duration", None)
    if duration is not None and duration <= 0:
        raise SimulationError(
            f"fault window must have a positive duration (the window "
            f"[{event.at}, {event.at + duration}] ends before or at its "
            f"start) in {event!r}")
    if isinstance(event, (CopyEngineStall, StragglerGpu, GpuFail)):
        if not isinstance(event.gpu, int) or event.gpu < 0:
            raise SimulationError(
                f"fault event references invalid GPU id {event.gpu!r} "
                f"(ids are non-negative integers) in {event!r}")
    if isinstance(event, LinkDegradation) and not 0.0 < event.factor <= 1.0:
        raise SimulationError(
            f"degradation factor must be in (0, 1], got {event.factor!r} "
            f"in {event!r}")
    if isinstance(event, StragglerGpu) and event.slowdown < 1.0:
        raise SimulationError(
            f"straggler slowdown must be >= 1, got {event.slowdown!r} "
            f"in {event!r}")
    if isinstance(event, (LinkDegradation, LinkDown)):
        if not event.resource or not isinstance(event.resource, str):
            raise SimulationError(
                f"fault event needs a non-empty resource name, got "
                f"{event.resource!r} in {event!r}")
    if (isinstance(event, CopyEngineStall)
            and event.direction not in ("in", "out", "both")):
        raise SimulationError(
            f"engine stall direction must be 'in', 'out' or 'both', "
            f"got {event.direction!r} in {event!r}")
    if isinstance(event, NodeDown):
        if not isinstance(event.node, int) or event.node < 0:
            raise SimulationError(
                f"fault event references invalid node id {event.node!r} "
                f"(ids are non-negative integers) in {event!r}")
    if isinstance(event, SwitchDown):
        if isinstance(event.switch, bool) or not (
                (isinstance(event.switch, int) and event.switch >= 0)
                or (isinstance(event.switch, str) and event.switch)):
            raise SimulationError(
                f"fault event references invalid switch {event.switch!r} "
                f"(a non-negative fabric-switch index or a non-empty "
                f"vertex name) in {event!r}")
    if isinstance(event, LinkFlap):
        if not event.resource or not isinstance(event.resource, str):
            raise SimulationError(
                f"fault event needs a non-empty resource name, got "
                f"{event.resource!r} in {event!r}")
        if not isinstance(event.cycles, int) or event.cycles < 1:
            raise SimulationError(
                f"link flap needs at least one down/up cycle, got "
                f"{event.cycles!r} in {event!r}")
        if event.down_s <= 0 or event.up_s <= 0:
            raise SimulationError(
                f"link flap windows must have positive down_s and up_s, "
                f"got down_s={event.down_s!r} up_s={event.up_s!r} "
                f"in {event!r}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events for one simulated run."""

    #: Scheduled events, in ``at`` order.
    events: Tuple[FaultEvent, ...] = ()
    #: Probability that any one resilient copy's flow is killed mid-air
    #: with a :class:`~repro.errors.TransientTransferError` (drawn once
    #: per flow from the injector's seeded stream).
    transient_failure_prob: float = 0.0
    #: Seed of the injector's runtime random stream (per-flow transient
    #: draws); also recorded for provenance by :meth:`generate`.
    seed: Optional[int] = field(default=None, compare=False)

    def __post_init__(self):
        if not 0.0 <= self.transient_failure_prob < 1.0:
            raise ValueError(
                f"transient_failure_prob must be in [0, 1), got "
                f"{self.transient_failure_prob}")
        for event in self.events:
            _validate_event(event)
        object.__setattr__(self, "events",
                           tuple(sorted(self.events, key=lambda e: e.at)))

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (useful as a control)."""
        return cls()

    @classmethod
    def generate(cls, spec: "SystemSpec", seed: int,
                 intensity: float = 1.0,
                 horizon: float = 1.0) -> "FaultPlan":
        """Draw a random plan for ``spec`` from a seeded stream.

        ``intensity`` scales both the expected event counts and the
        transient-failure probability (0 = empty plan, 1 = a handful of
        faults, larger = a genuinely bad day); ``horizon`` is the
        simulated-seconds span the fault windows land in — pass the
        expected duration of the workload so faults actually overlap it.

        The draw order is fixed, so equal arguments give equal plans.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if intensity == 0:
            return cls(seed=seed)
        rng = np.random.default_rng(seed)
        link_names = []
        seen = set()
        for edge in spec.topology.edges:
            name = edge.resource.name
            if name not in seen:
                seen.add(name)
                link_names.append(name)
        gpus = spec.num_gpus

        events = []
        # Link degradation windows (bandwidth variability).
        for _ in range(int(rng.poisson(2.0 * intensity))):
            events.append(LinkDegradation(
                at=float(rng.uniform(0.05, 0.7) * horizon),
                resource=link_names[int(rng.integers(len(link_names)))],
                duration=float(rng.uniform(0.05, 0.25) * horizon),
                factor=float(rng.uniform(0.25, 0.75))))
        # Link down / flapping windows.
        for _ in range(int(rng.poisson(1.0 * intensity))):
            events.append(LinkDown(
                at=float(rng.uniform(0.05, 0.7) * horizon),
                resource=link_names[int(rng.integers(len(link_names)))],
                duration=float(rng.uniform(0.02, 0.1) * horizon)))
        # Straggler GPUs (slowed kernels and copies).
        for _ in range(int(rng.poisson(1.0 * intensity))):
            events.append(StragglerGpu(
                at=float(rng.uniform(0.0, 0.5) * horizon),
                gpu=int(rng.integers(gpus)),
                duration=float(rng.uniform(0.2, 0.5) * horizon),
                slowdown=float(rng.uniform(1.5, 3.0))))
        # Guaranteed one-shot transfer kills.
        for _ in range(int(rng.poisson(1.0 * intensity))):
            events.append(TransientTransfer(
                at=float(rng.uniform(0.05, 0.8) * horizon)))
        return cls(events=tuple(events),
                   transient_failure_prob=min(0.3, 0.02 * intensity),
                   seed=seed)

    # -- JSON round-trip ---------------------------------------------------
    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the plan as JSON text.

        Plans are plain data, so minimal failing plans from the chaos
        fuzzer — and the service's chaos scenarios — can be saved as
        replayable artifacts and reloaded with :meth:`from_json`.
        """
        return json.dumps({
            "events": [dict(kind=type(event).__name__,
                            **dataclasses.asdict(event))
                       for event in self.events],
            "transient_failure_prob": self.transient_failure_prob,
            "seed": self.seed,
        }, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_json`.

        The same validation as direct construction applies, so a
        hand-edited artifact with a malformed window fails loudly with
        :class:`~repro.sim.engine.SimulationError`.
        """
        kinds = {kind.__name__: kind for kind in (
            LinkDegradation, LinkDown, LinkFlap, CopyEngineStall,
            StragglerGpu, GpuFail, NodeDown, SwitchDown,
            TransientTransfer)}
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SimulationError(f"fault plan is not valid JSON: {exc}") \
                from exc
        if not isinstance(payload, dict) or "events" not in payload:
            raise SimulationError(
                "fault plan JSON must be an object with an 'events' list")
        events = []
        for entry in payload["events"]:
            fields = dict(entry)
            kind_name = fields.pop("kind", None)
            kind = kinds.get(kind_name)
            if kind is None:
                raise SimulationError(
                    f"fault plan JSON names unknown event kind "
                    f"{kind_name!r} (known: {', '.join(sorted(kinds))})")
            try:
                events.append(kind(**fields))
            except TypeError as exc:
                raise SimulationError(
                    f"malformed {kind_name} entry {entry!r}: {exc}") \
                    from exc
        return cls(events=tuple(events),
                   transient_failure_prob=payload.get(
                       "transient_failure_prob", 0.0),
                   seed=payload.get("seed"))

    def __len__(self) -> int:
        return len(self.events)
