"""Fault plans: immutable, seed-reproducible fault schedules.

A :class:`FaultPlan` is the unit of chaos: a tuple of
:mod:`~repro.faults.events` plus a per-flow transient-failure
probability.  Plans are either written by hand (tests pin exact
windows) or generated from ``(spec, seed, intensity, horizon)`` — the
same arguments always produce the same plan, and installing the same
plan on two identical machines yields bit-identical simulated
timelines, which is what makes chaos runs debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.faults.events import (
    FaultEvent,
    LinkDegradation,
    LinkDown,
    StragglerGpu,
    TransientTransfer,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.systems import SystemSpec


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events for one simulated run."""

    #: Scheduled events, in ``at`` order.
    events: Tuple[FaultEvent, ...] = ()
    #: Probability that any one resilient copy's flow is killed mid-air
    #: with a :class:`~repro.errors.TransientTransferError` (drawn once
    #: per flow from the injector's seeded stream).
    transient_failure_prob: float = 0.0
    #: Seed of the injector's runtime random stream (per-flow transient
    #: draws); also recorded for provenance by :meth:`generate`.
    seed: Optional[int] = field(default=None, compare=False)

    def __post_init__(self):
        if not 0.0 <= self.transient_failure_prob < 1.0:
            raise ValueError(
                f"transient_failure_prob must be in [0, 1), got "
                f"{self.transient_failure_prob}")
        object.__setattr__(self, "events",
                           tuple(sorted(self.events, key=lambda e: e.at)))

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (useful as a control)."""
        return cls()

    @classmethod
    def generate(cls, spec: "SystemSpec", seed: int,
                 intensity: float = 1.0,
                 horizon: float = 1.0) -> "FaultPlan":
        """Draw a random plan for ``spec`` from a seeded stream.

        ``intensity`` scales both the expected event counts and the
        transient-failure probability (0 = empty plan, 1 = a handful of
        faults, larger = a genuinely bad day); ``horizon`` is the
        simulated-seconds span the fault windows land in — pass the
        expected duration of the workload so faults actually overlap it.

        The draw order is fixed, so equal arguments give equal plans.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if intensity == 0:
            return cls(seed=seed)
        rng = np.random.default_rng(seed)
        link_names = []
        seen = set()
        for edge in spec.topology.edges:
            name = edge.resource.name
            if name not in seen:
                seen.add(name)
                link_names.append(name)
        gpus = spec.num_gpus

        events = []
        # Link degradation windows (bandwidth variability).
        for _ in range(int(rng.poisson(2.0 * intensity))):
            events.append(LinkDegradation(
                at=float(rng.uniform(0.05, 0.7) * horizon),
                resource=link_names[int(rng.integers(len(link_names)))],
                duration=float(rng.uniform(0.05, 0.25) * horizon),
                factor=float(rng.uniform(0.25, 0.75))))
        # Link down / flapping windows.
        for _ in range(int(rng.poisson(1.0 * intensity))):
            events.append(LinkDown(
                at=float(rng.uniform(0.05, 0.7) * horizon),
                resource=link_names[int(rng.integers(len(link_names)))],
                duration=float(rng.uniform(0.02, 0.1) * horizon)))
        # Straggler GPUs (slowed kernels and copies).
        for _ in range(int(rng.poisson(1.0 * intensity))):
            events.append(StragglerGpu(
                at=float(rng.uniform(0.0, 0.5) * horizon),
                gpu=int(rng.integers(gpus)),
                duration=float(rng.uniform(0.2, 0.5) * horizon),
                slowdown=float(rng.uniform(1.5, 3.0))))
        # Guaranteed one-shot transfer kills.
        for _ in range(int(rng.poisson(1.0 * intensity))):
            events.append(TransientTransfer(
                at=float(rng.uniform(0.05, 0.8) * horizon)))
        return cls(events=tuple(events),
                   transient_failure_prob=min(0.3, 0.02 * intensity),
                   seed=seed)

    def __len__(self) -> int:
        return len(self.events)
