"""The fault vocabulary: immutable scheduled fault events.

Every event names its target symbolically — resources by their
topology-unique name (``nvswitch_port_gpu2``, ``xbus_cpu0_cpu1``, ...),
GPUs by id — so plans are plain data: hashable, comparable, serializable
and independent of any live machine.  The
:class:`~repro.faults.injector.FaultInjector` resolves names against a
machine's topology when the plan is installed.

All times are absolute simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultEvent:
    """Base class of all scheduled faults."""

    #: Simulated time at which the fault begins.
    at: float


@dataclass(frozen=True)
class LinkDegradation(FaultEvent):
    """A link's capacity drops to ``factor`` times normal for a window.

    Applied through :meth:`~repro.sim.resources.Resource.set_fault_factor`
    and the flow network's water-fill, so concurrent flows re-share the
    degraded capacity max-min fairly — congestion emerges, it is not
    scripted.  Overlapping degradations on one resource multiply.
    """

    resource: str
    duration: float
    factor: float


@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """A link is unusable for a window (flap = several short windows).

    In-flight flows crossing the link fail with
    :class:`~repro.errors.TransientTransferError`; new copies route
    around the link (or wait for restoration when no detour exists).
    Capacity is *not* zeroed — avoidance is a routing decision, keeping
    the water-fill well-defined throughout.
    """

    resource: str
    duration: float


@dataclass(frozen=True)
class CopyEngineStall(FaultEvent):
    """A GPU's DMA engine(s) are held busy for a window.

    ``direction`` is ``"in"``, ``"out"`` or ``"both"``.  Copies needing
    the engine queue behind the stall (FIFO), exactly like a wedged
    hardware copy queue.
    """

    gpu: int
    duration: float
    direction: str = "both"


@dataclass(frozen=True)
class StragglerGpu(FaultEvent):
    """One GPU runs slow for a window: kernels and copies alike.

    Kernel launches take ``slowdown`` times longer; the GPU's memory
    system capacity drops by the same factor, slowing every copy that
    starts or ends on the device.
    """

    gpu: int
    duration: float
    slowdown: float


@dataclass(frozen=True)
class GpuFail(FaultEvent):
    """Hard, permanent failure of one GPU from ``at`` onward.

    Flows touching the GPU's memory fail with
    :class:`~repro.errors.DeviceFaultError` (not retryable); sorts
    started afterwards exclude the GPU from their working set.
    """

    gpu: int


@dataclass(frozen=True)
class TransientTransfer(FaultEvent):
    """Kill one in-flight resilient copy at ``at`` (guaranteed, not
    probabilistic — the probabilistic arm is
    :attr:`repro.faults.plan.FaultPlan.transient_failure_prob`).

    The first active flow started by ``copy_async`` fails with
    :class:`~repro.errors.TransientTransferError`; the copy's retry
    loop resubmits it.  A no-op if nothing is in flight at ``at``.
    """
