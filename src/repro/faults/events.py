"""The fault vocabulary: immutable scheduled fault events.

Every event names its target symbolically — resources by their
topology-unique name (``nvswitch_port_gpu2``, ``xbus_cpu0_cpu1``, ...),
GPUs by id — so plans are plain data: hashable, comparable, serializable
and independent of any live machine.  The
:class:`~repro.faults.injector.FaultInjector` resolves names against a
machine's topology when the plan is installed.

All times are absolute simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class FaultEvent:
    """Base class of all scheduled faults."""

    #: Simulated time at which the fault begins.
    at: float


@dataclass(frozen=True)
class LinkDegradation(FaultEvent):
    """A link's capacity drops to ``factor`` times normal for a window.

    Applied through :meth:`~repro.sim.resources.Resource.set_fault_factor`
    and the flow network's water-fill, so concurrent flows re-share the
    degraded capacity max-min fairly — congestion emerges, it is not
    scripted.  Overlapping degradations on one resource multiply.
    """

    resource: str
    duration: float
    factor: float


@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """A link is unusable for a window (flap = several short windows).

    In-flight flows crossing the link fail with
    :class:`~repro.errors.TransientTransferError`; new copies route
    around the link (or wait for restoration when no detour exists).
    Capacity is *not* zeroed — avoidance is a routing decision, keeping
    the water-fill well-defined throughout.
    """

    resource: str
    duration: float


@dataclass(frozen=True)
class CopyEngineStall(FaultEvent):
    """A GPU's DMA engine(s) are held busy for a window.

    ``direction`` is ``"in"``, ``"out"`` or ``"both"``.  Copies needing
    the engine queue behind the stall (FIFO), exactly like a wedged
    hardware copy queue.
    """

    gpu: int
    duration: float
    direction: str = "both"


@dataclass(frozen=True)
class StragglerGpu(FaultEvent):
    """One GPU runs slow for a window: kernels and copies alike.

    Kernel launches take ``slowdown`` times longer; the GPU's memory
    system capacity drops by the same factor, slowing every copy that
    starts or ends on the device.
    """

    gpu: int
    duration: float
    slowdown: float


@dataclass(frozen=True)
class GpuFail(FaultEvent):
    """Hard, permanent failure of one GPU from ``at`` onward.

    Flows touching the GPU's memory fail with
    :class:`~repro.errors.DeviceFaultError` (not retryable); sorts
    started afterwards exclude the GPU from their working set.
    """

    gpu: int


@dataclass(frozen=True)
class NodeDown(FaultEvent):
    """Hard, permanent loss of one cluster node from ``at`` onward.

    The injector expands the node through the machine's
    :class:`~repro.hw.cluster.ClusterSpec` into its whole fault domain:
    every GPU of the node hard-fails (as if one :class:`GpuFail` per
    GPU fired at ``at``), its NIC uplinks go down permanently, and
    flows touching its host memories are killed with
    :class:`~repro.errors.NodeFaultError`.  Requires a cluster spec —
    installing a plan with a ``NodeDown`` on a single machine is a
    plan bug and raises at install time.
    """

    node: int


@dataclass(frozen=True)
class SwitchDown(FaultEvent):
    """A fabric switch is dead for a window: every attached link is down.

    ``switch`` is either the switch's topology vertex name
    (``"ft_spine0"``, ``"rail1"``, ``"dfly_r2"``) or its index into the
    cluster topology's ordered fabric-switch list.  All attached links
    enter one shared down window — crossing flows fail with
    :class:`~repro.errors.TransientTransferError` and the route cache
    is flushed **once** per edge (down and up), not once per attached
    link — and fat-tree/rail fabrics reroute over their redundant
    paths through the normal avoid-set machinery.
    """

    switch: Union[int, str]
    duration: float


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """One link flapping: ``cycles`` repeated down/up windows.

    Each cycle holds the link down for ``down_s`` seconds, then up for
    ``up_s`` before the next cycle.  Every down edge feeds the
    per-link health score in the injector; a link flapping past the
    :class:`~repro.faults.policy.ResiliencePolicy` quarantine watermark
    is avoided by new copies even while nominally up (hysteresis keeps
    it quarantined until the score recovers).
    """

    resource: str
    cycles: int
    down_s: float
    up_s: float


@dataclass(frozen=True)
class TransientTransfer(FaultEvent):
    """Kill one in-flight resilient copy at ``at`` (guaranteed, not
    probabilistic — the probabilistic arm is
    :attr:`repro.faults.plan.FaultPlan.transient_failure_prob`).

    The first active flow started by ``copy_async`` fails with
    :class:`~repro.errors.TransientTransferError`; the copy's retry
    loop resubmits it.  A no-op if nothing is in flight at ``at``.
    """
